"""Pytest bootstrap for the src/ layout.

Makes ``repro`` importable when running ``pytest`` straight from a checkout
(no ``pip install -e .`` and no ``PYTHONPATH`` needed). An installed copy of
the package is shadowed by the checkout, which is what you want in a dev
tree.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
