"""Figure 9: impact of cache capacity (response time, hits, break-even)."""

from repro.bench import fig9_cache_capacity


def test_fig9_cache_capacity(benchmark):
    result = benchmark.pedantic(fig9_cache_capacity, rounds=1, iterations=1)
    response = result["response"]
    schemes = ("next_ready", "hash", "landmark", "embed")
    columns = {s: i + 1 for i, s in enumerate(schemes)}
    smallest, largest = response[0], response[-1]
    # Tiny caches are worse than big caches for every scheme.
    for scheme in schemes:
        assert smallest[columns[scheme]] > largest[columns[scheme]]
    # Smart routing reaches the break-even point with less cache than the
    # baselines (Fig 9c): where both break even, embed's capacity <= hash's.
    break_even = {row[0]: row[1] for row in result["break_even"]}
    if isinstance(break_even["embed"], int) and isinstance(break_even["hash"], int):
        assert break_even["embed"] <= break_even["hash"]
    # With a large cache, smart routing beats the baselines.
    assert largest[columns["embed"]] < largest[columns["next_ready"]]
