"""Figure 15: traversal depth h = 1, 2, 3 (2-hop hotspots)."""

from repro.bench import fig15_traversal_depth


def test_fig15_traversal_depth(benchmark):
    rows = benchmark.pedantic(fig15_traversal_depth, rounds=1, iterations=1)
    response = {(row[0], row[1]): row[2] for row in rows}
    # Deeper traversals cost more for every scheme.
    for scheme in ("no_cache", "hash", "embed"):
        assert response[(3, scheme)] > response[(1, scheme)]
    # Smart routing wins at every depth ...
    for hops in (1, 2, 3):
        assert response[(hops, "embed")] < response[(hops, "no_cache")]
    # ... but the smart-over-baseline advantage narrows at h=3: deep
    # traversals touch so much shared data that even cache-oblivious
    # routing hits, and compute grows for everyone (§4.7).
    gap2 = response[(2, "hash")] / response[(2, "embed")]
    gap3 = response[(3, "hash")] / response[(3, "embed")]
    assert gap3 < gap2
