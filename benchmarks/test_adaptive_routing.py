"""Adaptive routing on a mixed workload (beyond the paper's experiments).

The mixture — hotspot reachability traversals, uniform point lookups and
repeat-heavy random walks — has no single best static scheme, which is the
regime adaptive routing is built for: it auditions every arm online,
commits per query class, and keeps probing as caches warm.
"""

from repro.bench import adaptive_routing_mixed, bench_scale

STATIC_SCHEMES = ("next_ready", "hash", "landmark", "embed")


def test_adaptive_routing_mixed(benchmark):
    result = benchmark.pedantic(adaptive_routing_mixed, rounds=1, iterations=1)
    rows = {row[0]: row for row in result["response"]}
    assert set(rows) == set(STATIC_SCHEMES) | {"adaptive"}

    adaptive_mean = rows["adaptive"][1]
    static_means = {s: rows[s][1] for s in STATIC_SCHEMES}
    best_static = min(static_means.values())
    worst_static = max(static_means.values())

    if bench_scale() >= 0.5:
        # The headline claim, at the scales the reproduction targets:
        # adaptive matches or beats the best static scheme on a workload
        # where the best scheme is not knowable in advance.
        assert adaptive_mean <= best_static
        assert adaptive_mean < worst_static
    else:
        # Smoke scales shrink the graph until every arm's caches hold
        # everything — the schemes converge and the audition can only
        # measure noise. Assert the machinery, not the margins: adaptive
        # must stay in the pack, never off-the-chart wrong.
        assert adaptive_mean <= worst_static * 1.10

    # The adaptive run actually adapted: it auditioned every arm, settled
    # into committed mode, and routed the bulk of traffic per class.
    per_arm = result["per_arm"]
    assert set(per_arm) == {
        "adaptive:hash", "adaptive:landmark", "adaptive:embed",
    }
    snapshot = result["snapshot"]
    assert snapshot["mode"] == "committed"
    assert snapshot["auditions"] >= 1
    assert set(snapshot["committed"]) == {"point", "walk", "traversal"}
