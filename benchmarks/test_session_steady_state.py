"""Warm sessions vs cold runs (the session API's reason to exist).

A long-lived :class:`~repro.core.service.GraphService` serves the
repeat-heavy mixed workload across two sessions; the steady session must
beat a cold one-shot run of the identical queries. Unlike the
adaptive-vs-static margins, warm-vs-cold holds at *every* scale — small
graphs make caches hold everything, which only widens the gap between a
warmed cache and a cold one — so the headline assertion is not
scale-gated.
"""

from repro.bench import SESSION_SCHEMES, session_steady_state


def test_session_steady_state(benchmark):
    result = benchmark.pedantic(session_steady_state, rounds=1, iterations=1)
    rows = {row[0]: row for row in result["response"]}
    assert set(rows) == set(SESSION_SCHEMES)

    # Headline: for adaptive routing, the warm steady-state session beats
    # the cold-cache run of the same steady segment, on mean response and
    # on cache hit rate.
    _, cold_mean, steady_mean, speedup, cold_hits, _, steady_hits = (
        rows["adaptive"]
    )
    assert steady_mean < cold_mean
    assert speedup > 1.0
    assert steady_hits > cold_hits

    # Warm continuation is a property of the architecture, not of one
    # scheme: every compared scheme's steady session at least matches its
    # cold run.
    for scheme in SESSION_SCHEMES:
        assert rows[scheme][2] <= rows[scheme][1]

    # The steady session started committed — arm state persisted across
    # the session boundary instead of re-auditioning warm caches.
    snapshot = result["adaptive_snapshot"]
    assert snapshot["mode"] == "committed"
    assert set(snapshot["committed"]) == {"point", "walk", "traversal"}

    # Windowed reporting partitions the continuous serve exactly, and the
    # first window (cold caches) hits less than the last (steady state).
    windows = result["windows"]
    assert sum(w["queries"] for w in windows) == result["continuous_queries"]
    assert windows[0]["cache_hit_rate"] < windows[-1]["cache_hit_rate"]
