"""Table 1: dataset analogues and their sizes."""

from repro.bench import table1_datasets


def test_table1_datasets(benchmark):
    rows = benchmark.pedantic(table1_datasets, rounds=1, iterations=1)
    assert len(rows) == 4
    by_name = {row[0]: row for row in rows}
    # Shape: webgraph is the largest dataset by record bytes; freebase is
    # the sparsest (edges < nodes), matching the paper's Table 1 ordering.
    assert by_name["freebase"][2] < by_name["freebase"][1]
    assert by_name["webgraph"][3] == max(row[3] for row in rows)
