"""Design-choice ablations (beyond the paper's sweeps)."""

from repro.bench import (
    ablation_cache_policy,
    ablation_embed_method,
    ablation_partitioner,
    ablation_query_stealing,
    bench_scale,
)


def test_ablation_cache_policy(benchmark):
    rows = benchmark.pedantic(ablation_cache_policy, rounds=1, iterations=1)
    assert {row[0] for row in rows} == {"lru", "fifo", "lfu"}
    # LRU must be competitive: the paper chose it for recency-friendly
    # hotspot workloads.
    by_policy = {row[0]: row[1] for row in rows}
    assert by_policy["lru"] <= min(by_policy.values()) * 1.15


def test_ablation_embed_method(benchmark):
    rows = benchmark.pedantic(ablation_embed_method, rounds=1, iterations=1)
    by_method = {row[0]: row for row in rows}
    # Simplex refinement must not lose routing quality vs plain LMDS.
    assert by_method["simplex"][2] >= by_method["lmds"][2] * 0.9


def test_ablation_partitioner(benchmark):
    rows = benchmark.pedantic(ablation_partitioner, rounds=1, iterations=1)
    by_part = {row[0]: row[1] for row in rows}
    # Better partitioning helps the coupled system (fewer cut messages).
    assert by_part["metis-like"] > by_part["hash"]


def test_ablation_query_stealing(benchmark):
    rows = benchmark.pedantic(ablation_query_stealing, rounds=1, iterations=1)
    by_mode = {row[0]: row for row in rows}
    if bench_scale() < 0.25:
        # Smoke scales: just exercise the machinery — with a near-empty
        # graph the load-balance shapes are noise.
        assert set(by_mode) == {"on", "off"}
        return
    # Stealing must not hurt throughput and should balance load.
    assert by_mode["on"][1] >= by_mode["off"][1] * 0.95
    assert by_mode["on"][2] <= by_mode["off"][2]
