"""Figure 8: processing-tier and storage-tier scalability, WebGraph."""

from repro.bench import (
    SCHEMES,
    bench_scale,
    fig8a_processor_scaling,
    fig8b_cache_hits,
    fig8c_storage_scaling,
)


def test_fig8a_processor_scaling(benchmark):
    rows = benchmark.pedantic(fig8a_processor_scaling, rounds=1, iterations=1)
    columns = {s: i + 1 for i, s in enumerate(SCHEMES)}
    first, last = rows[0], rows[-1]
    # Embed scales: 7 processors give much more throughput than 1 ...
    assert last[columns["embed"]] > 3 * first[columns["embed"]]
    # ... and beat every baseline at 7 processors.
    assert last[columns["embed"]] >= last[columns["hash"]]
    assert last[columns["embed"]] >= last[columns["next_ready"]]


def test_fig8b_cache_hits(benchmark):
    rows = benchmark.pedantic(fig8b_cache_hits, rounds=1, iterations=1)
    schemes = SCHEMES[1:]
    columns = {s: i + 1 for i, s in enumerate(schemes)}
    first, last = rows[0], rows[-1]
    # All schemes tie at 1 processor (single shared cache).
    assert first[columns["hash"]] == first[columns["embed"]]
    if bench_scale() < 0.25:
        # Smoke scales: a 16 MiB cache holds the whole shrunken graph, so
        # per-processor locality differences vanish — machinery only.
        return
    # Hits degrade with processor count for hash; embed sustains far more.
    assert last[columns["hash"]] < first[columns["hash"]]
    assert last[columns["embed"]] > 1.3 * last[columns["hash"]]
    # Embed stays within a modest factor of its single-processor hits.
    assert last[columns["embed"]] > 0.6 * first[columns["embed"]]


def test_fig8c_storage_scaling(benchmark):
    rows = benchmark.pedantic(fig8c_storage_scaling, rounds=1, iterations=1)
    columns = {s: i + 1 for i, s in enumerate(SCHEMES)}
    by_count = {row[0]: row for row in rows}
    # 1 storage server cannot feed 4 processors; 4 servers can.
    assert by_count[4][columns["no_cache"]] > 1.5 * by_count[1][columns["no_cache"]]
    # Saturation: going 4 -> 7 servers helps little (bottleneck moved).
    assert by_count[7][columns["embed"]] < 1.4 * by_count[4][columns["embed"]]
