"""The chaos gate: failover degrades in proportion, the ablation
cliff-dives, and an empty schedule changes nothing.

``fig_chaos`` serves the churn workload open-loop at 0.7x calibrated
capacity through a scripted kill/recover/join schedule (fractions of the
serve span, so the outage covers the same share of the run at smoke
scale and full scale). The gate — held at both scales:

* every scenario completes every query: failover keeps the dead
  server's keys reachable (retry + directory redirect + demand repair),
  and even the ablation's blind retries outlast the scheduled recovery;
* the failover run's worst serve window stays within a small factor of
  the no-chaos baseline — the cluster lost a quarter of its storage
  and is paying repair traffic, so "proportional, not catastrophic";
* the no-failover ablation's worst window cliff-dives: queries whose
  keys live on the dead server have nowhere to go until recovery;
* the elastic machinery converges: repair ran, fail-back drained the
  directory back to pure hash placement, nothing left suspect;
* membership changes stay bounded: the joiner takes at most its fair
  share of hash slots, and actually serves queries once warm;
* the baseline (``topology=None``) is untouched by the machinery —
  zero retries, zero repairs, zero downtime.
"""

import math

from repro.bench import fig_chaos
from repro.bench.experiments import PAPER_DEFAULTS
from repro.core.routing.hashing import HashRouting


def test_chaos(benchmark):
    result = benchmark.pedantic(fig_chaos, rounds=1, iterations=1)
    res = result["results"]
    baseline = res["baseline"]
    failover = res["chaos:failover"]
    ablation = res["chaos:no_failover"]

    # Everyone finishes the whole stream — chaos costs latency, never
    # queries.
    for point in (baseline, failover, ablation):
        assert point["completed"] == result["num_queries"]

    # Headline: proportional degradation vs the cliff. The factors are
    # generous against the measured ratios (full scale: ~3.5x baseline
    # and ~5.7x under the ablation; smoke: ~2.8x and ~8.6x).
    assert failover["worst_window_p99_ms"] <= (
        4.5 * baseline["worst_window_p99_ms"]
    )
    assert ablation["worst_window_p99_ms"] >= (
        3.0 * failover["worst_window_p99_ms"]
    )
    assert ablation["mean_sojourn_ms"] > 3.0 * failover["mean_sojourn_ms"]

    # The machinery actually ran, and converged: records re-homed during
    # the outage (the demand wave serviced blocked readers), then failed
    # back after recovery until the directory drained to pure hash.
    assert failover["repair_records"] > 0
    assert failover["demand_repairs"] > 0
    assert failover["failbacks"] > 0
    assert failover["failover_keys_left"] == 0
    assert failover["suspect_writes_left"] == 0
    assert failover["storage_retries"] > 0

    # Downtime accounting: both chaos runs saw the same scripted outage,
    # recovery time == downtime (the server came back on schedule, not
    # "eventually").
    for point in (failover, ablation):
        assert point["downtime_s"] == point["recovery_s"] > 0
        assert point["epoch"] == 3  # fail + recover + join
    assert baseline["downtime_s"] == 0.0
    assert baseline["recovery_s"] == 0.0

    # The ablation repaired nothing — its survival is retry-until-
    # recovery, which is exactly why its worst window is the outage.
    # (Retry *counts* aren't ordered between the runs: failover's
    # blocked readers re-probe quickly while awaiting demand repair,
    # the ablation's back off and stall.)
    assert ablation["repair_records"] == 0
    assert ablation["failbacks"] == 0
    assert ablation["storage_retries"] > 0

    # Bounded rebalance on join: the joiner takes at most a fair share
    # of the hash ring (ceil(slots / new_size)) and then earns traffic.
    num_processors = PAPER_DEFAULTS["num_processors"]
    slots = num_processors * HashRouting.SLOTS_PER_PROCESSOR
    fair_share = math.ceil(slots / (num_processors + 1))
    for point in (failover, ablation):
        assert 0 < point["moved_entries"] <= fair_share
        assert point["joiner_queries"] > 0

    # Disabled subsystem == the static cluster: no retries, no repair,
    # no movement. (Bit-identical artifacts are held by the root test
    # suite's parity checks; this row shows the counters agree.)
    for key in ("storage_retries", "repair_records", "repair_bytes",
                "failbacks", "demand_repairs", "write_failures",
                "moved_entries", "joiner_queries", "epoch"):
        assert baseline[key] == 0
