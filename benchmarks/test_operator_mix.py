"""Six-operator mixed workload through the registry (beyond the paper).

The registry's end-to-end benchmark: all six built-in operators — the
paper's three plus PPR, batched k-source reachability and neighborhood
sampling — interleaved into one stream and served under static and
adaptive routing, with a per-(scheme, operator) breakdown artifact.
"""

from repro.bench.operator_mix import ALL_OPERATORS, OPERATOR_MIX_SCHEMES, operator_mix


def test_operator_mix(benchmark):
    result = benchmark.pedantic(operator_mix, rounds=1, iterations=1)

    per_operator = result["per_operator"]
    assert set(per_operator) == set(OPERATOR_MIX_SCHEMES)

    # Every operator completed under every scheme — including adaptive,
    # whose per-class arms must classify and route all six.
    for routing in OPERATOR_MIX_SCHEMES:
        breakdown = per_operator[routing]
        assert set(ALL_OPERATORS) <= set(breakdown)
        for name in ALL_OPERATORS:
            assert breakdown[name]["queries"] > 0
            assert breakdown[name]["mean_response_ms"] > 0
    counts = {
        routing: sum(int(stats["queries"]) for stats in breakdown.values())
        for routing, breakdown in per_operator.items()
    }
    # Identical workload per scheme: nothing dropped, nothing duplicated.
    assert len(set(counts.values())) == 1
    assert counts["adaptive"] == result["total_queries"]

    # The adaptive run adapted: arms were exercised and commitments made
    # per query class (all three classes appear in the six-operator mix).
    assert result["snapshot"]["mode"] == "committed"
    assert set(result["snapshot"]["committed"]) == {
        "point", "walk", "traversal",
    }
    assert result["per_arm"], "adaptive must record per-arm decisions"
