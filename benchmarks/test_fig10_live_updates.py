"""Figure 10, live edition: smart routing under real update churn.

The acceptance shape: (a) smart routing (embed/adaptive) retains an
advantage over hash routing while the graph churns under live traffic,
and (b) at the same churn rate, periodic incremental refresh of the
routing assets beats letting staleness accumulate — for every smart
scheme. Margins are loose: simulated results are deterministic per scale,
but the gate must hold at full scale and the CI smoke scale alike.
"""

from repro.bench import fig10_live_updates, live_update_summary


def test_fig10_live_updates(benchmark):
    rows = benchmark.pedantic(fig10_live_updates, rounds=1, iterations=1)
    headline = live_update_summary(rows)

    # (a) Smart routing beats hash under live churn (with refresh on).
    assert headline["embed_refresh_ms"] <= headline["hash_ms"] * 0.99
    assert headline["adaptive_refresh_ms"] <= headline["hash_ms"] * 0.95
    assert headline["landmark_refresh_ms"] <= headline["hash_ms"] * 0.95

    # (b) Incremental refresh beats no-refresh at the same churn rate.
    assert headline["embed_refresh_ms"] <= headline["embed_stale_ms"] * 0.995
    assert headline["landmark_refresh_ms"] <= headline["landmark_stale_ms"] * 0.98
    assert headline["adaptive_refresh_ms"] <= headline["adaptive_stale_ms"] * 0.98

    # The run really churned: updates applied, nodes added, records
    # rewritten, and the refreshing configs actually refreshed.
    by_config = {(row[0], row[1]): row for row in rows}
    hash_row = by_config[("hash", "none")]
    assert hash_row[5] > 0 and hash_row[6] > 0 and hash_row[7] > 0
    refreshing = [row for row in rows if row[1] != "none"]
    assert all(row[8] > 0 for row in refreshing)
    # Refresh bounds staleness; no-refresh accumulates it.
    assert all(row[9] <= hash_row[9] for row in refreshing)
    assert hash_row[9] > 0
