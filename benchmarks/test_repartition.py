"""The repartition gate: dynamic placement beats every static placement
on a shifting hotspot, and over-rebalancing is measurably worse.

``fig_repartition`` serves one skewed, phase-shifting workload open-loop
at 0.9x calibrated capacity with starved caches (so the storage tier is
the bottleneck placement can actually move). The gate — held at smoke
scale and full scale, because the placement loop's cadence is derived
from calibrated capacity:

* the tuned dynamic loop's mean sojourn beats *every* static placement,
  including the one riding the identical routing scheme;
* the over-aggressive ablation (near-zero threshold, full fan-out,
  oversized budget, 8x cadence) is measurably worse than the tuned loop
  — its copies queue in the same pipelines live queries fetch from;
* migration traffic is honest: itemized as ``migration_bytes`` in the
  report AND accounted in the per-server write counters, and exactly
  zero when the subsystem is disabled.
"""

from repro.bench import STATIC_ROUTINGS, fig_repartition


def test_repartition(benchmark):
    result = benchmark.pedantic(fig_repartition, rounds=1, iterations=1)
    res = result["results"]
    assert result["capacity_qps"] > 0

    statics = [res[f"static:{routing}"] for routing in STATIC_ROUTINGS]
    dynamic = res["dynamic"]
    aggressive = res["dynamic:aggressive"]

    # Headline: the dynamic loop beats every static placement on the
    # metric queueing shows up in — and it rides the best static routing,
    # so the win is attributable to placement alone.
    for static in statics:
        assert dynamic["mean_sojourn_ms"] < static["mean_sojourn_ms"], (
            f"dynamic lost to {static['label']}"
        )
    assert dynamic["routing"] == res[result["best_static"]]["routing"]

    # The ablation: rebalancing everything, all the time, with no budget
    # is not "more of a good thing" — the copy traffic's pipeline time
    # costs live queries more than the placements save.
    assert aggressive["mean_sojourn_ms"] > 1.2 * dynamic["mean_sojourn_ms"]
    assert aggressive["migration_bytes"] > dynamic["migration_bytes"]

    # The dynamic row actually did something, and paid for it honestly:
    # bytes itemized in the report and accounted on the servers' write
    # counters (framing makes the server-side figure strictly larger).
    assert dynamic["replications"] > 0
    assert dynamic["migration_bytes"] > 0
    assert dynamic["active_placements"] > 0
    served_writes = sum(
        s["bytes_written"] for s in dynamic["per_server"]
    )
    assert served_writes >= dynamic["migration_bytes"] > 0

    # Disabled subsystem == zero cost, zero traffic, zero directory.
    for static in statics:
        assert static["migration_bytes"] == 0
        assert static["replications"] == 0
        assert static["active_placements"] == 0
        assert sum(s["bytes_written"] for s in static["per_server"]) == 0
