"""Figure 10: robustness of smart routing under graph updates."""

from repro.bench import fig10_graph_updates


def test_fig10_graph_updates(benchmark):
    rows = benchmark.pedantic(fig10_graph_updates, rounds=1, iterations=1)
    by_fraction = {row[0]: row for row in rows}
    # Full preprocessing is at least as good as preprocessing 20% ...
    assert by_fraction[100][1] <= by_fraction[20][1] * 1.05
    # ... and degradation is graceful: at 80% the embed response is within
    # ~20% of the fully preprocessed one (paper: 34 ms -> 37 ms).
    assert by_fraction[80][1] <= by_fraction[100][1] * 1.25
    # At 20% preprocessed, embed approaches (but shouldn't hugely exceed)
    # the hash-routing reference.
    hash_ms = by_fraction[20][3]
    assert by_fraction[20][1] <= hash_ms * 1.3
