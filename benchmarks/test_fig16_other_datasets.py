"""Figure 16: Memetracker and Friendster, 2-hop hotspot / 2-hop traversal."""

from repro.bench import fig16_other_datasets


def test_fig16_other_datasets(benchmark):
    rows = benchmark.pedantic(fig16_other_datasets, rounds=1, iterations=1)
    response = {(row[0], row[1]): row[2] for row in rows}
    hit_rate = {(row[0], row[1]): row[3] for row in rows}
    for dataset in ("memetracker", "friendster"):
        # On Friendster the smart-over-baseline edge is tiny (paper: ~3%),
        # so allow embed ~= hash there.
        assert response[(dataset, "embed")] <= response[(dataset, "hash")] * 1.05
        assert response[(dataset, "hash")] <= response[(dataset, "no_cache")] * 1.05
    # Fig 16(b)'s point: caching helps Friendster much less than the
    # webgraph-style datasets — its relative no-cache -> embed saving is
    # smaller than Memetracker's.
    meme_gain = 1 - response[("memetracker", "embed")] / response[("memetracker", "no_cache")]
    friend_gain = 1 - response[("friendster", "embed")] / response[("friendster", "no_cache")]
    assert friend_gain < meme_gain
    # Friendster's hotspots overlap less: lower smart-routing hit rate.
    assert hit_rate[("friendster", "embed")] < hit_rate[("memetracker", "embed")]
