"""Figure 13: number of landmarks and their separation."""

from repro.bench import fig13a_landmark_count, fig13b_landmark_separation


def test_fig13a_landmark_count(benchmark):
    rows = benchmark.pedantic(fig13a_landmark_count, rounds=1, iterations=1)
    embed_ms = {row[0]: row[1] for row in rows}
    hash_ms = rows[0][3]
    # More landmarks help: 96 landmarks beat 4, and beat the hash baseline.
    assert embed_ms[96] <= embed_ms[4] * 1.02
    assert embed_ms[96] < hash_ms


def test_fig13b_landmark_separation(benchmark):
    rows = benchmark.pedantic(fig13b_landmark_separation, rounds=1,
                              iterations=1)
    hash_ms = rows[0][3]
    # Separation has no dramatic influence (paper): every setting keeps
    # smart routing ahead of hash.
    for _separation, embed_ms, landmark_ms, _hash in rows:
        assert embed_ms < hash_ms
        assert landmark_ms < hash_ms * 1.1
