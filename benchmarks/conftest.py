"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper via
``benchmark.pedantic(fn, rounds=1, iterations=1)`` — experiments are
deterministic simulations, so one round measures the harness cost and the
table itself is the artifact (printed + saved under ``bench_results/``).

Set ``REPRO_BENCH_SCALE=0.25`` for a fast smoke pass on quarter-size graphs.
"""
