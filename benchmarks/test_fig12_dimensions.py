"""Figure 12: embedding dimensionality — error and response time."""

from repro.bench import fig12a_embedding_error, fig12b_dimension_response


def test_fig12a_embedding_error(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12a_embedding_error(dims=(2, 5, 10, 15, 20)),
        rounds=1, iterations=1,
    )
    errors = {row[0]: row[1] for row in rows}
    # Error shrinks with dimensionality and saturates around 10 (Fig 12a).
    assert errors[10] < errors[2]
    assert errors[20] < errors[2]


def test_fig12b_dimension_response(benchmark):
    rows = benchmark.pedantic(fig12b_dimension_response, rounds=1,
                              iterations=1)
    embed_ms = {row[0]: row[1] for row in rows}
    hash_ms = rows[0][2]
    # Around 10 dimensions embed routing beats the hash baseline.
    assert embed_ms[10] < hash_ms
    # Very low dimensionality routes worse than the sweet spot.
    assert embed_ms[10] <= embed_ms[2] * 1.02
