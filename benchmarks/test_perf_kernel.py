"""Hot-path perf benchmark: kernel microbench + operator-mix wall clock.

The kernel microbench runs an identical event program on the frozen
pre-overhaul kernel and on the live one, so the speedup it reports is
measured on *this* machine in *this* process — the artifact records both
events/sec numbers. The microbench ratio is machine-stable (pure
interpreter work, no I/O, best-of-N), which is why it is the one number
CI hard-gates; the operator-mix wall clock is recorded for the trajectory
but varies with the runner and is not asserted.

Set ``REPRO_PERF_BASELINE`` to a committed ``perf_hotpath.json`` to also
enforce the CI regression gate: the rewritten-vs-legacy *speedup ratio*
must stay within 30% of the committed baseline's ratio. Gating on the
ratio (not absolute events/sec) keeps the gate machine-fair — a slower
runner slows both kernels alike, while a real regression in the live
kernel drops the ratio wherever it runs.
"""

import json
import os

from repro.bench.perf import perf_hotpath

#: Machine-independent floor asserted everywhere (the committed artifact
#: records the actual ratio, >= 2x on the reference run).
MIN_SPEEDUP = 1.5

#: CI regression gate: allow 30% slack vs the committed baseline's
#: speedup ratio before failing (runner-to-runner variance of the ratio
#: is well under this; a real regression — e.g. losing the pooled-timeout
#: path — costs more).
BASELINE_TOLERANCE = 0.70


def _baseline_speedup(path: str) -> float:
    payload = json.loads(open(path).read())
    for row in payload["rows"]:
        if row[0] == "kernel_micro/speedup":
            return float(row[2])
    raise AssertionError(f"no kernel_micro/speedup row in {path}")


def test_perf_hotpath(benchmark):
    result = benchmark.pedantic(perf_hotpath, rounds=1, iterations=1)

    micro = result["kernel_microbench"]
    assert micro["events"] > 100_000  # the program is big enough to time
    assert micro["rewritten_events_per_second"] > 0
    assert micro["legacy_events_per_second"] > 0
    assert micro["speedup"] >= MIN_SPEEDUP, (
        f"kernel rewrite speedup {micro['speedup']:.2f}x fell below "
        f"{MIN_SPEEDUP}x vs the frozen legacy kernel"
    )

    mix = result["operator_mix"]
    assert mix["queries"] > 0
    assert mix["events"] > 0
    assert mix["queries_per_second"] > 0

    baseline = os.environ.get("REPRO_PERF_BASELINE")
    if baseline:
        floor = BASELINE_TOLERANCE * _baseline_speedup(baseline)
        assert micro["speedup"] >= floor, (
            f"kernel microbench regressed >30% vs committed baseline "
            f"speedup: {micro['speedup']:.2f}x < {floor:.2f}x"
        )
