"""Hot-path perf benchmark: kernel microbench + operator-mix wall clock.

The kernel microbench runs an identical event program on the frozen
pre-overhaul kernel and on every live kernel (heap, calendar, native
when a C toolchain is present), so the speedups it reports are measured
on *this* machine in *this* process — the artifact records every
events/sec number (p50 of interleaved runs). The microbench ratios are
machine-stable (pure interpreter work, no I/O), which is why they are
the numbers CI hard-gates; the operator-mix wall clock is recorded for
the trajectory but varies with the runner and is not asserted.

The regression gate compares against the *committed*
``bench_results/perf_hotpath.json`` by default: each kernel's
legacy-relative *speedup ratio* must stay within 30% of the committed
baseline's ratio for that same kernel, and the calendar kernel must beat
the committed heap baseline outright. Gating on ratios (not absolute
events/sec) keeps the gate machine-fair — a slower runner slows every
kernel alike, while a real regression in one kernel drops its ratio
wherever it runs. Set ``REPRO_PERF_BASELINE`` to point the gate at a
different artifact, or to ``skip`` to disable the baseline comparison
(e.g. while intentionally re-baselining).
"""

import json
import os
from pathlib import Path
from typing import Dict

from repro.bench.perf import perf_hotpath

#: Machine-independent floor asserted everywhere for the pure-python
#: calendar kernel (the committed artifact records the actual ratios,
#: >= 3x calendar / >= 5x native on the reference run).
MIN_SPEEDUP = 1.5

#: CI regression gate: allow 30% slack vs the committed baseline's
#: per-kernel speedup ratio before failing (runner-to-runner variance of
#: the ratio is well under this; a real regression — e.g. losing the
#: pooled-timeout path or the cohort fast path — costs more).
BASELINE_TOLERANCE = 0.70

_COMMITTED = Path(__file__).resolve().parent.parent \
    / "bench_results" / "perf_hotpath.json"


def _baseline_path() -> str:
    override = os.environ.get("REPRO_PERF_BASELINE")
    if override == "skip":
        return ""
    if override:
        return override
    return str(_COMMITTED) if _COMMITTED.exists() else ""


def _baseline_speedups(path: str) -> Dict[str, float]:
    """Per-kernel legacy-relative ratios from a committed artifact."""
    payload = json.loads(open(path).read())
    ratios = {}
    for row in payload["rows"]:
        name = row[0]
        if name.startswith("kernel_micro/speedup_"):
            ratios[name.split("speedup_", 1)[1]] = float(row[2])
        elif name == "kernel_micro/speedup" and "headline" not in ratios:
            ratios["headline"] = float(row[2])
    assert ratios, f"no kernel_micro/speedup rows in {path}"
    return ratios


def test_perf_hotpath(benchmark):
    # Snapshot the baseline *before* the run: perf_hotpath() rewrites
    # bench_results/perf_hotpath.json in place, and a gate that read the
    # default path afterwards would compare the run against itself.
    baseline = _baseline_path()
    committed = _baseline_speedups(baseline) if baseline else {}

    result = benchmark.pedantic(perf_hotpath, rounds=1, iterations=1)

    micro = result["kernel_microbench"]
    assert micro["events"] > 100_000  # the program is big enough to time
    assert micro["legacy_events_per_second"] > 0
    for kind in micro["kernels"]:
        assert micro[f"{kind}_events_per_second"] > 0
    assert micro["speedup_calendar"] >= MIN_SPEEDUP, (
        f"calendar kernel speedup {micro['speedup_calendar']:.2f}x fell "
        f"below {MIN_SPEEDUP}x vs the frozen legacy kernel"
    )
    # The calendar queue exists to beat the binary heap; measured in the
    # same process, same program, it must actually do so.
    assert micro["calendar_wall_seconds"] <= micro["heap_wall_seconds"], (
        f"calendar kernel ({micro['calendar_wall_seconds']:.4f}s) slower "
        f"than the heap kernel ({micro['heap_wall_seconds']:.4f}s)"
    )

    mix = result["operator_mix"]
    assert mix["queries"] > 0
    assert mix["events"] > 0
    assert mix["queries_per_second"] > 0

    if committed:
        for kind in micro["kernels"]:
            if kind not in committed:
                continue  # kernel not present in the baseline artifact
            floor = BASELINE_TOLERANCE * committed[kind]
            measured = micro[f"speedup_{kind}"]
            assert measured >= floor, (
                f"{kind} kernel regressed >30% vs committed baseline "
                f"speedup: {measured:.2f}x < {floor:.2f}x"
            )
        if "heap" in committed:
            assert micro["speedup_calendar"] >= committed["heap"], (
                f"calendar kernel ({micro['speedup_calendar']:.2f}x) no "
                f"longer beats the committed heap baseline "
                f"({committed['heap']:.2f}x)"
            )
