"""The SLO overload gate: admission + adaptive routing holds p99 where
naive FIFO collapses.

``fig_slo_overload`` sweeps offered load from 0.25x to 1.5x calibrated
capacity for two front doors. The gate (held at smoke scale and full
scale — capacity calibration makes the multipliers scale-invariant):

* with admission control + adaptive routing, worst-tenant p99 sojourn at
  the highest pre-saturation load point (0.9x) stays under 3x the
  lightest-load (0.25x) p99;
* naive FIFO (``next_ready``, unbounded router queueing) degrades
  super-linearly: its p99 at 1.5x grows by more than the 6x load ratio;
* past saturation the admission front door beats FIFO outright, and pays
  for it honestly — sheds/rejects work (delivery ratio < 1) yet still
  completes more per second than FIFO's everything-eventually approach.
"""

from repro.bench import LOAD_POINTS, fig_slo_overload


def test_slo_overload(benchmark):
    result = benchmark.pedantic(fig_slo_overload, rounds=1, iterations=1)
    res = result["results"]
    assert result["capacity_qps"] > 0

    def admission(load):
        return res[f"adaptive+admission@{load}"]

    def fifo(load):
        return res[f"fifo@{load}"]

    lightest, pre_saturation, overload = 0.25, 0.9, 1.5
    assert {lightest, pre_saturation, overload} <= set(LOAD_POINTS)

    # Headline SLO: p99 held within 3x of the lightest-load p99 right up
    # to the edge of saturation.
    assert admission(pre_saturation)["worst_p99_ms"] < (
        3.0 * admission(lightest)["worst_p99_ms"]
    )

    # Naive FIFO degrades super-linearly: 6x the load, > 6x the p99.
    load_ratio = overload / lightest
    assert fifo(overload)["worst_p99_ms"] > (
        load_ratio * fifo(lightest)["worst_p99_ms"]
    )

    # Past saturation the two front doors diverge: FIFO's p99 keeps
    # growing with backlog, admission's stays in the same regime it held
    # pre-saturation (within 2x of its 0.9x value).
    assert fifo(overload)["worst_p99_ms"] > (
        2.0 * admission(overload)["worst_p99_ms"]
    )
    assert admission(overload)["worst_p99_ms"] < (
        2.0 * admission(pre_saturation)["worst_p99_ms"]
    )

    # The price of the held SLO is explicit, accounted drops — not magic:
    # under overload the admission layer sheds and/or rejects, records
    # time in overload, and its goodput still beats FIFO's.
    dropped = admission(overload)["shed"] + admission(overload)["rejected"]
    assert dropped > 0
    assert admission(overload)["delivery_ratio"] < 1.0
    assert admission(overload)["time_in_overload_s"] > 0
    assert admission(overload)["goodput_qps"] > fifo(overload)["goodput_qps"]

    # Closed-loop sanity at light load: nothing is dropped, both doors
    # deliver everything.
    assert admission(lightest)["delivery_ratio"] == 1.0
    assert fifo(lightest)["delivery_ratio"] == 1.0

    # The latency-sensitive tenant is protected specifically: interactive
    # p99 under overload stays below FIFO's (which serves it behind the
    # analytics backlog).
    adm_tenants = admission(overload)["per_tenant"]
    fifo_tenants = fifo(overload)["per_tenant"]
    assert adm_tenants["interactive"]["p99_sojourn_ms"] < (
        fifo_tenants["interactive"]["p99_sojourn_ms"]
    )
