"""Figure 11: load factor (query stealing) and EMA alpha sensitivity."""

from repro.bench import fig11a_load_factor, fig11b_alpha


def test_fig11a_load_factor(benchmark):
    rows = benchmark.pedantic(fig11a_load_factor, rounds=1, iterations=1)
    throughputs = [row[1] for row in rows]  # embed column
    # Intermediate load factors dominate at least one extreme (the paper's
    # inverted-U): pure load balancing and pure locality both lose.
    best = max(throughputs)
    assert best >= throughputs[0]  # better than load-only routing
    assert best * 1.0 >= throughputs[-1]  # no worse than locality-only


def test_fig11b_alpha(benchmark):
    rows = benchmark.pedantic(fig11b_alpha, rounds=1, iterations=1)
    embed_ms = {row[0]: row[1] for row in rows}
    hash_ms = rows[0][2]
    # Mid-range alpha must beat the hash baseline (smart routing works).
    assert min(embed_ms[0.25], embed_ms[0.5], embed_ms[0.75]) < hash_ms
