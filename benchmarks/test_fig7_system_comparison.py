"""Figure 7: gRouting vs SEDGE/Giraph vs PowerGraph throughput."""

from repro.bench import fig7_system_comparison


def test_fig7_system_comparison(benchmark):
    rows = benchmark.pedantic(fig7_system_comparison, rounds=1, iterations=1)
    for dataset, sedge, powergraph, grouting_e, grouting, ratio in rows:
        # Paper's headline: decoupled gRouting with hash partitioning beats
        # both coupled systems; Infiniband beats Ethernet; PowerGraph
        # beats SEDGE.
        assert grouting > grouting_e, dataset
        assert grouting_e > powergraph, dataset
        assert powergraph > sedge, dataset
        # "up to an order of magnitude": at least several-fold everywhere.
        assert ratio >= 3, dataset
