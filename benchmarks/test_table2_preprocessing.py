"""Tables 2 and 3: preprocessing time and storage."""

from repro.bench import table2_preprocessing, table3_storage


def test_table2_preprocessing(benchmark):
    rows = benchmark.pedantic(table2_preprocessing, rounds=1, iterations=1)
    phases = {row[0] for row in rows}
    assert "landmark BFS" in phases
    assert any("embed nodes" in p for p in phases)


def test_table3_storage(benchmark):
    rows = benchmark.pedantic(table3_storage, rounds=1, iterations=1)
    sizes = {row[0]: row[1] for row in rows}
    # Paper Table 3 shape: both preprocessed structures are a small
    # fraction of the original graph.
    graph = sizes["original graph (records)"]
    assert sizes["landmark d(u,p) table"] < 0.5 * graph
    assert sizes["embedding coordinates"] < 0.7 * graph
