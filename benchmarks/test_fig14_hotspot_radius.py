"""Figure 14: r-hop hotspot workloads (r = 1, 2), 2-hop traversals."""

from repro.bench import fig14_hotspot_radius


def test_fig14_hotspot_radius(benchmark):
    result = benchmark.pedantic(fig14_hotspot_radius, rounds=1, iterations=1)
    response = {(row[0], row[1]): row[2] for row in result["response"]}
    cache = {(row[0], row[1]): (row[2], row[3]) for row in result["cache"]}
    for radius in ("1-hop", "2-hop"):
        # Smart routing beats the baselines, which beat no-cache.
        assert response[(radius, "embed")] < response[(radius, "hash")]
        assert response[(radius, "landmark")] < response[(radius, "next_ready")]
        assert response[(radius, "hash")] < response[(radius, "no_cache")]
        # And it earns that with strictly more cache hits.
        assert cache[(radius, "embed")][0] > cache[(radius, "hash")][0]
    # Tighter hotspots (r=1) overlap more, so smart routing hits more.
    assert cache[("1-hop", "embed")][0] >= cache[("2-hop", "embed")][0] * 0.9
