"""Landmark-to-node BFS distance tables.

One BFS per landmark over the bi-directed graph yields the |L| x n distance
matrix that both smart-routing schemes build on: landmark routing derives
its node-to-processor distances from it, and embed routing uses it as the
target metric for the embedding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graph.csr import CSRGraph

#: Sentinel for "no path" in distance matrices.
UNREACHABLE = -1


class LandmarkDistances:
    """Distance matrix ``matrix[l, u]`` = hops from landmark ``l`` to node ``u``."""

    def __init__(self, landmarks: Sequence[int], matrix: np.ndarray) -> None:
        if matrix.shape[0] != len(landmarks):
            raise ValueError("matrix rows must match landmark count")
        self.landmarks = list(landmarks)
        self.matrix = matrix

    @classmethod
    def compute(cls, csr: CSRGraph, landmarks: Sequence[int]) -> "LandmarkDistances":
        """Run one full BFS per landmark (O(|L| * e) total, §3.4.1)."""
        matrix = np.empty((len(landmarks), csr.num_nodes), dtype=np.int32)
        for row, landmark in enumerate(landmarks):
            matrix[row] = csr.bfs_distances([landmark])
        return cls(landmarks, matrix)

    @property
    def num_landmarks(self) -> int:
        return len(self.landmarks)

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[1]

    def to_node(self, node_index: int) -> np.ndarray:
        """Distances from every landmark to one node (length |L|)."""
        return self.matrix[:, node_index]

    def pair_matrix(self) -> np.ndarray:
        """|L| x |L| landmark-to-landmark hop distances."""
        columns = np.array(self.landmarks, dtype=np.int64)
        return self.matrix[:, columns]

    def triangle_bounds(self, u: int, v: int) -> tuple[int, int]:
        """Landmark bounds on d(u, v) (paper Eq. 2).

        Returns ``(lower, upper)`` over all landmarks reaching both nodes;
        ``(0, UNREACHABLE)`` if no landmark reaches both.
        """
        du = self.matrix[:, u].astype(np.int64)
        dv = self.matrix[:, v].astype(np.int64)
        mask = (du >= 0) & (dv >= 0)
        if not mask.any():
            return (0, UNREACHABLE)
        upper = int((du[mask] + dv[mask]).min())
        lower = int(np.abs(du[mask] - dv[mask]).max())
        return (lower, upper)

    def storage_bytes(self) -> int:
        """Router-side footprint of the raw landmark table."""
        return self.matrix.nbytes
