"""Landmark machinery for smart routing (selection, BFS tables, pivots)."""

from .assignment import assign_landmarks_to_processors, node_processor_distances
from .distances import UNREACHABLE, LandmarkDistances
from .index import LandmarkIndex
from .selection import select_landmarks

__all__ = [
    "LandmarkDistances",
    "LandmarkIndex",
    "UNREACHABLE",
    "assign_landmarks_to_processors",
    "node_processor_distances",
    "select_landmarks",
]
