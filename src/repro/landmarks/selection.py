"""Landmark selection (§3.4.1, Preprocessing).

The paper selects landmarks by degree, spread across the graph: walk the
nodes in decreasing degree order and accept a candidate only if it is at
least ``min_separation`` hops away from every landmark already chosen
("if we find two landmarks to be closer than a pre-defined threshold, the
one with the lower degree is discarded").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.csr import CSRGraph


def select_landmarks(
    csr: CSRGraph,
    count: int,
    min_separation: int = 3,
) -> List[int]:
    """Pick up to ``count`` landmark nodes (compact indices).

    ``csr`` should be the bi-directed view of the graph: landmark distances
    are hop counts ignoring edge direction (§3.4.1 considers a bi-directed
    version of the input graph).

    Returns fewer than ``count`` landmarks when the separation constraint
    exhausts the graph first.
    """
    if count < 1:
        raise ValueError("need at least one landmark")
    if min_separation < 1:
        raise ValueError("min_separation must be >= 1")

    degrees = csr.degrees()
    order = np.argsort(-degrees, kind="stable")
    forbidden = np.zeros(csr.num_nodes, dtype=bool)
    landmarks: List[int] = []
    for candidate in order:
        candidate = int(candidate)
        if forbidden[candidate]:
            continue
        if degrees[candidate] == 0:
            break  # isolated nodes make useless landmarks; order is sorted
        landmarks.append(candidate)
        if len(landmarks) == count:
            break
        # Nodes strictly closer than min_separation become ineligible.
        nearby = csr.bfs_distances([candidate], max_hops=min_separation - 1)
        forbidden |= nearby >= 0
    return landmarks
