"""The landmark routing index: selection + distances + assignment + updates.

This is the router-resident structure behind landmark routing: the
``(n, P)`` node-to-processor distance table (O(nP) storage, §3.4.1), plus
the incremental maintenance the paper describes for graph updates — new
nodes get distances from their neighbors' distances, edge updates refresh
the endpoints and their neighbors up to 2 hops, and a periodic full rebuild
resets accumulated approximation error.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.digraph import Graph
from ..graph.traversal import bfs_distances
from .assignment import assign_landmarks_to_processors, node_processor_distances
from .distances import UNREACHABLE, LandmarkDistances
from .selection import select_landmarks


class LandmarkIndex:
    """Per-node processor distances derived from landmark BFS tables."""

    def __init__(
        self,
        node_ids: np.ndarray,
        landmark_node_ids: List[int],
        landmark_matrix: np.ndarray,
        groups: List[List[int]],
        table: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.landmark_node_ids = landmark_node_ids
        self.groups = groups
        self._row: Dict[int, int] = {int(n): i for i, n in enumerate(node_ids)}
        # Distances as float32 with +inf for "unreachable": uniform math for
        # the base matrix and incremental overlays.
        base = landmark_matrix.astype(np.float32)
        base[landmark_matrix == UNREACHABLE] = np.inf
        self._landmark_dist = base  # (L, n)
        self._table = table.astype(np.float32)  # (n, P)
        self._extra_landmark: Dict[int, np.ndarray] = {}
        self._extra_table: Dict[int, np.ndarray] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        num_processors: int,
        num_landmarks: int = 96,
        min_separation: int = 3,
        csr: Optional[CSRGraph] = None,
    ) -> "LandmarkIndex":
        """Full preprocessing pass over ``graph``.

        Pass a prebuilt bi-directed ``csr`` to avoid rebuilding it when the
        caller already has one (benchmark harnesses reuse it heavily).
        """
        if csr is None:
            csr = CSRGraph.from_graph(graph, direction="both")
        landmarks = select_landmarks(csr, num_landmarks, min_separation)
        if not landmarks:
            raise ValueError("graph yielded no usable landmarks")
        distances = LandmarkDistances.compute(csr, landmarks)
        groups = assign_landmarks_to_processors(
            distances.pair_matrix(), num_processors
        )
        table = node_processor_distances(distances.matrix, groups)
        landmark_node_ids = [int(csr.node_ids[l]) for l in landmarks]
        return cls(csr.node_ids, landmark_node_ids, distances.matrix, groups, table)

    # -- lookups ------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return self._table.shape[1]

    @property
    def num_landmarks(self) -> int:
        return self._landmark_dist.shape[0]

    def knows(self, node_id: int) -> bool:
        return node_id in self._row or node_id in self._extra_table

    def processor_distances(self, node_id: int) -> Optional[np.ndarray]:
        """d(u, p) for every processor, or None for unindexed nodes."""
        row = self._row.get(node_id)
        if row is not None:
            return self._table[row]
        return self._extra_table.get(node_id)

    def landmark_vector(self, node_id: int) -> Optional[np.ndarray]:
        """Distances from ``node_id`` to every landmark (inf = unreachable)."""
        row = self._row.get(node_id)
        if row is not None:
            return self._landmark_dist[:, row]
        return self._extra_landmark.get(node_id)

    def storage_bytes(self) -> int:
        """Router-side footprint: the d(u,p) table plus overlays."""
        extra = sum(v.nbytes for v in self._extra_table.values())
        return self._table.nbytes + extra

    # -- incremental maintenance ------------------------------------------------
    def _table_row_from_vector(self, vector: np.ndarray) -> np.ndarray:
        row = np.full(self.num_processors, np.inf, dtype=np.float32)
        for processor, group in enumerate(self.groups):
            if group:
                row[processor] = vector[group].min()
        return row

    def _set_vector(self, node_id: int, vector: np.ndarray) -> None:
        row = self._row.get(node_id)
        if row is not None:
            self._landmark_dist[:, row] = vector
            self._table[row] = self._table_row_from_vector(vector)
        else:
            self._extra_landmark[node_id] = vector
            self._extra_table[node_id] = self._table_row_from_vector(vector)

    def _relaxed_vector(self, neighbor_ids: Iterable[int]) -> np.ndarray:
        """1 + elementwise-min over known neighbors' landmark vectors."""
        vector = np.full(self.num_landmarks, np.inf, dtype=np.float32)
        for neighbor in neighbor_ids:
            neighbor_vec = self.landmark_vector(neighbor)
            if neighbor_vec is not None:
                np.minimum(vector, neighbor_vec + 1.0, out=vector)
        return vector

    def add_node(self, node_id: int, neighbor_ids: Iterable[int]) -> None:
        """Index a newly added node from its (already indexed) neighbors.

        The paper computes the new node's distance to every landmark; we
        realise that with one relaxation step — exact when the neighbors'
        vectors are exact, an upper bound otherwise.
        """
        if self.knows(node_id):
            raise ValueError(f"node {node_id} already indexed")
        self._set_vector(node_id, self._relaxed_vector(neighbor_ids))

    def update_edge(self, graph: Graph, u: int, v: int, added: bool = True) -> None:
        """Refresh distances after an edge change between existing nodes.

        Per the paper, the endpoints and their neighbors up to 2 hops get
        their landmark distances recomputed. We recompute by relaxation
        over the *current* graph; for deletions this is the paper's
        "simpler approach" approximation, with drift removed by periodic
        :meth:`rebuild`.
        """
        affected: set[int] = set()
        for endpoint in (u, v):
            if endpoint in graph:
                affected.update(
                    bfs_distances(graph, endpoint, max_hops=2, direction="both")
                )
        if not affected:
            return
        # Two relaxation passes propagate improvements across the patch.
        for _ in range(2):
            for node in sorted(affected):
                vector = self._relaxed_vector(graph.neighbors(node))
                if node in set(self.landmark_node_ids):
                    vector = vector.copy()
                    vector[self.landmark_node_ids.index(node)] = 0.0
                if added:
                    old = self.landmark_vector(node)
                    if old is not None:
                        vector = np.minimum(vector, old)
                self._set_vector(node, vector)

    def refresh_nodes(self, graph: Graph, node_ids: Iterable[int]) -> int:
        """Batched incremental re-assignment of a dirty region.

        Live updates mark the nodes whose adjacency changed; this
        recomputes each one's landmark vector by neighbor relaxation over
        the *current* graph — ``d(u, L) = 1 + min over neighbors`` is exact
        when the neighbors' vectors are exact, an upper bound otherwise —
        in two passes so improvements propagate across the patch (new
        nodes chained to other new nodes resolve on the second pass).
        Unlike :meth:`update_edge`'s add-only path, no minimum with the
        old vector is taken: the batch may contain deletions, after which
        the old vector is not a valid bound. A node whose relaxation
        yields no information (every neighbor unknown) keeps its previous
        vector — stale information beats none, and periodic
        :meth:`rebuild` clears the drift. Returns how many nodes were
        refreshed.
        """
        nodes = sorted(n for n in set(node_ids) if n in graph)
        if not nodes:
            return 0
        landmark_rows = {
            node: row for row, node in enumerate(self.landmark_node_ids)
        }
        refreshed = 0
        for sweep in range(2):
            for node in nodes:
                vector = self._relaxed_vector(graph.neighbors(node))
                row = landmark_rows.get(node)
                if row is not None:
                    vector[row] = 0.0
                elif not np.isfinite(vector).any():
                    if self.landmark_vector(node) is not None:
                        continue  # keep the stale-but-informative vector
                self._set_vector(node, vector)
                if sweep == 0:
                    refreshed += 1
        return refreshed

    def reassign_processors(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """Rebalance landmark groups across an elastic processing tier.

        A joiner receives an equal share of landmarks (popped from the
        largest surviving groups); a leaver's landmarks spread over the
        survivors. The d(u, p) table is recomputed from the stored
        landmark distances — no BFS re-runs — and only nodes whose
        nearest *alive* group changed move, which is the bounded-movement
        property the elastic-topology layer reports. Returns that moved
        count (over the base table; overlay nodes are recomputed too).
        """
        if num_processors < len(self.groups):
            raise ValueError("processor ids are never reused; the count "
                             "cannot shrink (removed ones stay dead)")
        groups = [list(group) for group in self.groups]
        groups.extend([] for _ in range(num_processors - len(groups)))
        alive_ids = [p for p in range(num_processors) if alive[p]]
        if alive_ids:
            pool: List[int] = []
            for processor in range(num_processors):
                if not alive[processor] and groups[processor]:
                    pool.extend(groups[processor])
                    groups[processor] = []
            total = sum(len(group) for group in groups) + len(pool)
            ceil_share = -(-total // len(alive_ids))
            for processor in alive_ids:
                while len(groups[processor]) > ceil_share:
                    pool.append(groups[processor].pop())
            for landmark in sorted(pool):
                target = min(
                    alive_ids, key=lambda p: (len(groups[p]), p)
                )
                groups[target].append(landmark)
        old_table = self._table
        table = np.full(
            (old_table.shape[0], num_processors), np.inf, dtype=np.float32
        )
        for processor, group in enumerate(groups):
            if group:
                table[:, processor] = self._landmark_dist[group].min(axis=0)
        padded = np.full_like(table, np.inf)
        padded[:, : old_table.shape[1]] = old_table
        masked = table
        dead = [p for p in range(num_processors) if not alive[p]]
        if dead:
            padded[:, dead] = np.inf
            masked = table.copy()
            masked[:, dead] = np.inf
        moved = int(
            (np.argmin(padded, axis=1) != np.argmin(masked, axis=1)).sum()
        )
        self.groups = groups
        self._table = table
        for node, vector in self._extra_landmark.items():
            self._extra_table[node] = self._table_row_from_vector(vector)
        return moved

    def clone(self) -> "LandmarkIndex":
        """Independent copy (shared immutable node ids, copied tables).

        Live-update experiments run several services against identical
        starting preprocessing; cloning the index is a memcpy, while
        rebuilding it re-runs the landmark BFS sweep.
        """
        copy = LandmarkIndex(
            self.node_ids,
            list(self.landmark_node_ids),
            self._landmark_dist,
            [list(group) for group in self.groups],
            self._table,
        )
        # The constructor re-derives float32/inf forms; hand it the
        # already-converted arrays as fresh copies instead.
        copy._landmark_dist = self._landmark_dist.copy()
        copy._table = self._table.copy()
        copy._extra_landmark = {
            node: vec.copy() for node, vec in self._extra_landmark.items()
        }
        copy._extra_table = {
            node: vec.copy() for node, vec in self._extra_table.items()
        }
        return copy

    def rebuild(
        self,
        graph: Graph,
        num_landmarks: Optional[int] = None,
        min_separation: int = 3,
    ) -> "LandmarkIndex":
        """Periodic offline re-preprocessing (returns a fresh index)."""
        return LandmarkIndex.build(
            graph,
            num_processors=self.num_processors,
            num_landmarks=num_landmarks or self.num_landmarks,
            min_separation=min_separation,
        )
