"""Assigning landmarks to query processors via pivot landmarks (§3.4.1).

Every processor receives one "pivot" landmark, chosen so pivots are as far
from each other as possible (farthest-pair seed + farthest-point traversal);
each remaining landmark joins the processor of its closest pivot.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .distances import UNREACHABLE


def _masked(pair_matrix: np.ndarray) -> np.ndarray:
    """Pair distances with UNREACHABLE replaced by a large finite value.

    Disconnected landmark pairs are treated as maximally far apart, which
    naturally spreads pivots across components.
    """
    far = pair_matrix.max() + 1 if pair_matrix.size else 1
    out = pair_matrix.astype(np.float64).copy()
    out[pair_matrix == UNREACHABLE] = far + 1
    return out


def assign_landmarks_to_processors(
    pair_matrix: np.ndarray,
    num_processors: int,
) -> List[List[int]]:
    """Partition landmark indices ``0..L-1`` into per-processor groups.

    ``pair_matrix`` is the |L| x |L| landmark distance matrix. Returns a
    list of ``num_processors`` lists of landmark indices. When there are
    fewer landmarks than processors, trailing processors receive empty
    groups (they still serve stolen queries).
    """
    if num_processors < 1:
        raise ValueError("need at least one processor")
    num_landmarks = pair_matrix.shape[0]
    if num_landmarks == 0:
        raise ValueError("no landmarks to assign")
    if pair_matrix.shape[0] != pair_matrix.shape[1]:
        raise ValueError("pair matrix must be square")

    groups: List[List[int]] = [[] for _ in range(num_processors)]
    if num_landmarks == 1:
        groups[0].append(0)
        return groups

    dist = _masked(pair_matrix)
    num_pivots = min(num_processors, num_landmarks)

    # First two pivots: the farthest-apart landmark pair.
    flat = int(np.argmax(dist))
    first, second = divmod(flat, num_landmarks)
    pivots = [first]
    if num_pivots > 1:
        pivots.append(second)
    # Each further pivot maximizes its distance to all chosen pivots.
    while len(pivots) < num_pivots:
        to_pivots = dist[pivots, :].min(axis=0)
        to_pivots[pivots] = -1.0
        pivots.append(int(np.argmax(to_pivots)))

    for processor, pivot in enumerate(pivots):
        groups[processor].append(pivot)

    # Remaining landmarks attach to the processor of their closest pivot.
    pivot_rows = dist[pivots, :]
    for landmark in range(num_landmarks):
        if landmark in pivots:
            continue
        closest = int(np.argmin(pivot_rows[:, landmark]))
        groups[closest].append(landmark)
    return groups


def node_processor_distances(
    landmark_matrix: np.ndarray,
    groups: List[List[int]],
) -> np.ndarray:
    """The router's d(u, p) table: ``(n, P)`` float32 (§3.4.1).

    ``d(u, p)`` is the minimum distance from ``u`` to any landmark assigned
    to processor ``p``; processors with no landmarks, and nodes unreachable
    from all of a processor's landmarks, get ``+inf`` so they are never the
    preferred target (queries still reach them via stealing).
    """
    num_nodes = landmark_matrix.shape[1]
    table = np.full((num_nodes, len(groups)), np.inf, dtype=np.float32)
    for processor, group in enumerate(groups):
        if not group:
            continue
        rows = landmark_matrix[group, :].astype(np.float32)
        rows[rows == UNREACHABLE] = np.inf
        table[:, processor] = rows.min(axis=0)
    return table
