"""Synthetic analogues of the paper's four evaluation datasets (Table 1).

The real datasets (uk-2007-05 WebGraph, Friendster, Memetracker, Freebase)
total hundreds of millions of nodes and are not redistributable here, so
each gets a seeded generator reproducing the *structural properties* the
evaluation depends on, at a scale an in-process simulation can sweep:

=============  ==========================  =================================
dataset        generator                    property preserved
=============  ==========================  =================================
webgraph       copying model               power-law in-degree + strong
                                           2-hop overlap between related
                                           pages (hotspot caching works)
friendster     preferential attachment     heavy-tailed social graph with
                                           *large* 2-hop neighbourhoods and
                                           low hotspot overlap (caching is
                                           less effective — Fig 16b)
memetracker    R-MAT (Graph500 params)     skewed, sparse hyperlink graph
freebase       low-density R-MAT           near-forest knowledge graph
=============  ==========================  =================================

``scale=1.0`` yields graphs in the tens of thousands of nodes; the paper's
relative comparisons (which routing wins, where curves bend) are preserved
while absolute numbers shrink with the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..graph import Graph, community_graph, erdos_renyi, rmat


@dataclass(frozen=True)
class DatasetInfo:
    """Row of the reproduction's Table 1."""

    name: str
    num_nodes: int
    num_edges: int
    record_bytes: int  # size of the graph in adjacency-record form


def webgraph_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """UK-web-style graph: site-sized communities, strong 2-hop overlap.

    2-hop neighbourhoods are ~0.3% of the graph and queries from one
    hotspot share roughly half their neighbourhoods — the regime in which
    the paper's WebGraph results live.
    """
    _check_scale(scale)
    communities = max(10, int(200 * scale))
    return community_graph(
        communities, community_size=150, intra_degree=10, inter_degree=0.25,
        seed=seed,
    )


def friendster_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """Social-network-style graph: large neighbourhoods, weak overlap.

    A high-girth uniform random graph: 2-hop neighbourhoods are ~3% of the
    graph (an order of magnitude larger, relatively, than the webgraph
    analogue) but tree-like and weakly overlapping even within a hotspot —
    reproducing Fig 16(b), where caching helps Friendster least because
    "the overlap across 2-hop neighborhoods for queries from the same
    hotspot region is lower".
    """
    _check_scale(scale)
    num_nodes = max(600, int(28_000 * scale))
    return erdos_renyi(num_nodes, num_edges=4 * num_nodes, seed=seed)


def memetracker_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """News/blog hyperlink-style graph: story-sized communities with many
    cross links (stories reference each other across sites)."""
    _check_scale(scale)
    communities = max(12, int(300 * scale))
    return community_graph(
        communities, community_size=90, intra_degree=6, inter_degree=0.5,
        seed=seed,
    )


def freebase_like(scale: float = 1.0, seed: int = 0) -> Graph:
    """Knowledge-graph-style: average degree near 1 (near-forest)."""
    exponent = max(8, round(14 + _log2_scale(scale)))
    num_nodes = 1 << exponent
    return rmat(exponent, num_edges=int(0.95 * num_nodes), a=0.45, b=0.25,
                c=0.2, seed=seed)


def _check_scale(scale: float) -> None:
    if scale <= 0:
        raise ValueError("scale must be positive")


def _log2_scale(scale: float) -> float:
    _check_scale(scale)
    from math import log2

    return log2(scale)


#: Registry mapping dataset name to generator.
DATASETS: Dict[str, Callable[..., Graph]] = {
    "webgraph": webgraph_like,
    "friendster": friendster_like,
    "memetracker": memetracker_like,
    "freebase": freebase_like,
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Build a dataset analogue by name."""
    try:
        generator = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return generator(scale=scale, seed=seed)


def dataset_info(name: str, graph: Graph) -> DatasetInfo:
    """Table 1 row for a built graph (record bytes computed exactly)."""
    from ..storage.records import record_for_node

    record_bytes = sum(
        record_for_node(graph, node).size_bytes() for node in graph.nodes()
    )
    return DatasetInfo(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        record_bytes=record_bytes,
    )


def dataset_table(scale: float = 1.0, seed: int = 0) -> List[DatasetInfo]:
    """Build all four analogues and return their Table 1 rows."""
    return [
        dataset_info(name, load_dataset(name, scale=scale, seed=seed))
        for name in sorted(DATASETS)
    ]


__all__ = [
    "DATASETS",
    "DatasetInfo",
    "dataset_info",
    "dataset_table",
    "freebase_like",
    "friendster_like",
    "load_dataset",
    "memetracker_like",
    "webgraph_like",
]
