"""Calibrated cost models for the simulated cluster.

All times are in **seconds of simulated time**. The absolute values are
calibrated to the hardware the paper describes (§4.1): RAMCloud get/put in
the 5–10 µs range over 40 Gbps Infiniband with RDMA, and a 10 Gbps Ethernet
alternative roughly an order of magnitude slower on latency. The experiments
in the paper compare *relative* performance of routing strategies and
systems; these models reproduce the relative cost structure — per-request
overhead vs per-key service vs per-byte transfer vs local compute — rather
than any absolute number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point network between tiers.

    ``latency`` is one-way propagation + stack traversal; a request/response
    pair pays it twice. ``bandwidth`` throttles payload transfer.
    """

    name: str
    latency: float  # seconds, one-way
    bandwidth: float  # bytes per second

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def round_trip_time(self, request_bytes: int, response_bytes: int) -> float:
        """Request out + response back."""
        return self.transfer_time(request_bytes) + self.transfer_time(response_bytes)


#: 40 Gbps Infiniband with RDMA — microsecond-scale one-way latency.
INFINIBAND = NetworkModel(name="infiniband", latency=1.5e-6, bandwidth=5.0e9)

#: 10 Gbps Ethernet — tens of microseconds per hop through the kernel stack.
ETHERNET = NetworkModel(name="ethernet", latency=30.0e-6, bandwidth=1.25e9)


@dataclass(frozen=True)
class StorageServiceModel:
    """Server-side cost of serving key-value requests (RAMCloud-like).

    Calibrated so a batched get costs ~1 µs/key end to end (RAMCloud's
    5-10 µs single-get latency, amortised by multiget pipelining), keeping
    the cache-hit vs storage-miss cost ratio in the regime the paper's
    Figure 9 break-even analysis implies.
    """

    per_request: float = 3.0e-6  # dispatch + hash-table entry
    per_key: float = 0.8e-6  # per key looked up in a multiget
    per_byte: float = 0.1e-9  # log read-out / serialization
    # Writes are costlier than reads on a log-structured store: the log
    # append is cheap but the hash-table update plus replication headroom
    # put a RAMCloud-style durable write at roughly 2x a read.
    write_per_request: float = 4.0e-6  # dispatch + replication initiation
    write_per_key: float = 1.6e-6  # log append + hash-table update per record
    write_per_byte: float = 0.2e-9  # log copy-in / checksumming

    def service_time(self, num_keys: int, nbytes: int) -> float:
        """Time the server's pipeline is occupied by one (multi)get."""
        return self.per_request + self.per_key * num_keys + self.per_byte * nbytes

    def write_time(self, num_keys: int, nbytes: int) -> float:
        """Time the server's pipeline is occupied by one (multi)put.

        Writes share the FIFO pipeline with reads, so update churn
        contends with query traffic — the effect the live-update
        benchmark measures.
        """
        return (
            self.write_per_request
            + self.write_per_key * num_keys
            + self.write_per_byte * nbytes
        )

    def scaled(self, speed: float) -> "StorageServiceModel":
        """This model on hardware ``speed``× as fast (every cost ÷ speed)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if speed == 1.0:
            return self
        return StorageServiceModel(
            per_request=self.per_request / speed,
            per_key=self.per_key / speed,
            per_byte=self.per_byte / speed,
            write_per_request=self.write_per_request / speed,
            write_per_key=self.write_per_key / speed,
            write_per_byte=self.write_per_byte / speed,
        )


@dataclass(frozen=True)
class ComputeModel:
    """Query-processor CPU costs."""

    per_node: float = 0.5e-6  # scan one adjacency record during traversal
    per_walk_step: float = 0.3e-6  # one step of a random walk
    per_dispatch: float = 0.2e-6  # router bookkeeping per routed query

    def scaled(self, speed: float) -> "ComputeModel":
        """This model on a processor ``speed``× as fast (every cost ÷ speed)."""
        if speed <= 0:
            raise ValueError("speed must be positive")
        if speed == 1.0:
            return self
        return ComputeModel(
            per_node=self.per_node / speed,
            per_walk_step=self.per_walk_step / speed,
            per_dispatch=self.per_dispatch / speed,
        )


@dataclass(frozen=True)
class CacheCostModel:
    """Cache lookup and maintenance costs (the paper's Fig 9 relies on
    these being non-zero: a tiny cache must cost more than it saves)."""

    lookup: float = 0.05e-6  # per node probed
    insert: float = 0.15e-6  # per record admitted (includes LRU upkeep)


@dataclass(frozen=True)
class CostModel:
    """Bundle of every cost knob used by a cluster simulation."""

    network: NetworkModel = INFINIBAND
    storage: StorageServiceModel = StorageServiceModel()
    compute: ComputeModel = ComputeModel()
    cache: CacheCostModel = CacheCostModel()

    def with_network(self, network: NetworkModel) -> "CostModel":
        """Same cost model over a different interconnect."""
        return replace(self, network=network)


@dataclass(frozen=True)
class SpeedProfiles:
    """Heterogeneous hardware: relative speed multipliers per node.

    The paper's testbed is homogeneous, so every default is 1.0 and the
    empty profile reproduces it bit-for-bit. A real elastic cluster mixes
    generations of hardware: entry ``i`` scales processor/server ``i``'s
    cost model by ``1/speed`` (2.0 = twice as fast). Nodes beyond a
    tuple's length — including any processor added after construction —
    default to 1.0, so profiles never constrain how far a cluster grows.
    Adaptive routing and replica selection are *not* told these numbers;
    they must learn around slow nodes from observed latencies and queue
    depths, which the chaos benchmark exercises.
    """

    processors: Tuple[float, ...] = ()
    storage: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for speed in self.processors + self.storage:
            if speed <= 0:
                raise ValueError("speed multipliers must be positive")

    def processor_speed(self, processor_id: int) -> float:
        if 0 <= processor_id < len(self.processors):
            return self.processors[processor_id]
        return 1.0

    def storage_speed(self, server_id: int) -> float:
        if 0 <= server_id < len(self.storage):
            return self.storage[server_id]
        return 1.0


#: Default deployment: Infiniband + RAMCloud-like storage (paper's gRouting).
DEFAULT_COSTS = CostModel()

#: The gRouting-E configuration (paper Fig 7): same system over Ethernet.
ETHERNET_COSTS = CostModel(network=ETHERNET)
