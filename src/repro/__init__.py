"""gRouting reproduction: smart query routing for distributed graph
querying with decoupled storage.

Public API tour
---------------
- :mod:`repro.graph` — graph model, generators, traversal.
- :mod:`repro.datasets` — the four synthetic dataset analogues.
- :mod:`repro.workloads` — hotspot query workload generator (§4.1).
- :mod:`repro.core` — the decoupled cluster: storage tier, processors with
  caches, router with next-ready / hash / landmark / embed routing.
- :mod:`repro.baselines` — SEDGE/Giraph-like and PowerGraph-like coupled
  systems for Figure 7 comparisons.
- :mod:`repro.bench` — the per-figure/table experiment harness.

Quickstart::

    from repro import ClusterConfig, GraphService
    from repro.datasets import memetracker_like
    from repro.workloads import hotspot_stream

    graph = memetracker_like(scale=0.3, seed=1)
    with GraphService.open(graph, ClusterConfig(routing="adaptive")) as service:
        with service.session() as session:
            session.stream(hotspot_stream(graph, num_hotspots=20))
            print(session.report().summary())
        # caches stay warm: the next session continues where this left off

(:func:`run_workload` / :class:`GRoutingCluster` remain as the one-shot,
cold-cache experiment harness the paper's figures are defined over.)
"""

from .core import (
    ChaosEvent,
    ClusterConfig,
    GRoutingCluster,
    GraphAssets,
    GraphService,
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    QueryIdAllocator,
    QueryOperator,
    QuerySession,
    RandomWalkQuery,
    ReachabilityQuery,
    TopologyConfig,
    UpdateReport,
    WorkloadReport,
    query_ids_from,
    reset_query_ids,
    run_workload,
)
from .costs import (
    DEFAULT_COSTS,
    ETHERNET,
    ETHERNET_COSTS,
    INFINIBAND,
    CostModel,
    NetworkModel,
    SpeedProfiles,
)
from .graph import GraphUpdate

__version__ = "1.7.0"

__all__ = [
    "ChaosEvent",
    "ClusterConfig",
    "CostModel",
    "DEFAULT_COSTS",
    "ETHERNET",
    "ETHERNET_COSTS",
    "GRoutingCluster",
    "GraphAssets",
    "GraphService",
    "GraphUpdate",
    "INFINIBAND",
    "KSourceReachabilityQuery",
    "NeighborAggregationQuery",
    "NeighborhoodSampleQuery",
    "NetworkModel",
    "PersonalizedPageRankQuery",
    "QueryIdAllocator",
    "QueryOperator",
    "QuerySession",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "SpeedProfiles",
    "TopologyConfig",
    "UpdateReport",
    "WorkloadReport",
    "query_ids_from",
    "reset_query_ids",
    "run_workload",
    "__version__",
]
