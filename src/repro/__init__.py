"""gRouting reproduction: smart query routing for distributed graph
querying with decoupled storage.

Public API tour
---------------
- :mod:`repro.graph` — graph model, generators, traversal.
- :mod:`repro.datasets` — the four synthetic dataset analogues.
- :mod:`repro.workloads` — hotspot query workload generator (§4.1).
- :mod:`repro.core` — the decoupled cluster: storage tier, processors with
  caches, router with next-ready / hash / landmark / embed routing.
- :mod:`repro.baselines` — SEDGE/Giraph-like and PowerGraph-like coupled
  systems for Figure 7 comparisons.
- :mod:`repro.bench` — the per-figure/table experiment harness.

Quickstart::

    from repro import ClusterConfig, run_workload
    from repro.datasets import memetracker_like
    from repro.workloads import hotspot_workload

    graph = memetracker_like(scale=0.3, seed=1)
    queries = hotspot_workload(graph, num_hotspots=20, queries_per_hotspot=10)
    report = run_workload(graph, queries, ClusterConfig(routing="embed"))
    print(report.summary())
"""

from .core import (
    ClusterConfig,
    GRoutingCluster,
    GraphAssets,
    NeighborAggregationQuery,
    RandomWalkQuery,
    ReachabilityQuery,
    WorkloadReport,
    run_workload,
)
from .costs import (
    DEFAULT_COSTS,
    ETHERNET,
    ETHERNET_COSTS,
    INFINIBAND,
    CostModel,
    NetworkModel,
)

__version__ = "1.1.0"

__all__ = [
    "ClusterConfig",
    "CostModel",
    "DEFAULT_COSTS",
    "ETHERNET",
    "ETHERNET_COSTS",
    "GRoutingCluster",
    "GraphAssets",
    "INFINIBAND",
    "NeighborAggregationQuery",
    "NetworkModel",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "WorkloadReport",
    "run_workload",
    "__version__",
]
