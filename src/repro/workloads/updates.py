"""Update-stream workloads: query traffic interleaved with graph churn.

Production graphs change while they serve: new accounts appear and wire
into existing communities, links form and break — and the churn lands
where the traffic is (new content is created by, and immediately queried
from, the hot regions, which stay hot). :func:`churn_stream` models
exactly that: a fixed set of hotspot balls (the paper's §4.1 workload
shape) visited round-robin over several rounds, with bursts of
:class:`~repro.graph.updates.GraphUpdate` deltas injected at each visit —
mutations targeting the visited ball — and a share of each ball's queries
anchored at the nodes churn added there earlier. Because traffic keeps
returning to the same churning regions, the freshness of their routing
info compounds: this is the regime where periodic incremental refresh
visibly beats letting staleness accumulate (the live Fig 10 experiment).

The stream yields a mixture of :class:`~repro.core.queries.Query` and
:class:`GraphUpdate` items; :meth:`repro.core.service.QuerySession.stream`
consumes it directly, applying each update burst in stream order (so a
query behind an update sees the mutated graph) while earlier queries keep
executing concurrently with the update's storage writes.

Determinism matters here more than in the static families: the
live-update benchmark replays one stream against several routing
configurations, so generation reads only the *initial* topology snapshot
(the prebuilt CSR) plus the stream's own bookkeeping — never the evolving
graph — making the emitted sequence a pure function of ``(snapshot,
seed)``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core.queries import Query, current_query_id_allocator
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph
from ..graph.updates import GraphUpdate
from .hotspot import DEFAULT_MIX, _bidirected_csr, _make_query, _validate_mix

ChurnItem = Union[Query, GraphUpdate]


def churn_stream(
    graph: Graph,
    num_hotspots: int = 25,
    rounds: int = 4,
    queries_per_visit: int = 10,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    update_every: int = 5,
    updates_per_burst: int = 3,
    new_node_prob: float = 0.5,
    remove_prob: float = 0.2,
    attach_degree: int = 3,
    query_new_prob: float = 0.35,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[ChurnItem]:
    """Stream hotspot queries interleaved with hotspot-targeted churn.

    ``num_hotspots`` balls are fixed up front; traffic cycles through
    them for ``rounds`` rounds, ``queries_per_visit`` queries per visit
    (``num_hotspots * rounds * queries_per_visit`` queries total). Every
    ``update_every`` queries within a visit — starting with the first, so
    each visit arrives with fresh churn — a burst of
    ``updates_per_burst`` mutations is emitted ahead of the next query:

    * with probability ``new_node_prob`` — a brand-new node (fresh id
      above the snapshot's maximum) wired to ``attach_degree`` nodes of
      the visited ball, alternating edge direction;
    * with probability ``remove_prob`` — removal of one edge this stream
      previously added *between originally non-adjacent endpoints*
      (streams never remove seed-graph edges — a drawn pair that was
      already adjacent in the snapshot is upserted but never marked
      removable — so every emitted removal is valid regardless of the
      replaying cluster, and the seed topology never erodes);
    * otherwise — a new edge between two distinct nodes of the ball.

    Each query anchors, with probability ``query_new_prob``, at a node
    churn previously added *to the visited ball* (new content keeps
    drawing traffic on every later visit), else at a ball node. Arguments
    are validated eagerly; generation is lazy; ids come from the
    allocator captured at creation time.
    """
    if num_hotspots < 1 or rounds < 1 or queries_per_visit < 1:
        raise ValueError("hotspot, round and visit counts must be positive")
    if radius < 0 or hops < 1:
        raise ValueError("radius must be >= 0 and hops >= 1")
    if update_every < 1:
        raise ValueError("update_every must be >= 1")
    if updates_per_burst < 1:
        raise ValueError("updates_per_burst must be >= 1")
    if attach_degree < 1:
        raise ValueError("attach_degree must be >= 1")
    if not 0.0 <= new_node_prob <= 1.0 or not 0.0 <= remove_prob <= 1.0:
        raise ValueError("probabilities must lie in [0, 1]")
    if new_node_prob + remove_prob > 1.0:
        raise ValueError("new_node_prob + remove_prob must not exceed 1")
    if not 0.0 <= query_new_prob <= 1.0:
        raise ValueError("query_new_prob must lie in [0, 1]")
    _validate_mix(mix)
    csr = _bidirected_csr(graph, csr)
    degrees = csr.degrees()
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ValueError("graph has no connected nodes to query")

    ids = current_query_id_allocator()

    def generate() -> Iterator[ChurnItem]:
        rng = np.random.default_rng(seed)
        # The hot set, fixed for the stream's lifetime (hot regions stay
        # hot), from the initial snapshot.
        balls: List[np.ndarray] = []
        for _ in range(num_hotspots):
            center = int(eligible[rng.integers(0, eligible.size)])
            dist = csr.bfs_distances([center], max_hops=radius)
            balls.append(csr.node_ids[np.flatnonzero(dist >= 0)])
        next_node = int(csr.node_ids.max()) + 1
        grown: List[List[int]] = [[] for _ in range(num_hotspots)]
        owned: Set[Tuple[int, int]] = set()  # stream-added edges still live
        removable: List[Tuple[int, int]] = []

        def claim(u: int, v: int) -> None:
            if (u, v) not in owned:
                owned.add((u, v))
                removable.append((u, v))

        def burst(ball: np.ndarray, ball_grown: List[int]) -> Iterator[GraphUpdate]:
            nonlocal next_node
            for _ in range(updates_per_burst):
                draw = rng.random()
                if draw < new_node_prob:
                    node = next_node
                    next_node += 1
                    yield GraphUpdate.add_node(node)
                    attach = min(attach_degree, int(ball.size))
                    targets = rng.choice(ball, size=attach, replace=False)
                    for j, target in enumerate(targets):
                        edge = (
                            (int(target), node) if j % 2
                            else (node, int(target))
                        )
                        yield GraphUpdate.add_edge(*edge)
                        claim(*edge)
                    ball_grown.append(node)
                elif draw < new_node_prob + remove_prob and removable:
                    pick = int(rng.integers(0, len(removable)))
                    u, v = removable.pop(pick)
                    owned.discard((u, v))
                    yield GraphUpdate.remove_edge(u, v)
                else:
                    u = int(ball[rng.integers(0, ball.size)])
                    v = int(ball[rng.integers(0, ball.size)])
                    if u == v:
                        continue  # skip degenerate self-loop draws
                    yield GraphUpdate.add_edge(u, v)
                    # Only claim (-> make removable) edges between
                    # originally non-adjacent endpoints: a pair already
                    # adjacent in the snapshot may carry a seed edge in
                    # this direction, and removing it would erode the
                    # seed topology the stream promises to preserve.
                    row = csr.neighbors_of(csr.index_of(u))
                    if not (row == csr.index_of(v)).any():
                        claim(u, v)

        for _round in range(rounds):
            for hotspot, ball in enumerate(balls):
                ball_grown = grown[hotspot]
                for i in range(queries_per_visit):
                    if i % update_every == 0:
                        yield from burst(ball, ball_grown)
                    if ball_grown and rng.random() < query_new_prob:
                        node = ball_grown[
                            int(rng.integers(0, len(ball_grown)))
                        ]
                    else:
                        node = int(ball[rng.integers(0, ball.size)])
                    yield _make_query(mix[i % len(mix)], node, hops, ball,
                                      rng, ids.allocate())

    return generate()


def churn_workload(graph: Graph, **kwargs) -> List[ChurnItem]:
    """Materialised :func:`churn_stream` (queries and updates, in order)."""
    return list(churn_stream(graph, **kwargs))
