"""Query workload generators (hotspot, uniform, zipfian)."""

from .hotspot import (
    DEFAULT_MIX,
    hotspot_workload,
    uniform_workload,
    zipfian_workload,
)

__all__ = [
    "DEFAULT_MIX",
    "hotspot_workload",
    "uniform_workload",
    "zipfian_workload",
]
