"""Query workload generators (hotspot, uniform, zipfian + per-family).

Each workload is available as a lazy ``*_stream`` generator (the session
API's unit) and a materialised ``*_workload`` list (the one-shot
harness's unit); :func:`interleave` composes streams. The generic streams
accept any registered query operator in their ``mix`` (see
:mod:`repro.core.operators`); :mod:`~repro.workloads.families` adds
dedicated streams shaping traffic for the extended families (``ppr``,
``k_reach``, ``sample``); :mod:`~repro.workloads.updates` adds
:func:`churn_stream`, which interleaves live
:class:`~repro.graph.updates.GraphUpdate` mutations with hotspot queries;
:mod:`~repro.workloads.open_loop` timestamps any query stream as an
open-loop arrival process (Poisson / diurnal / flash-crowd) and
multiplexes per-tenant streams for
:meth:`~repro.core.service.QuerySession.serve`.
"""

from .families import (
    k_reach_stream,
    k_reach_workload,
    ppr_stream,
    ppr_workload,
    sample_stream,
    sample_workload,
)
from .hotspot import (
    DEFAULT_MIX,
    FULL_MIX,
    hotspot_stream,
    hotspot_workload,
    interleave,
    shifting_hotspot_stream,
    shifting_hotspot_workload,
    uniform_stream,
    uniform_workload,
    zipfian_stream,
    zipfian_workload,
)
from .open_loop import (
    Arrival,
    diurnal_arrivals,
    flash_crowd_arrivals,
    merge_arrivals,
    poisson_arrivals,
)
from .updates import churn_stream, churn_workload

__all__ = [
    "Arrival",
    "DEFAULT_MIX",
    "FULL_MIX",
    "churn_stream",
    "churn_workload",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "hotspot_stream",
    "hotspot_workload",
    "interleave",
    "k_reach_stream",
    "k_reach_workload",
    "merge_arrivals",
    "poisson_arrivals",
    "ppr_stream",
    "ppr_workload",
    "sample_stream",
    "sample_workload",
    "shifting_hotspot_stream",
    "shifting_hotspot_workload",
    "uniform_stream",
    "uniform_workload",
    "zipfian_stream",
    "zipfian_workload",
]
