"""Query workload generators (hotspot, uniform, zipfian).

Each workload is available as a lazy ``*_stream`` generator (the session
API's unit) and a materialised ``*_workload`` list (the one-shot
harness's unit); :func:`interleave` composes streams.
"""

from .hotspot import (
    DEFAULT_MIX,
    hotspot_stream,
    hotspot_workload,
    interleave,
    uniform_stream,
    uniform_workload,
    zipfian_stream,
    zipfian_workload,
)

__all__ = [
    "DEFAULT_MIX",
    "hotspot_stream",
    "hotspot_workload",
    "interleave",
    "uniform_stream",
    "uniform_workload",
    "zipfian_stream",
    "zipfian_workload",
]
