"""Hotspot query workloads (§4.1, Online Query Workloads).

The paper's workload: pick ``num_hotspots`` center nodes uniformly at
random; around each center pick ``queries_per_hotspot`` query nodes within
``radius`` hops (so any two nodes of one hotspot are within ``2 * radius``
hops of each other); group all of one hotspot's queries consecutively. The
queries themselves are a uniform mixture of the three h-hop types.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.queries import (
    NeighborAggregationQuery,
    Query,
    RandomWalkQuery,
    ReachabilityQuery,
)
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph

DEFAULT_MIX = ("aggregation", "walk", "reachability")


def _make_query(kind: str, node: int, hops: int, ball: np.ndarray,
                rng: np.random.Generator) -> Query:
    if kind == "aggregation":
        return NeighborAggregationQuery(node=node, hops=hops)
    if kind == "walk":
        return RandomWalkQuery(node=node, steps=hops,
                               seed=int(rng.integers(0, 2**31)))
    if kind == "reachability":
        # Target drawn from the same hotspot ball: realistic "is my nearby
        # contact reachable" probes that keep the traversal local.
        target = int(ball[rng.integers(0, len(ball))])
        return ReachabilityQuery(node=node, target=target, hops=hops)
    raise ValueError(f"unknown query kind: {kind!r}")


def hotspot_workload(
    graph: Graph,
    num_hotspots: int = 100,
    queries_per_hotspot: int = 10,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Generate the paper's hotspot workload over ``graph``.

    Returns ``num_hotspots * queries_per_hotspot`` queries, hotspot-grouped
    in order. Pass a prebuilt bi-directed ``csr`` to skip rebuilding it.
    """
    if num_hotspots < 1 or queries_per_hotspot < 1:
        raise ValueError("hotspot counts must be positive")
    if radius < 0 or hops < 1:
        raise ValueError("radius must be >= 0 and hops >= 1")
    if not mix:
        raise ValueError("query mix cannot be empty")
    if csr is None:
        csr = CSRGraph.from_graph(graph, direction="both")
    rng = np.random.default_rng(seed)

    degrees = csr.degrees()
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ValueError("graph has no connected nodes to query")

    queries: List[Query] = []
    for _ in range(num_hotspots):
        center = int(eligible[rng.integers(0, eligible.size)])
        dist = csr.bfs_distances([center], max_hops=radius)
        ball_idx = np.flatnonzero(dist >= 0)  # includes the center
        ball_ids = csr.node_ids[ball_idx]
        for i in range(queries_per_hotspot):
            query_node = int(ball_ids[rng.integers(0, ball_ids.size)])
            kind = mix[i % len(mix)]
            queries.append(_make_query(kind, query_node, hops, ball_ids, rng))
    return queries


def uniform_workload(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Queries on uniformly random nodes — no locality at all."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if csr is None:
        csr = CSRGraph.from_graph(graph, direction="both")
    rng = np.random.default_rng(seed)
    degrees = csr.degrees()
    eligible = csr.node_ids[degrees > 0]
    queries: List[Query] = []
    for i in range(num_queries):
        node = int(eligible[rng.integers(0, eligible.size)])
        queries.append(_make_query(mix[i % len(mix)], node, hops,
                                   eligible, rng))
    return queries


def zipfian_workload(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    skew: float = 1.2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Queries whose nodes follow a Zipf popularity distribution.

    Models repeat-heavy production traffic: a few nodes are queried over
    and over (where hash routing's repeat locality shines).
    """
    if skew <= 1.0:
        raise ValueError("skew must exceed 1.0 for a proper Zipf law")
    if csr is None:
        csr = CSRGraph.from_graph(graph, direction="both")
    rng = np.random.default_rng(seed)
    degrees = csr.degrees()
    eligible = csr.node_ids[degrees > 0]
    # Rank nodes in a fixed shuffled order; rank r is queried ∝ r^-skew.
    order = rng.permutation(eligible)
    queries: List[Query] = []
    for i in range(num_queries):
        rank = min(int(rng.zipf(skew)) - 1, order.size - 1)
        node = int(order[rank])
        queries.append(_make_query(mix[i % len(mix)], node, hops,
                                   eligible, rng))
    return queries
