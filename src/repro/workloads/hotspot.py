"""Hotspot query workloads (§4.1, Online Query Workloads).

The paper's workload: pick ``num_hotspots`` center nodes uniformly at
random; around each center pick ``queries_per_hotspot`` query nodes within
``radius`` hops (so any two nodes of one hotspot are within ``2 * radius``
hops of each other); group all of one hotspot's queries consecutively. The
queries themselves are a uniform mixture over ``mix``, whose entries name
registered query operators (default: the paper's three h-hop types;
any operator registered with a workload factory — including custom ones —
is a valid mix entry).

Every workload comes in two forms: a ``*_stream`` generator — the unit the
session API consumes, yielding queries lazily so a
:class:`~repro.core.service.QuerySession` can pipeline waves without ever
materialising the full workload — and the original list-returning
function, now a thin ``list(...)`` wrapper kept for the one-shot
experiment harness. :func:`interleave` composes finite streams into one
mixed arrival order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.operators import default_registry
from ..core.queries import Query, current_query_id_allocator
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph

#: The paper's uniform mixture of its three h-hop types.
DEFAULT_MIX = ("aggregation", "walk", "reachability")

#: Every built-in operator, original three first (see
#: :mod:`repro.core.operators` for the catalog).
FULL_MIX = ("aggregation", "walk", "reachability", "ppr", "k_reach", "sample")


def _make_query(kind: str, node: int, hops: int, ball: np.ndarray,
                rng: np.random.Generator, query_id: int) -> Query:
    # Ids are passed explicitly: lazy streams allocate from the allocator
    # captured at stream-creation time, so a stream built inside a
    # ``query_ids_from`` scope keeps its scoped ids even when consumed
    # after the scope exits (generators run late). Construction itself is
    # the operator's registered workload factory, so ``mix`` accepts any
    # registered operator name — including ones added at runtime.
    return default_registry.make(
        kind, node=node, query_id=query_id, hops=hops, ball=ball, rng=rng,
    )


def _validate_mix(mix: Sequence[str]) -> None:
    """Reject empty or unregistered mixes eagerly (before any generation)."""
    if not mix:
        raise ValueError("query mix cannot be empty")
    for kind in mix:
        # get() raises UnknownOperatorError (a ValueError) for unknown names.
        if default_registry.get(kind).workload_factory is None:
            raise ValueError(
                f"operator {kind!r} has no workload factory; register one "
                "to use it in a mix"
            )


def _bidirected_csr(graph: Graph, csr: Optional[CSRGraph]) -> CSRGraph:
    """Reuse the caller's prebuilt bi-directed CSR view or build one."""
    if csr is None:
        csr = CSRGraph.from_graph(graph, direction="both")
    return csr


def hotspot_stream(
    graph: Graph,
    num_hotspots: int = 100,
    queries_per_hotspot: int = 10,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream the paper's hotspot workload over ``graph``.

    Yields ``num_hotspots * queries_per_hotspot`` queries, hotspot-grouped
    in order, one hotspot ball materialised at a time. Pass a prebuilt
    bi-directed ``csr`` to skip rebuilding it. Arguments are validated
    eagerly; generation is lazy.
    """
    if num_hotspots < 1 or queries_per_hotspot < 1:
        raise ValueError("hotspot counts must be positive")
    if radius < 0 or hops < 1:
        raise ValueError("radius must be >= 0 and hops >= 1")
    _validate_mix(mix)
    csr = _bidirected_csr(graph, csr)
    degrees = csr.degrees()
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ValueError("graph has no connected nodes to query")

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        for _ in range(num_hotspots):
            center = int(eligible[rng.integers(0, eligible.size)])
            dist = csr.bfs_distances([center], max_hops=radius)
            ball_idx = np.flatnonzero(dist >= 0)  # includes the center
            ball_ids = csr.node_ids[ball_idx]
            for i in range(queries_per_hotspot):
                query_node = int(ball_ids[rng.integers(0, ball_ids.size)])
                kind = mix[i % len(mix)]
                yield _make_query(kind, query_node, hops, ball_ids, rng,
                                  ids.allocate())

    return generate()


def hotspot_workload(
    graph: Graph,
    num_hotspots: int = 100,
    queries_per_hotspot: int = 10,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Materialised :func:`hotspot_stream` (the one-shot harness's unit)."""
    return list(hotspot_stream(
        graph,
        num_hotspots=num_hotspots,
        queries_per_hotspot=queries_per_hotspot,
        radius=radius,
        hops=hops,
        mix=mix,
        seed=seed,
        csr=csr,
    ))


def uniform_stream(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream queries on uniformly random nodes — no locality at all."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    _validate_mix(mix)
    csr = _bidirected_csr(graph, csr)
    degrees = csr.degrees()
    eligible = csr.node_ids[degrees > 0]

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        for i in range(num_queries):
            node = int(eligible[rng.integers(0, eligible.size)])
            yield _make_query(mix[i % len(mix)], node, hops, eligible, rng,
                              ids.allocate())

    return generate()


def uniform_workload(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Materialised :func:`uniform_stream`."""
    return list(uniform_stream(
        graph, num_queries=num_queries, hops=hops, mix=mix, seed=seed, csr=csr,
    ))


def zipfian_stream(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    skew: float = 1.2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream queries whose nodes follow a Zipf popularity distribution.

    Models repeat-heavy production traffic: a few nodes are queried over
    and over (where hash routing's repeat locality shines).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if skew <= 1.0:
        raise ValueError("skew must exceed 1.0 for a proper Zipf law")
    _validate_mix(mix)
    csr = _bidirected_csr(graph, csr)
    degrees = csr.degrees()
    eligible = csr.node_ids[degrees > 0]

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        # Rank nodes in a fixed shuffled order; rank r is queried ∝ r^-skew.
        order = rng.permutation(eligible)
        for i in range(num_queries):
            rank = min(int(rng.zipf(skew)) - 1, order.size - 1)
            node = int(order[rank])
            yield _make_query(mix[i % len(mix)], node, hops, eligible, rng,
                              ids.allocate())

    return generate()


def zipfian_workload(
    graph: Graph,
    num_queries: int = 1000,
    hops: int = 2,
    skew: float = 1.2,
    mix: Sequence[str] = DEFAULT_MIX,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Materialised :func:`zipfian_stream`."""
    return list(zipfian_stream(
        graph, num_queries=num_queries, hops=hops, skew=skew, mix=mix,
        seed=seed, csr=csr,
    ))


def shifting_hotspot_stream(
    graph: Graph,
    num_phases: int = 8,
    queries_per_phase: int = 120,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    hot_fraction: float = 0.9,
    skew: float = 1.1,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream a *shifting*-hotspot workload: one hot ball that relocates.

    The dynamic-placement benchmark's traffic shape: in each of
    ``num_phases`` phases a fresh center is drawn and ``hot_fraction`` of
    that phase's queries anchor inside its ``radius``-hop ball (the rest
    are uniform background noise). Within the ball, anchors follow a
    power law with exponent ``skew`` over a fixed per-phase ranking, so a
    few records in the current ball carry most of the load — skewed
    enough that hash partitioning leaves some storage server holding a
    disproportionate share of the *hot* records, and shifting often
    enough that no static placement (or static routing table) stays
    right for long. ``skew=0`` anchors uniformly in the ball.

    Determinism contract (same as :func:`repro.workloads.churn_stream`):
    generation reads only the initial graph/CSR snapshot and the seeded
    RNG — never live cluster state — so every scheme/service replays an
    identical stream and comparisons measure the cluster, not workload
    drift.
    """
    if num_phases < 1 or queries_per_phase < 1:
        raise ValueError("phase counts must be positive")
    if radius < 0 or hops < 1:
        raise ValueError("radius must be >= 0 and hops >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    _validate_mix(mix)
    csr = _bidirected_csr(graph, csr)
    degrees = csr.degrees()
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise ValueError("graph has no connected nodes to query")
    eligible_ids = csr.node_ids[eligible]

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        count = 0
        for _phase in range(num_phases):
            center = int(eligible[rng.integers(0, eligible.size)])
            dist = csr.bfs_distances([center], max_hops=radius)
            ball_idx = np.flatnonzero(dist >= 0)  # includes the center
            ball_ids = csr.node_ids[rng.permutation(ball_idx)]
            weights = (1.0 + np.arange(ball_ids.size)) ** -skew
            cumulative = np.cumsum(weights / weights.sum())
            for _ in range(queries_per_phase):
                if rng.random() < hot_fraction:
                    rank = int(np.searchsorted(cumulative, rng.random()))
                    node = int(ball_ids[min(rank, ball_ids.size - 1)])
                    ball = ball_ids
                else:
                    node = int(
                        eligible_ids[rng.integers(0, eligible_ids.size)]
                    )
                    ball = eligible_ids
                kind = mix[count % len(mix)]
                count += 1
                yield _make_query(kind, node, hops, ball, rng,
                                  ids.allocate())

    return generate()


def shifting_hotspot_workload(
    graph: Graph,
    num_phases: int = 8,
    queries_per_phase: int = 120,
    radius: int = 2,
    hops: int = 2,
    mix: Sequence[str] = DEFAULT_MIX,
    hot_fraction: float = 0.9,
    skew: float = 1.1,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> List[Query]:
    """Materialised :func:`shifting_hotspot_stream`."""
    return list(shifting_hotspot_stream(
        graph,
        num_phases=num_phases,
        queries_per_phase=queries_per_phase,
        radius=radius,
        hops=hops,
        mix=mix,
        hot_fraction=hot_fraction,
        skew=skew,
        seed=seed,
        csr=csr,
    ))


def interleave(
    streams: Sequence[Iterable[Query]], seed: int = 0
) -> Iterator[Query]:
    """Randomly interleave finite query streams into one arrival order.

    Each next query is drawn from a uniformly random still-live stream, so
    the mixture stays mixed to the end (round-robin would let the longest
    stream run pure once the others drain... it still does at the tail,
    but without the deterministic phase structure). Deterministic for a
    fixed ``seed``. All input streams are exhausted.
    """
    if not streams:
        raise ValueError("need at least one stream to interleave")

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        live = [iter(stream) for stream in streams]
        while live:
            index = int(rng.integers(len(live)))
            try:
                yield next(live[index])
            except StopIteration:
                live.pop(index)

    return generate()
