"""Dedicated workload streams for the extended operator families.

The generic :mod:`~repro.workloads.hotspot` streams accept any registered
operator in their ``mix``; these generators shape traffic the way each
new family is actually used in production:

* :func:`ppr_stream` — zipf-skewed seeds (PPR is recomputed for the same
  hot users over and over: recommendation refresh traffic);
* :func:`k_reach_stream` — per-query source batches drawn from one
  radius-ball (the "can my nearby contacts reach this account" shape
  where batching overlapping neighborhoods pays);
* :func:`sample_stream` — uniformly random seeds (GNN minibatch sampling
  visits training nodes in shuffled order, no locality).

Each follows the repo-wide stream contract: eager argument validation,
lazy generation, ids drawn from the allocator captured at creation time
(see :func:`repro.core.queries.current_query_id_allocator`), and a
materialised ``*_workload`` twin for the one-shot harness.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..core.queries import (
    KSourceReachabilityQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    Query,
    current_query_id_allocator,
)
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph
from .hotspot import _bidirected_csr


def _eligible_nodes(graph: Graph, csr: Optional[CSRGraph]) -> tuple:
    csr = _bidirected_csr(graph, csr)
    eligible = csr.node_ids[csr.degrees() > 0]
    if eligible.size == 0:
        raise ValueError("graph has no connected nodes to query")
    return csr, eligible


def ppr_stream(
    graph: Graph,
    num_queries: int = 1000,
    walks: int = 4,
    steps: int = 4,
    restart_prob: float = 0.15,
    skew: float = 1.5,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream personalized-PageRank queries with zipf-skewed seed nodes."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if walks < 1 or steps < 1:
        raise ValueError("walks and steps must be >= 1")
    if skew <= 1.0:
        raise ValueError("skew must exceed 1.0 for a proper Zipf law")
    _, eligible = _eligible_nodes(graph, csr)

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        order = rng.permutation(eligible)
        for _ in range(num_queries):
            rank = min(int(rng.zipf(skew)) - 1, order.size - 1)
            yield PersonalizedPageRankQuery(
                node=int(order[rank]), query_id=ids.allocate(),
                walks=walks, steps=steps, restart_prob=restart_prob,
                seed=int(rng.integers(0, 2**31)),
            )

    return generate()


def ppr_workload(graph: Graph, **kwargs) -> List[Query]:
    """Materialised :func:`ppr_stream`."""
    return list(ppr_stream(graph, **kwargs))


def k_reach_stream(
    graph: Graph,
    num_queries: int = 500,
    num_sources: int = 4,
    hops: int = 3,
    radius: int = 2,
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream batched k-source reachability queries with local batches.

    Each query picks a random center, materialises its ``radius``-hop
    ball, and draws ``num_sources`` sources plus the target from it — the
    overlapping-neighborhood regime where one batched traversal beats
    ``k`` independent probes.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if not 1 <= num_sources <= 64:
        raise ValueError("num_sources must be in [1, 64]")
    if radius < 0 or hops < 1:
        raise ValueError("radius must be >= 0 and hops >= 1")
    csr, _ = _eligible_nodes(graph, csr)
    degrees = csr.degrees()
    eligible_idx = np.flatnonzero(degrees > 0)

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        for _ in range(num_queries):
            center = int(eligible_idx[rng.integers(0, eligible_idx.size)])
            dist = csr.bfs_distances([center], max_hops=radius)
            ball = csr.node_ids[np.flatnonzero(dist >= 0)]
            anchors = [
                int(ball[rng.integers(0, ball.size)])
                for _ in range(num_sources)
            ]
            target = int(ball[rng.integers(0, ball.size)])
            yield KSourceReachabilityQuery(
                node=anchors[0], query_id=ids.allocate(),
                sources=tuple(anchors[1:]), target=target, hops=hops,
            )

    return generate()


def k_reach_workload(graph: Graph, **kwargs) -> List[Query]:
    """Materialised :func:`k_reach_stream`."""
    return list(k_reach_stream(graph, **kwargs))


def sample_stream(
    graph: Graph,
    num_queries: int = 1000,
    fanouts: Sequence[int] = (8, 4),
    seed: int = 0,
    csr: Optional[CSRGraph] = None,
) -> Iterator[Query]:
    """Stream neighborhood-sampling queries on uniformly random seeds."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    fanouts = tuple(fanouts)
    if not fanouts or any(f < 1 for f in fanouts):
        raise ValueError("fanouts must be a non-empty tuple of >= 1")
    _, eligible = _eligible_nodes(graph, csr)

    ids = current_query_id_allocator()

    def generate() -> Iterator[Query]:
        rng = np.random.default_rng(seed)
        for _ in range(num_queries):
            node = int(eligible[rng.integers(0, eligible.size)])
            yield NeighborhoodSampleQuery(
                node=node, query_id=ids.allocate(), fanouts=fanouts,
                seed=int(rng.integers(0, 2**31)),
            )

    return generate()


def sample_workload(graph: Graph, **kwargs) -> List[Query]:
    """Materialised :func:`sample_stream`."""
    return list(sample_stream(graph, **kwargs))
