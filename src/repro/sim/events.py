"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the environment resumes a process when the event it waits on is triggered.

Events move through three states:

``PENDING``
    created but not yet triggered.
``TRIGGERED``
    a value (or exception) has been set and the event is scheduled on the
    environment's queue.
``PROCESSED``
    the event's callbacks have run; waiting processes have been resumed.

Hot-path design
---------------

The kernel is the innermost loop of every benchmark, so the event classes
are tuned for allocation rate and dispatch cost rather than generality:

* every class declares ``__slots__`` — no per-event ``__dict__``, smaller
  objects, faster attribute access;
* :class:`AllOf` is counter-based and registers **one** bound method as the
  callback for all of its children instead of a per-child closure;
* bare timeouts (``env.timeout(delay)`` with no value) are recycled through
  a per-environment free list — see :meth:`Environment.timeout`.

The pooling fast path imposes one (checked-by-convention) contract: a bare
``Timeout`` must be consumed by a single waiter and must not be inspected
after the waiting process has advanced past a later yield. Every use in
this repository is of the form ``yield env.timeout(delay)``, which is safe
by construction. Create the timeout with an explicit ``value`` (or use
``Event`` + ``succeed``) if you need to share or retain it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .environment import Environment

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"
#: Internal marker for a Timeout parked on the environment's free list.
POOLED = "pooled"


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait on events by yielding them. An event carries either a
    value (success) or an exception (failure), which is delivered to every
    waiting process.
    """

    __slots__ = ("env", "callbacks", "_waiter", "_value", "_exception",
                 "_state")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        # Fast path for the overwhelmingly common case of exactly one
        # waiting process: the first process to wait on a callback-free
        # event is stored here instead of allocating into ``callbacks``,
        # and the run loop resumes it without a callback indirection.
        # Invariant: ``_waiter`` is only ever the *first* registration;
        # later registrations append to ``callbacks`` and are dispatched
        # after the waiter, preserving registration order.
        self._waiter: Optional["Process"] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._state != PENDING and self._exception is None

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before trigger")
        if self._state == POOLED:
            raise SimulationError(
                "value read on a recycled bare Timeout; bare timeouts are "
                "single-waiter and must not be retained past the next "
                "yield (see module docstring; pass value= to opt out of "
                "pooling)"
            )
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on this
        event, which makes failure injection (dead servers, dropped
        messages) straightforward.
        """
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    # -- kernel hooks ------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter._resume(self)
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation.

    Bare timeouts (``value is None``) are eligible for the environment's
    free-list; :meth:`Environment.timeout` reuses a recycled instance
    instead of allocating where possible.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._state = TRIGGERED
        self._waiter = process
        env._schedule(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait for each other
    simply by yielding them.
    """

    __slots__ = ("_generator", "_send", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator) -> None:
        try:
            self._send = generator.send
        except AttributeError:
            raise SimulationError("process() requires a generator") from None
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method for the process's lifetime: appending
        # ``self._resume`` directly would allocate a fresh bound method
        # per yield.
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    @property
    def failure(self) -> Optional[BaseException]:
        """The exception that killed this process, if it crashed.

        A process that fails with no waiter stores its exception rather
        than raising (nothing is positioned to catch it mid-run); callers
        that own long-lived workers inspect this after a stalled run to
        re-raise the root cause instead of a generic deadlock error.
        """
        if self._state == PENDING:
            return None
        return self._exception

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome.

        This is the kernel's hottest callback; everything it needs is
        hoisted into locals, and each consumed bare timeout is returned to
        the environment's free list (the process was its only waiter — see
        the module docstring for the pooling contract).

        The run loop in :meth:`Environment.run` inlines the first
        iteration of this trampoline for single-waiter events; keep the
        two in lockstep.
        """
        env = self.env
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._exception is None:
                    target = send(event._value)
                else:
                    target = self._generator.throw(event._exception)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return

            # The generator has moved past `event`: a bare pooled timeout
            # can be recycled now (nothing else may wait on or inspect it;
            # a run(until=event) target is exempt — the run loop still
            # needs to observe its PROCESSED state — and so is a timeout
            # with callbacks still pending, e.g. a second registrant not
            # yet dispatched by Event._run_callbacks).
            if type(event) is Timeout and event._value is None \
                    and event._state == PROCESSED \
                    and not event.callbacks \
                    and event not in env._run_targets:
                event._state = POOLED
                if not env._sanitize:
                    if env._spare is None:
                        env._spare = event
                    else:
                        env._timeout_pool.append(event)
                # Sanitize mode retires the timeout without reissuing it,
                # so any later touch of a retained reference trips the
                # POOLED guards deterministically (reuse-after-free trap).

            try:
                state = target._state
            except AttributeError:
                self._yield_error(target)

            self._target = target
            if state == PROCESSED:
                # Already resolved: loop immediately with its outcome.
                event = target
                continue
            if state == POOLED:
                raise SimulationError(
                    "yielded a recycled bare Timeout; bare timeouts are "
                    "single-waiter (see repro.sim.events docstring)"
                )
            if target._waiter is None and not target.callbacks:
                target._waiter = self
            else:
                target.callbacks.append(self._resume_cb)
            break
        env._active_process = None

    # -- helpers for the inlined resume in Environment.run -----------------
    def _finish(self, exc: BaseException) -> None:
        """Terminal outcome of the generator: return value or failure."""
        self.env._active_process = None
        if isinstance(exc, StopIteration):
            self.succeed(exc.value)
        elif isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise exc
        else:
            self.fail(exc)

    def _yield_error(self, target: Any) -> None:
        """The generator yielded something that is not an event."""
        env = self.env
        env._active_process = None
        error = SimulationError(
            f"process yielded a non-event: {target!r} "
            f"(at t={env.now}, in "
            f"{getattr(self._generator, '__name__', '<generator>')})"
        )
        self._generator.throw(error)
        raise error  # pragma: no cover - generator swallowed the throw


class Condition(Event):
    """Base for composite events over a fixed set of child events.

    The subclass hook ``_on_child`` is registered *once* as a bound method
    and appended to every child's callback list — a counter in
    ``_remaining`` replaces any per-child closure state.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for child in self.events:
            if child.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        on_child = self._on_child
        for child in self.events:
            if child._state == PROCESSED:
                on_child(child)
            elif child._state == POOLED:
                raise SimulationError(
                    "condition over a recycled bare Timeout; bare timeouts "
                    "are single-waiter (see repro.sim.events docstring)"
                )
            else:
                child.callbacks.append(on_child)

    def _on_child(self, child: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once every child event has triggered.

    The value is the list of child values in construction order. If any
    child fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self._state != PENDING:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        remaining = self._remaining - 1
        self._remaining = remaining
        if remaining == 0:
            self.succeed([event._value for event in self.events])


class AnyOf(Condition):
    """Triggers as soon as one child event triggers."""

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self._state != PENDING:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self.succeed(child._value)
