"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the environment resumes a process when the event it waits on is triggered.

Events move through three states:

``PENDING``
    created but not yet triggered.
``TRIGGERED``
    a value (or exception) has been set and the event is scheduled on the
    environment's queue.
``PROCESSED``
    the event's callbacks have run; waiting processes have been resumed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .environment import Environment

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait on events by yielding them. An event carries either a
    value (success) or an exception (failure), which is delivered to every
    waiting process.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on this
        event, which makes failure injection (dead servers, dropped
        messages) straightforward.
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    # -- kernel hooks ------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._value = None
        self._state = TRIGGERED
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can wait for each other
    simply by yielding them.
    """

    def __init__(self, env: "Environment", generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        self.env._active_process = self
        while True:
            try:
                if event._exception is not None:
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                self._generator.throw(error)
                raise error

            self._target = target
            if target.processed:
                # Already resolved: loop immediately with its outcome.
                event = target
                continue
            target.callbacks.append(self._resume)
            break
        self.env._active_process = None


class Condition(Event):
    """Base for composite events over a fixed set of child events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for child in self.events:
            if child.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for child in self.events:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers once every child event has triggered.

    The value is the list of child values in construction order. If any
    child fails, the condition fails with that child's exception.
    """

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event._value for event in self.events])


class AnyOf(Condition):
    """Triggers as soon as one child event triggers."""

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self.succeed(child._value)
