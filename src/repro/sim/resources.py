"""Shared resources for simulation processes.

Two primitives cover everything the reproduction needs:

:class:`Resource`
    a FIFO server with fixed capacity — models a storage server's request
    pipeline or a CPU. Processes ``yield resource.request()``, hold the slot
    for however long they need, then call ``release()``.

:class:`Store`
    an unbounded FIFO queue of items — models message channels such as the
    router's per-processor connections and acknowledgement paths.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .environment import Environment
from .events import Event, SimulationError


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A capacity-limited, strictly FIFO resource."""

    __slots__ = ("env", "capacity", "_users", "_waiting", "_busy_since",
                 "busy_time", "total_requests")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.env = env
        self.capacity = capacity
        self._users = 0
        self._waiting: Deque[Request] = deque()
        # Aggregate busy-time accounting for utilisation metrics.
        self._busy_since: float | None = None
        self.busy_time = 0.0
        self.total_requests = 0

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._users

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit; the returned event triggers when granted."""
        req = Request(self)
        self.total_requests += 1
        if self._users < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return one unit previously granted to ``request``."""
        if request.resource is not self:
            raise SimulationError("release() of a foreign request")
        self._users -= 1
        if self._users == 0 and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        if self._waiting:
            self._grant(self._waiting.popleft())

    def _grant(self, request: Request) -> None:
        self._users += 1
        if self._busy_since is None:
            self._busy_since = self.env.now
        request.succeed(self)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time this resource was busy."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.env.now - self._busy_since
        if elapsed <= 0:
            return 0.0
        return min(1.0, busy / elapsed)


class Store:
    """An unbounded FIFO channel of items between processes."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that triggers with the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
