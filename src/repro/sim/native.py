"""Build and load the native (C) calendar-kernel run loop.

``Environment(kernel="native")`` (or ``REPRO_KERNEL=native``) compiles
``_native.c`` — a transliteration of the calendar kernel's two dispatch
loops — with the system C compiler and drives the simulation through it.
There are no third-party dependencies: the build needs only a C
toolchain (``gcc`` or ``cc``) and the CPython headers; when either is
missing, :func:`load` returns ``None`` and the environment falls back to
the pure-python calendar kernel, recording the reason in
``Environment.kernel_fallback_reason``.

Build protocol
--------------

The shared object is cached next to the source (or under
``REPRO_NATIVE_CACHE``) keyed by a hash of the C source and the
interpreter's ABI suffix, so the compiler runs once per source revision
per interpreter; concurrent builders race benignly through a tmp-file +
atomic rename. After import, ``_bind()`` hands the C module the kernel
classes and interned state strings and resolves ``__slots__`` member
offsets, which is what lets the C loops read event fields at
C-struct speed.

Semantics are identical to the python calendar kernel — same cohort
structures, same pooling, same error messages; the equivalence suite
replays random programs on heap, calendar and native kernels and diffs
the traces. Sanitize-mode runs always use the python loop (it carries
the tie tallies and misuse traps).
"""

from __future__ import annotations

import importlib.util
import os
import shutil
import subprocess
import sysconfig
from hashlib import sha256
from pathlib import Path
from typing import Any, Optional

from .events import Event, SimulationError

_SOURCE = Path(__file__).with_name("_native.c")
_INF = float("inf")

_state: Any = None
_reason: Optional[str] = None
_tried = False


def load() -> Optional[Any]:
    """The bound C module, building it on first use; None if unavailable."""
    global _state, _reason, _tried
    if _tried:
        return _state
    _tried = True
    try:
        _state = _build_and_bind()
    except Exception as exc:  # noqa: BLE001 - any build failure means fallback
        _reason = f"native kernel unavailable: {exc}"
        _state = None
    return _state


def unavailable_reason() -> str:
    """Why :func:`load` returned None (for kernel_fallback_reason)."""
    return _reason or "native kernel not built"


def _build_and_bind() -> Any:
    source = _SOURCE.read_bytes()
    digest = sha256(source).hexdigest()[:16]
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    cache_dir = Path(
        os.environ.get("REPRO_NATIVE_CACHE")
        or _SOURCE.parent / "_native_build"
    )
    so_path = cache_dir / f"_repro_native_{digest}{suffix}"
    if not so_path.exists():
        cc = os.environ.get("CC") or shutil.which("gcc") or shutil.which("cc")
        if cc is None:
            raise RuntimeError("no C compiler (gcc/cc) on PATH")
        include = sysconfig.get_paths()["include"]
        if not os.path.exists(os.path.join(include, "Python.h")):
            raise RuntimeError(f"CPython headers not found under {include}")
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cache_dir / f".{so_path.name}.{os.getpid()}.tmp"
        cmd = [cc, "-O2", "-DNDEBUG", "-fPIC", "-shared",
               f"-I{include}", str(_SOURCE), "-o", str(tmp)]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{os.path.basename(cc)} failed: "
                    f"{proc.stderr.strip()[:400]}"
                )
            os.replace(tmp, so_path)
        finally:
            if tmp.exists():
                tmp.unlink()
    spec = importlib.util.spec_from_file_location("_repro_native", so_path)
    if spec is None or spec.loader is None:
        raise RuntimeError(f"cannot load extension from {so_path}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    # Deferred import: this module is itself imported from
    # Environment.__init__, so .environment is fully loaded by now.
    from .environment import _TOTAL_EVENTS, Environment
    from .events import POOLED, PROCESSED, Process, Timeout
    mod._bind(Environment, Event, Process, Timeout, PROCESSED, POOLED,
              SimulationError, _TOTAL_EVENTS)
    return mod


def run(env, until):
    """Drive ``env`` with the C loops (python fallback when sanitizing)."""
    if env._sanitize:
        # The python loop carries the tie tallies and misuse traps.
        return env._run_calendar(until)
    mod = env._native_state
    if until is None:
        mod.run_limit(env, _INF)
        return None
    if isinstance(until, Event):
        mod.run_target(env, until)
        return until.value
    limit = float(until)
    if limit < env._now:
        raise SimulationError("run(until=...) is in the past")
    mod.run_limit(env, limit)
    env._now = limit
    return None
