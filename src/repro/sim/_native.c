/* Native calendar-kernel run loop for repro.sim.
 *
 * Compiled on demand by repro/sim/native.py with the system C compiler
 * (no third-party dependencies); see that module for the build/caching
 * protocol. The loops here are line-for-line transliterations of
 * Environment._run_calendar's two dispatch loops (event-target and
 * time-limit) with the first iteration of Process._resume inlined —
 * keep all of them and Event._run_callbacks in lockstep.
 *
 * Scheduling semantics are identical to the pure-python calendar
 * kernel: same cohort structures, same pooling rules, same error
 * messages. Only wall clock changes. Sanitize-mode runs never reach
 * this module (native.py falls back to the python loop, which carries
 * the tie tallies and traps).
 *
 * Attribute access: every class involved declares __slots__, so member
 * descriptors give fixed byte offsets into the instances. _bind()
 * resolves those offsets once; the loops then read and write slots
 * directly (with manual refcounting) instead of going through
 * PyObject_GetAttr. State comparisons are pointer identity against the
 * interned state strings, exactly like the python kernel's `is` checks.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* -- bound objects (owned references, set once by _bind) ---------------- */
static PyObject *EventCls;     /* repro.sim.events.Event */
static PyObject *TimeoutCls;   /* repro.sim.events.Timeout (exact type) */
static PyObject *S_processed;  /* events.PROCESSED */
static PyObject *S_pooled;     /* events.POOLED */
static PyObject *SimErr;       /* events.SimulationError */
static PyObject *TotalEvents;  /* environment._TOTAL_EVENTS (1-elem list) */

/* -- slot offsets -------------------------------------------------------- */
static Py_ssize_t E_callbacks, E_waiter, E_value, E_exception, E_state;
static Py_ssize_t P_send, P_generator, P_resume_cb, P_target;
static Py_ssize_t V_now, V_active, V_pool, V_spare, V_events, V_targets,
                  V_cohort, V_cohort_head, V_cohort_time;

/* -- interned method names ----------------------------------------------- */
static PyObject *str_finish, *str_yield_error, *str_throw,
                *str_form_cohort, *str_next_time;

#define SLOT(o, off) (*(PyObject **)((char *)(o) + (off)))

static inline void
slot_set(PyObject *o, Py_ssize_t off, PyObject *v)
{
    PyObject *old = SLOT(o, off);
    Py_INCREF(v);
    SLOT(o, off) = v;
    Py_XDECREF(old);
}

static Py_ssize_t
member_offset(PyObject *cls, const char *name)
{
    PyObject *desc = PyObject_GetAttrString(cls, name);
    Py_ssize_t off;
    if (desc == NULL)
        return -1;
    if (!PyObject_TypeCheck(desc, &PyMemberDescr_Type)) {
        Py_DECREF(desc);
        PyErr_Format(PyExc_TypeError, "%s is not a __slots__ member", name);
        return -1;
    }
    off = ((PyMemberDescrObject *)desc)->d_member->offset;
    Py_DECREF(desc);
    return off;
}

static inline int
in_targets(PyObject *targets, PyObject *ev)
{
    Py_ssize_t i, n = PyList_GET_SIZE(targets);
    for (i = 0; i < n; i++)
        if (PyList_GET_ITEM(targets, i) == ev)
            return 1;
    return 0;
}

/* env._events_processed += count; _TOTAL_EVENTS[0] += count */
static int
add_counts(PyObject *env, Py_ssize_t count)
{
    PyObject *nw;
    Py_ssize_t cur = PyLong_AsSsize_t(SLOT(env, V_events));
    if (cur == -1 && PyErr_Occurred())
        return -1;
    nw = PyLong_FromSsize_t(cur + count);
    if (nw == NULL)
        return -1;
    slot_set(env, V_events, nw);
    Py_DECREF(nw);
    cur = PyLong_AsSsize_t(PyList_GET_ITEM(TotalEvents, 0));
    if (cur == -1 && PyErr_Occurred())
        return -1;
    nw = PyLong_FromSsize_t(cur + count);
    if (nw == NULL)
        return -1;
    PyList_SetItem(TotalEvents, 0, nw); /* steals nw */
    return 0;
}

/* write env._cohort_head = head and fold counts, preserving any pending
 * exception (the C analogue of the python loops' finally blocks). */
static void
writeback(PyObject *env, Py_ssize_t head, Py_ssize_t count)
{
    PyObject *etype, *evalue, *etb, *nw;
    PyErr_Fetch(&etype, &evalue, &etb);
    nw = PyLong_FromSsize_t(head);
    if (nw != NULL) {
        slot_set(env, V_cohort_head, nw);
        Py_DECREF(nw);
    }
    else
        PyErr_Clear();
    if (add_counts(env, count) < 0)
        PyErr_Clear();
    PyErr_Restore(etype, evalue, etb);
}

/* Dispatch one event: Event._run_callbacks with the first iteration of
 * Process._resume inlined for single-waiter events. Returns 0, or -1
 * with an exception set. */
static int
dispatch_event(PyObject *env, PyObject *event, PyObject *targets)
{
    PyObject *waiter, *callbacks;

    slot_set(event, E_state, S_processed);
    waiter = SLOT(event, E_waiter);
    if (waiter != Py_None) {
        PyObject *exc, *result;
        Py_INCREF(waiter);
        slot_set(event, E_waiter, Py_None);
        slot_set(env, V_active, waiter);
        exc = SLOT(event, E_exception);
        if (exc == Py_None) {
            PyObject *send = SLOT(waiter, P_send);
            PyObject *value = SLOT(event, E_value);
            Py_INCREF(send);
            Py_INCREF(value);
            result = PyObject_CallOneArg(send, value);
            Py_DECREF(send);
            Py_DECREF(value);
        }
        else {
            PyObject *gen = SLOT(waiter, P_generator);
            Py_INCREF(gen);
            Py_INCREF(exc);
            result = PyObject_CallMethodOneArg(gen, str_throw, exc);
            Py_DECREF(gen);
            Py_DECREF(exc);
        }
        if (result == NULL) {
            /* Generator finished or failed: waiter._finish(exc) delivers
             * the return value / failure (and re-raises KI/SE). */
            PyObject *etype, *evalue, *etb, *r;
            PyErr_Fetch(&etype, &evalue, &etb);
            PyErr_NormalizeException(&etype, &evalue, &etb);
            if (evalue != NULL && etb != NULL)
                PyException_SetTraceback(evalue, etb);
            r = PyObject_CallMethodOneArg(waiter, str_finish, evalue);
            Py_XDECREF(etype);
            Py_XDECREF(evalue);
            Py_XDECREF(etb);
            Py_DECREF(waiter);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
        }
        else {
            /* Consumed bare timeout: recycle (run targets must stay
             * PROCESSED so their loops can observe completion). */
            if (Py_TYPE(event) == (PyTypeObject *)TimeoutCls
                    && SLOT(event, E_value) == Py_None
                    && PyList_GET_SIZE(SLOT(event, E_callbacks)) == 0
                    && !in_targets(targets, event)) {
                slot_set(event, E_state, S_pooled);
                if (SLOT(env, V_spare) == Py_None)
                    slot_set(env, V_spare, event);
                else if (PyList_Append(SLOT(env, V_pool), event) < 0) {
                    Py_DECREF(result);
                    Py_DECREF(waiter);
                    return -1;
                }
            }
            if (!PyObject_TypeCheck(result, (PyTypeObject *)EventCls)) {
                PyObject *r = PyObject_CallMethodOneArg(
                    waiter, str_yield_error, result);
                Py_DECREF(result);
                Py_DECREF(waiter);
                if (r != NULL) {
                    /* unreachable: _yield_error always raises */
                    Py_DECREF(r);
                    PyErr_SetString(SimErr, "process yielded a non-event");
                }
                return -1;
            }
            slot_set(waiter, P_target, result);
            PyObject *rstate = SLOT(result, E_state);
            if (rstate == S_processed) {
                /* Already resolved: fall back to the python trampoline
                 * for the (rare) multi-step resume. */
                PyObject *resume = SLOT(waiter, P_resume_cb);
                PyObject *r;
                Py_INCREF(resume);
                r = PyObject_CallOneArg(resume, result);
                Py_DECREF(resume);
                Py_DECREF(result);
                Py_DECREF(waiter);
                if (r == NULL)
                    return -1;
                Py_DECREF(r);
            }
            else if (rstate == S_pooled) {
                Py_DECREF(result);
                Py_DECREF(waiter);
                PyErr_SetString(SimErr,
                    "yielded a recycled bare Timeout; bare timeouts are "
                    "single-waiter (see repro.sim.events docstring)");
                return -1;
            }
            else {
                PyObject *rcb = SLOT(result, E_callbacks);
                if (SLOT(result, E_waiter) == Py_None
                        && PyList_GET_SIZE(rcb) == 0)
                    slot_set(result, E_waiter, waiter);
                else if (PyList_Append(rcb, SLOT(waiter, P_resume_cb)) < 0) {
                    Py_DECREF(result);
                    Py_DECREF(waiter);
                    return -1;
                }
                slot_set(env, V_active, Py_None);
                Py_DECREF(result);
                Py_DECREF(waiter);
            }
        }
    }
    callbacks = SLOT(event, E_callbacks);
    if (PyList_GET_SIZE(callbacks) != 0) {
        PyObject *empty = PyList_New(0);
        Py_ssize_t i, n;
        if (empty == NULL)
            return -1;
        Py_INCREF(callbacks);
        slot_set(event, E_callbacks, empty);
        Py_DECREF(empty);
        n = PyList_GET_SIZE(callbacks);
        for (i = 0; i < n; i++) {
            PyObject *r = PyObject_CallOneArg(
                PyList_GET_ITEM(callbacks, i), event);
            if (r == NULL) {
                Py_DECREF(callbacks);
                return -1;
            }
            Py_DECREF(r);
        }
        Py_DECREF(callbacks);
    }
    return 0;
}

/* run_limit(env, limit): the time-limit loop. The python wrapper
 * validates the limit and advances the clock to it afterwards. */
static PyObject *
native_run_limit(PyObject *self, PyObject *args)
{
    PyObject *env, *targets, *cohort;
    double limit;
    Py_ssize_t head, counted, count = 0;
    int status = 0;

    if (!PyArg_ParseTuple(args, "Od", &env, &limit))
        return NULL;
    targets = SLOT(env, V_targets);
    cohort = SLOT(env, V_cohort);
    Py_INCREF(cohort);
    head = PyLong_AsSsize_t(SLOT(env, V_cohort_head));
    if (head == -1 && PyErr_Occurred()) {
        Py_DECREF(cohort);
        return NULL;
    }
    counted = head;
    for (;;) {
        if (head < PyList_GET_SIZE(cohort)) {
            PyObject *event = PyList_GET_ITEM(cohort, head);
            Py_INCREF(event);
            head++;
            status = dispatch_event(env, event, targets);
            Py_DECREF(event);
            if (status < 0)
                break;
            continue;
        }
        count += head - counted;
        counted = head;
        {
            PyObject *when = PyObject_CallMethodNoArgs(env, str_next_time);
            double w;
            if (when == NULL) {
                status = -1;
                break;
            }
            if (when == Py_None) {
                Py_DECREF(when);
                break;
            }
            w = PyFloat_AsDouble(when);
            if (w == -1.0 && PyErr_Occurred()) {
                Py_DECREF(when);
                status = -1;
                break;
            }
            if (w > limit) {
                Py_DECREF(when);
                break;
            }
            {
                PyObject *r = PyObject_CallMethodNoArgs(env, str_form_cohort);
                if (r == NULL) {
                    Py_DECREF(when);
                    status = -1;
                    break;
                }
                Py_DECREF(r);
            }
            Py_DECREF(cohort);
            cohort = SLOT(env, V_cohort);
            Py_INCREF(cohort);
            head = 0;
            counted = 0;
            slot_set(env, V_now, when);
            Py_DECREF(when);
        }
    }
    count += head - counted;
    writeback(env, head, count);
    Py_DECREF(cohort);
    if (status < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* run_target(env, target): the event-target loop. The python wrapper
 * returns target.value (re-raising a failure) afterwards. */
static PyObject *
native_run_target(PyObject *self, PyObject *args)
{
    PyObject *env, *target, *targets, *cohort;
    Py_ssize_t head, counted, count = 0;
    int status = 0;

    if (!PyArg_ParseTuple(args, "OO", &env, &target))
        return NULL;
    targets = SLOT(env, V_targets);
    if (PyList_Append(targets, target) < 0)
        return NULL;
    cohort = SLOT(env, V_cohort);
    Py_INCREF(cohort);
    head = PyLong_AsSsize_t(SLOT(env, V_cohort_head));
    if (head == -1 && PyErr_Occurred()) {
        Py_DECREF(cohort);
        head = 0;
        status = -1;
        goto out;
    }
    counted = head;
    while (SLOT(target, E_state) != S_processed) {
        if (head < PyList_GET_SIZE(cohort)) {
            PyObject *event = PyList_GET_ITEM(cohort, head);
            Py_INCREF(event);
            head++;
            status = dispatch_event(env, event, targets);
            Py_DECREF(event);
            if (status < 0)
                break;
            continue;
        }
        count += head - counted;
        counted = head;
        {
            PyObject *r = PyObject_CallMethodNoArgs(env, str_form_cohort);
            if (r == NULL) {
                status = -1;
                break;
            }
            if (r == Py_None) {
                Py_DECREF(r);
                if (SLOT(target, E_state) == S_pooled)
                    PyErr_SetString(SimErr,
                        "run(until=...) target is a recycled bare Timeout; "
                        "bare timeouts are single-waiter (see "
                        "repro.sim.events docstring)");
                else
                    PyErr_SetString(SimErr,
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)");
                status = -1;
                break;
            }
            Py_DECREF(r);
            Py_DECREF(cohort);
            cohort = SLOT(env, V_cohort);
            Py_INCREF(cohort);
            head = 0;
            counted = 0;
            slot_set(env, V_now, SLOT(env, V_cohort_time));
        }
    }
    count += head - counted;
    Py_DECREF(cohort);
out:
    /* finally: targets.pop() + count/head writeback */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (PySequence_DelItem(targets, PyList_GET_SIZE(targets) - 1) < 0)
            PyErr_Clear();
        PyErr_Restore(etype, evalue, etb);
    }
    writeback(env, head, count);
    if (status < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* _bind(Environment, Event, Process, Timeout, PROCESSED, POOLED,
 *       SimulationError, _TOTAL_EVENTS) */
static PyObject *
native_bind(PyObject *self, PyObject *args)
{
    PyObject *env_cls, *event_cls, *process_cls, *timeout_cls;
    PyObject *processed, *pooled, *simerr, *total;

    if (!PyArg_ParseTuple(args, "OOOOOOOO", &env_cls, &event_cls,
                          &process_cls, &timeout_cls, &processed, &pooled,
                          &simerr, &total))
        return NULL;

#define OFF(var, cls, name) \
    do { \
        var = member_offset(cls, name); \
        if (var < 0) \
            return NULL; \
    } while (0)

    OFF(E_callbacks, event_cls, "callbacks");
    OFF(E_waiter, event_cls, "_waiter");
    OFF(E_value, event_cls, "_value");
    OFF(E_exception, event_cls, "_exception");
    OFF(E_state, event_cls, "_state");
    OFF(P_send, process_cls, "_send");
    OFF(P_generator, process_cls, "_generator");
    OFF(P_resume_cb, process_cls, "_resume_cb");
    OFF(P_target, process_cls, "_target");
    OFF(V_now, env_cls, "_now");
    OFF(V_active, env_cls, "_active_process");
    OFF(V_pool, env_cls, "_timeout_pool");
    OFF(V_spare, env_cls, "_spare");
    OFF(V_events, env_cls, "_events_processed");
    OFF(V_targets, env_cls, "_run_targets");
    OFF(V_cohort, env_cls, "_cohort");
    OFF(V_cohort_head, env_cls, "_cohort_head");
    OFF(V_cohort_time, env_cls, "_cohort_time");
#undef OFF

    Py_INCREF(event_cls);
    Py_XSETREF(EventCls, event_cls);
    Py_INCREF(timeout_cls);
    Py_XSETREF(TimeoutCls, timeout_cls);
    Py_INCREF(processed);
    Py_XSETREF(S_processed, processed);
    Py_INCREF(pooled);
    Py_XSETREF(S_pooled, pooled);
    Py_INCREF(simerr);
    Py_XSETREF(SimErr, simerr);
    if (!PyList_CheckExact(total)) {
        PyErr_SetString(PyExc_TypeError, "_TOTAL_EVENTS must be a list");
        return NULL;
    }
    Py_INCREF(total);
    Py_XSETREF(TotalEvents, total);
    Py_RETURN_NONE;
}

static PyMethodDef native_methods[] = {
    {"_bind", native_bind, METH_VARARGS,
     "Bind kernel classes/constants and resolve slot offsets."},
    {"run_limit", native_run_limit, METH_VARARGS,
     "Dispatch events until the queue drains past `limit`."},
    {"run_target", native_run_target, METH_VARARGS,
     "Dispatch events until `target` is processed."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "_repro_native",
    "C run loop for the repro.sim calendar kernel.",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__repro_native(void)
{
    str_finish = PyUnicode_InternFromString("_finish");
    str_yield_error = PyUnicode_InternFromString("_yield_error");
    str_throw = PyUnicode_InternFromString("throw");
    str_form_cohort = PyUnicode_InternFromString("_form_cohort");
    str_next_time = PyUnicode_InternFromString("_next_time");
    if (str_finish == NULL || str_yield_error == NULL || str_throw == NULL
            || str_form_cohort == NULL || str_next_time == NULL)
        return NULL;
    return PyModule_Create(&native_module);
}
