"""The discrete-event simulation environment (clock + event queue).

The environment owns the simulated clock and a priority queue of triggered
events. ``run()`` pops events in ``(time, sequence)`` order, which makes every
simulation fully deterministic for a fixed program: ties at the same instant
resolve in scheduling order.

Hot-path design
---------------

``run()`` inlines the pop/dispatch loop instead of calling :meth:`step` per
event: the queue, ``heappop`` and the clock live in locals, and callbacks
are dispatched straight off the popped tuple without attribute re-lookups.
``timeout()`` serves bare timeouts (no value) from a free list that
:meth:`~repro.sim.events.Process._resume` refills as processes consume
them, so the single most common event in every simulation costs no
allocation in steady state. Both paths schedule in exactly the same
``(time, sequence)`` order as the naive kernel — wall-clock changes,
simulated results do not.

The environment also counts dispatched events (:attr:`events_processed`
per environment, :func:`total_events_processed` process-wide), which is
what benchmark artifacts report as ``events_per_second``.

Sanitizer mode
--------------

``Environment(sanitize=True)`` (or ``REPRO_SANITIZE=1``) arms the runtime
counterpart of ``python -m repro.analysis``: bare timeouts are *retired*
instead of recycled so any retained reference trips the POOLED guards
deterministically, module-level ``random``/``np.random`` calls raise
while the simulation runs (see :mod:`repro.analysis.sanitize`), and the
run loop tallies same-timestamp tie cohorts (:meth:`sanitize_report`).
Sanitize mode never changes simulated results — only what misuse does.
``tie_break="lifo"`` reverses same-timestamp dispatch order for the
tie-sensitivity audit (:func:`repro.analysis.sanitize.audit_tie_sensitivity`).
"""

from __future__ import annotations

import heapq
import os
from heapq import heappop, heappush
from typing import Any, Dict, Iterable, Optional

from .events import (
    POOLED,
    PROCESSED,
    TRIGGERED,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

#: Process-wide count of dispatched events, across every Environment.
#: A one-element list so the inlined run loop can add to it without a
#: module-level rebind (and so imports see updates).
_TOTAL_EVENTS = [0]


def total_events_processed() -> int:
    """Events dispatched by every environment in this process so far."""
    return _TOTAL_EVENTS[0]


def _sanitize_from_env() -> bool:
    """Default sanitize switch, read from ``REPRO_SANITIZE``."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


class Environment:
    """Execution environment for a single simulation run."""

    __slots__ = ("_now", "_queue", "_sequence", "_active_process",
                 "_timeout_pool", "_events_processed", "_run_targets",
                 "_sanitize", "_seq_step", "_tie_cohorts", "_tie_max")

    def __init__(self, initial_time: float = 0.0, *,
                 sanitize: Optional[bool] = None,
                 tie_break: str = "fifo") -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        self._events_processed = 0
        # Stack of events that active run(until=event) calls are waiting
        # on (outermost first): exempt from timeout recycling so each run
        # loop can observe its target's completion even if a process
        # consumes the same bare timeout.
        self._run_targets: list[Event] = []
        self._sanitize = _sanitize_from_env() if sanitize is None \
            else bool(sanitize)
        if tie_break == "fifo":
            self._seq_step = 1
        elif tie_break == "lifo":
            # Audit mode: later same-instant insertions get *smaller*
            # sequence keys, reversing dispatch order within every tie
            # cohort (audit_tie_sensitivity runs both orders and diffs).
            self._seq_step = -1
        else:
            raise SimulationError(
                f"tie_break must be 'fifo' or 'lifo', got {tie_break!r}")
        # Sanitize-mode tallies of same-timestamp dispatch cohorts.
        self._tie_cohorts = 0
        self._tie_max = 1

    @property
    def sanitize(self) -> bool:
        """True when sanitizer mode is armed for this environment."""
        return self._sanitize

    def sanitize_report(self) -> Dict[str, Any]:
        """Sanitizer observations for this environment.

        ``reports`` lists non-fatal hazard observations (currently always
        empty: every armed trap — pooled-timeout reuse, non-Event yield,
        unseeded global RNG — fails fast with :class:`SimulationError`
        instead of reporting). The tie-cohort tallies quantify how much
        same-timestamp tie-breaking the run exercised: cohorts of two or
        more events resolve by insertion order, the contract the batched
        kernel on the roadmap must preserve.
        """
        return {
            "sanitize": self._sanitize,
            "reports": [],
            "tie_cohorts_multi": self._tie_cohorts,
            "max_tie_cohort": self._tie_max,
        }

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Events dispatched by this environment so far."""
        return self._events_processed

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` units from now.

        Bare timeouts (``value is None``) are recycled through a free
        list — see the :mod:`repro.sim.events` docstring for the
        single-waiter contract this implies.
        """
        if value is None:
            pool = self._timeout_pool
            if pool:
                if delay < 0:
                    raise SimulationError(f"negative timeout delay: {delay!r}")
                timeout = pool.pop()
                timeout.delay = delay
                timeout._value = None
                timeout._exception = None
                timeout._state = TRIGGERED
                sequence = self._sequence
                heappush(self._queue, (self._now + delay, sequence, timeout))
                self._sequence = sequence + self._seq_step
                return timeout
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any one of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += self._seq_step

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._events_processed += 1
        _TOTAL_EVENTS[0] += 1
        event._run_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception on failure).

        Events only ever enter the queue at ``now + delay`` with
        ``delay >= 0``, so unlike :meth:`step` the inlined loops skip the
        scheduled-in-the-past check.
        """
        # The dispatch block below appears twice (event-target loop and
        # time-limit loop) and inlines the first iteration of
        # Process._resume for single-waiter events — the dominant shape by
        # far. Keep the two copies, Process._resume and
        # Event._run_callbacks in lockstep.
        queue = self._queue
        pop = heappop
        pool = self._timeout_pool
        count = 0
        sanitize = self._sanitize
        if sanitize:
            # Lazy import: the analysis package only loads when sanitizing.
            from ..analysis.sanitize import install_rng_trap, uninstall_rng_trap
            last_when = float("-inf")
            cohort = 0
        if isinstance(until, Event):
            target = until
            targets = self._run_targets
            targets.append(target)
            if sanitize:
                install_rng_trap()
            try:
                while target._state != PROCESSED:
                    if not queue:
                        if target._state == POOLED:  # defensive: the
                            # _run_targets exemption should make this
                            # unreachable via the public API
                            raise SimulationError(
                                "run(until=...) target is a recycled bare "
                                "Timeout; bare timeouts are single-waiter "
                                "(see repro.sim.events docstring)"
                            )
                        raise SimulationError(
                            "simulation ran out of events before the awaited "
                            "event triggered (deadlock?)"
                        )
                    when, _seq, event = pop(queue)
                    self._now = when
                    count += 1
                    if sanitize:
                        if when == last_when:
                            cohort += 1
                            if cohort == 2:
                                self._tie_cohorts += 1
                            if cohort > self._tie_max:
                                self._tie_max = cohort
                        else:
                            last_when = when
                            cohort = 1
                        if event._exception is not None \
                                and event._waiter is None \
                                and not event.callbacks \
                                and event is not target:
                            # Unhandled failure: nothing will ever observe
                            # this exception — surface it instead of
                            # letting it rot on the event.
                            raise event._exception
                    event._state = PROCESSED
                    waiter = event._waiter
                    if waiter is not None:
                        event._waiter = None
                        self._active_process = waiter
                        try:
                            if event._exception is None:
                                result = waiter._send(event._value)
                            else:
                                result = waiter._generator.throw(
                                    event._exception)
                        except BaseException as exc:
                            waiter._finish(exc)
                        else:
                            if type(event) is Timeout \
                                    and event._value is None \
                                    and not event.callbacks \
                                    and event not in targets:
                                # (run targets — this loop's and any
                                # outer run()'s — must stay PROCESSED so
                                # their loops can observe completion)
                                event._state = POOLED
                                if not sanitize:
                                    pool.append(event)
                            try:
                                rstate = result._state
                            except AttributeError:
                                waiter._yield_error(result)
                            waiter._target = result
                            if rstate == PROCESSED:
                                waiter._resume(result)
                            elif rstate == POOLED:
                                raise SimulationError(
                                    "yielded a recycled bare Timeout; bare "
                                    "timeouts are single-waiter (see "
                                    "repro.sim.events docstring)"
                                )
                            else:
                                if result._waiter is None \
                                        and not result.callbacks:
                                    result._waiter = waiter
                                else:
                                    result.callbacks.append(waiter._resume_cb)
                                self._active_process = None
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
            finally:
                targets.pop()
                self._events_processed += count
                _TOTAL_EVENTS[0] += count
                if sanitize:
                    uninstall_rng_trap()
            return target.value

        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise SimulationError("run(until=...) is in the past")
        if sanitize:
            install_rng_trap()
        try:
            while queue and queue[0][0] <= limit:
                when, _seq, event = pop(queue)
                self._now = when
                count += 1
                if sanitize:
                    if when == last_when:
                        cohort += 1
                        if cohort == 2:
                            self._tie_cohorts += 1
                        if cohort > self._tie_max:
                            self._tie_max = cohort
                    else:
                        last_when = when
                        cohort = 1
                    if event._exception is not None \
                            and event._waiter is None \
                            and not event.callbacks \
                            and event not in self._run_targets:
                        # Unhandled failure (see the event-target loop).
                        raise event._exception
                event._state = PROCESSED
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    self._active_process = waiter
                    try:
                        if event._exception is None:
                            result = waiter._send(event._value)
                        else:
                            result = waiter._generator.throw(event._exception)
                    except BaseException as exc:
                        waiter._finish(exc)
                    else:
                        if type(event) is Timeout and event._value is None \
                                and not event.callbacks \
                                and event not in self._run_targets:
                            event._state = POOLED
                            if not sanitize:
                                pool.append(event)
                        try:
                            rstate = result._state
                        except AttributeError:
                            waiter._yield_error(result)
                        waiter._target = result
                        if rstate == PROCESSED:
                            waiter._resume(result)
                        elif rstate == POOLED:
                            raise SimulationError(
                                "yielded a recycled bare Timeout; bare "
                                "timeouts are single-waiter (see "
                                "repro.sim.events docstring)"
                            )
                        else:
                            if result._waiter is None \
                                    and not result.callbacks:
                                result._waiter = waiter
                            else:
                                result.callbacks.append(waiter._resume_cb)
                            self._active_process = None
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
        finally:
            self._events_processed += count
            _TOTAL_EVENTS[0] += count
            if sanitize:
                uninstall_rng_trap()
        if until is not None:
            self._now = limit
        return None


__all__ = [
    "Environment",
    "total_events_processed",
]
