"""The discrete-event simulation environment (clock + event queue).

The environment owns the simulated clock and a priority queue of triggered
events. ``run()`` pops events in ``(time, sequence)`` order, which makes every
simulation fully deterministic for a fixed program: ties at the same instant
resolve in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Optional

from .events import AllOf, AnyOf, Event, Process, SimulationError, Timeout


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any one of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception on failure).
        """
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return target.value

        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise SimulationError("run(until=...) is in the past")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        if until is not None:
            self._now = limit
        return None
