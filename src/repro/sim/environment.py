"""The discrete-event simulation environment (clock + event queue).

The environment owns the simulated clock and a pending-event structure.
``run()`` dispatches events in ``(time, sequence)`` order, which makes
every simulation fully deterministic for a fixed program: ties at the same
instant resolve in scheduling order.

Kernel selection (``REPRO_KERNEL``)
-----------------------------------

Three interchangeable schedulers implement the same dispatch order; pick
one with ``Environment(kernel=...)`` or the ``REPRO_KERNEL`` environment
variable:

``calendar`` (default)
    A calendar-queue scheduler with **cohort wave dispatch**.  Events
    sharing a timestamp accumulate in one list (keyed by exact time in
    ``_pending``), so a whole same-instant *cohort* pops as a unit, the
    clock advances once per cohort, and an event insert is one dict
    probe plus a list append — no priority-queue work per event at all.
    Zero-delay events scheduled *while the cohort dispatches* (the
    ``succeed()`` cascade that dominates real simulations) append
    straight onto the live batch.  The priority structure only orders
    the *distinct timestamps*: a calendar queue of time buckets sized
    from the decayed mean of observed inter-cohort deltas (O(1)
    amortized insert/pop), with far-future times falling back to a
    sorted overflow list that re-seeds the bucket window as the clock
    advances.  Dispatch order is exactly the heap kernel's
    ``(time, sequence)`` order: FIFO within a timestamp is the append
    order of the cohort list, and timestamps dispatch in increasing
    order.  The property-based equivalence suite in
    ``tests/test_kernel_equivalence.py`` replays random programs on
    both kernels and diffs the traces.

``heap``
    The PR 4 binary-heap kernel, kept as the bit-exact reference for the
    equivalence suite and for ``tie_break="lifo"`` audit runs (reversed
    tie order is a heap-key trick the calendar path does not replicate;
    a LIFO environment always uses the heap scheduler).

``native``
    The calendar kernel with its pop/dispatch inner loop compiled to C
    (:mod:`repro.sim.native`) — built on demand with the system C
    compiler, no third-party dependencies.  Falls back to ``calendar``
    (with a recorded reason) when no toolchain or CPython headers are
    available.  Scheduling semantics are identical; only wall clock
    changes.

Hot-path design
---------------

``timeout()`` serves bare timeouts (no value) from a free list that
:meth:`~repro.sim.events.Process._resume` refills as processes consume
them, so the single most common event in every simulation costs no
allocation in steady state.  The calendar run loops inline the first
iteration of ``Process._resume`` for single-waiter events exactly like
the heap loops do — keep all of them and ``Event._run_callbacks`` in
lockstep.

The environment also counts dispatched events (:attr:`events_processed`
per environment, :func:`total_events_processed` process-wide), which is
what benchmark artifacts report as ``events_per_second``.

Sanitizer mode
--------------

``Environment(sanitize=True)`` (or ``REPRO_SANITIZE=1``) arms the runtime
counterpart of ``python -m repro.analysis``: bare timeouts are *retired*
instead of recycled so any retained reference trips the POOLED guards
deterministically, module-level ``random``/``np.random`` calls raise
while the simulation runs (see :mod:`repro.analysis.sanitize`), and the
run loops tally same-timestamp tie cohorts (:meth:`sanitize_report`).
Sanitize mode never changes simulated results — only what misuse does.
``tie_break="lifo"`` reverses same-timestamp dispatch order for the
tie-sensitivity audit (:func:`repro.analysis.sanitize.audit_tie_sensitivity`).
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_left
from heapq import heappop, heappush
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import (
    POOLED,
    PROCESSED,
    TRIGGERED,
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)

#: Process-wide count of dispatched events, across every Environment.
#: A one-element list so the inlined run loop can add to it without a
#: module-level rebind (and so imports see updates).
_TOTAL_EVENTS = [0]

#: Calendar size: time buckets per window.  Bounded so the idle sweep to
#: the next non-empty bucket (amortized over everything dispatched from
#: the window) stays cheap even when most buckets are empty.
_NBUCKETS = 256

#: Inter-cohort delta observations required before the first bucket
#: window is seeded; until then distinct times are served straight off
#: the overflow heap.
_MIN_DELTA_OBS = 2.0

_INF = float("inf")
_NAN = float("nan")

KERNELS = ("calendar", "heap", "native")


def total_events_processed() -> int:
    """Events dispatched by every environment in this process so far."""
    return _TOTAL_EVENTS[0]


def _sanitize_from_env() -> bool:
    """Default sanitize switch, read from ``REPRO_SANITIZE``."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


def _kernel_from_env() -> str:
    """Default scheduler, read from ``REPRO_KERNEL`` (default: calendar)."""
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return value if value else "calendar"


class Environment:
    """Execution environment for a single simulation run."""

    __slots__ = (
        "_now", "_queue", "_sequence", "_active_process",
        "_timeout_pool", "_spare", "_events_processed", "_run_targets",
        "_sanitize", "_seq_step", "_tie_cohorts", "_tie_max",
        # calendar-queue scheduler state
        "_use_calendar", "kernel", "kernel_fallback_reason",
        "_pending", "_last_when", "_last_list",
        "_cohort", "_cohort_head", "_cohort_time",
        "_buckets", "_cursor", "_base", "_width", "_inv_width",
        "_bucket_count", "_overflow", "_dsum", "_dcnt", "_native_state",
    )

    def __init__(self, initial_time: float = 0.0, *,
                 sanitize: Optional[bool] = None,
                 tie_break: str = "fifo",
                 kernel: Optional[str] = None) -> None:
        self._now = float(initial_time)
        # Heap-kernel queue: (time, sequence, event) triples.
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: List[Timeout] = []
        # One-slot fast lane in front of the free list: the run loops
        # park the timeout they just recycled here and ``timeout()``
        # takes it back without touching the list.  In the steady
        # yield-timeout cycle the same objects ping-pong through this
        # slot and the pool list never churns.
        self._spare: Optional[Timeout] = None
        self._events_processed = 0
        # Stack of events that active run(until=event) calls are waiting
        # on (outermost first): exempt from timeout recycling so each run
        # loop can observe its target's completion even if a process
        # consumes the same bare timeout.
        self._run_targets: List[Event] = []
        self._sanitize = _sanitize_from_env() if sanitize is None \
            else bool(sanitize)
        if tie_break == "fifo":
            self._seq_step = 1
        elif tie_break == "lifo":
            # Audit mode: later same-instant insertions get *smaller*
            # sequence keys, reversing dispatch order within every tie
            # cohort (audit_tie_sensitivity runs both orders and diffs).
            self._seq_step = -1
        else:
            raise SimulationError(
                f"tie_break must be 'fifo' or 'lifo', got {tie_break!r}")
        requested = _kernel_from_env() if kernel is None else str(kernel)
        if requested not in KERNELS:
            raise SimulationError(
                f"kernel must be one of {KERNELS}, got {requested!r}")
        self.kernel_fallback_reason: Optional[str] = None
        if tie_break == "lifo" and requested != "heap":
            # Reversed tie order is implemented as a heap sequence-key
            # trick; the calendar path is FIFO-only by construction.
            requested = "heap"
            self.kernel_fallback_reason = "tie_break='lifo' requires heap"
        self._native_state: Any = None
        if requested == "native":
            from . import native as _native_mod
            self._native_state = _native_mod.load()
            if self._native_state is None:
                requested = "calendar"
                self.kernel_fallback_reason = _native_mod.unavailable_reason()
        self.kernel = requested
        self._use_calendar = requested != "heap"
        # Calendar scheduler state.  ``_pending`` maps each distinct
        # scheduled timestamp to its cohort-in-waiting (events in
        # insertion order); the bucket window + overflow heap order the
        # timestamps themselves.  ``_cohort`` is the batch currently
        # being dispatched, consumed by index so zero-delay appends
        # during dispatch extend the live batch in FIFO order.
        self._pending: Dict[float, List[Event]] = {}
        # One-entry insert cache: the list last appended to and its
        # timestamp.  Consecutive inserts at the same instant (lockstep
        # timeouts, zero-delay cascades) skip even the dict probe; a NaN
        # time never matches, and the cache never needs invalidation —
        # once a timestamp's cohort is extracted the cached list IS the
        # live cohort, where same-instant events belong anyway, and the
        # clock can never return to an older cached time.
        self._last_when = _NAN
        self._last_list: List[Event] = []
        self._cohort: List[Event] = []
        self._cohort_head = 0
        self._cohort_time = -_INF
        self._buckets: List[List[float]] = [
            [] for _ in range(_NBUCKETS)] if self._use_calendar else []
        self._cursor = 0
        self._base = 0.0
        self._width: Optional[float] = None
        # NaN until a width is known: any (when - base) * _inv_width
        # window test is then False, routing inserts to the overflow heap.
        self._inv_width = _NAN
        self._bucket_count = 0
        # Far-future / pre-window overflow: a min-heap of distinct
        # timestamps (floats — no sequence needed, times are unique by
        # construction) that re-seeds the bucket window as it drains.
        self._overflow: List[float] = []
        # Decayed inter-cohort delta stats driving the bucket width.
        self._dsum = 0.0
        self._dcnt = 0.0
        # Sanitize-mode tallies of same-timestamp dispatch cohorts.
        self._tie_cohorts = 0
        self._tie_max = 1

    @property
    def sanitize(self) -> bool:
        """True when sanitizer mode is armed for this environment."""
        return self._sanitize

    def sanitize_report(self) -> Dict[str, Any]:
        """Sanitizer observations for this environment.

        ``reports`` lists non-fatal hazard observations (currently always
        empty: every armed trap — pooled-timeout reuse, non-Event yield,
        unseeded global RNG — fails fast with :class:`SimulationError`
        instead of reporting). The tie-cohort tallies quantify how much
        same-timestamp tie-breaking the run exercised: cohorts of two or
        more events resolve by insertion order, the contract the batched
        kernel preserves (and now dispatches as one wave).
        """
        return {
            "sanitize": self._sanitize,
            "reports": [],
            "tie_cohorts_multi": self._tie_cohorts,
            "max_tie_cohort": self._tie_max,
        }

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def events_processed(self) -> int:
        """Events dispatched by this environment so far."""
        return self._events_processed

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` units from now.

        Bare timeouts (``value is None``) are recycled through a free
        list — see the :mod:`repro.sim.events` docstring for the
        single-waiter contract this implies.
        """
        if value is None:
            timeout = self._spare
            if timeout is not None:
                self._spare = None
            else:
                pool = self._timeout_pool
                if not pool:
                    return Timeout(self, delay, value)
                timeout = pool.pop()
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            timeout.delay = delay
            # No _value/_exception reset: a pooled bare Timeout has both
            # None by construction (pooling requires a None value, and a
            # Timeout is born TRIGGERED so fail() can never have touched
            # it).
            timeout._state = TRIGGERED
            if self._use_calendar:
                when = self._now + delay
                if when == self._last_when:
                    self._last_list.append(timeout)
                    return timeout
                cohort = self._pending.get(when)
                if cohort is None:
                    if when == self._cohort_time:
                        cohort = self._cohort
                    else:
                        cohort = [timeout]
                        self._pending[when] = cohort
                        self._last_when = when
                        self._last_list = cohort
                        self._time_insert(when)
                        return timeout
                cohort.append(timeout)
                self._last_when = when
                self._last_list = cohort
            else:
                sequence = self._sequence
                heappush(self._queue,
                         (self._now + delay, sequence, timeout))
                self._sequence = sequence + self._seq_step
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any one of ``events`` triggers."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if self._use_calendar:
            when = self._now + delay
            if when == self._last_when:
                self._last_list.append(event)
                return
            cohort = self._pending.get(when)
            if cohort is None:
                if when == self._cohort_time:
                    # Same-instant cascade: join the live dispatch wave.
                    cohort = self._cohort
                else:
                    cohort = [event]
                    self._pending[when] = cohort
                    self._last_when = when
                    self._last_list = cohort
                    self._time_insert(when)
                    return
            # Timestamp already pending (or live): join its cohort in
            # FIFO position — the time itself is already ordered.
            cohort.append(event)
            self._last_when = when
            self._last_list = cohort
        else:
            heappush(self._queue, (self._now + delay, self._sequence, event))
            self._sequence += self._seq_step

    def _time_insert(self, when: float) -> None:
        """Track a newly-pending distinct timestamp in the calendar.

        In-window times go to their bucket; everything else — far
        future, behind the consume cursor, or no window yet (the NaN
        ``_inv_width`` fails the comparison) — goes to the overflow
        heap.  Cohort extraction always compares the bucket scan against
        the overflow head, so dispatch order never depends on the window
        being fresh.
        """
        offset = (when - self._base) * self._inv_width
        if self._cursor <= offset < _NBUCKETS:
            self._buckets[int(offset)].append(when)
            self._bucket_count += 1
        else:
            heappush(self._overflow, when)

    def _next_time(self) -> Optional[float]:
        """Smallest pending distinct timestamp, without extracting it."""
        overflow = self._overflow
        if self._bucket_count:
            buckets = self._buckets
            cursor = self._cursor
            bucket = buckets[cursor]
            while not bucket:
                cursor += 1
                bucket = buckets[cursor]
            self._cursor = cursor
            when = bucket[0] if len(bucket) == 1 else min(bucket)
            if overflow and overflow[0] < when:
                return overflow[0]
            return when
        if overflow:
            # Buckets empty: the overflow head is the global minimum
            # (the window only re-seeds on extraction, never here).
            return overflow[0]
        return None

    def _pop_time(self) -> Optional[float]:
        """Extract the smallest pending distinct timestamp."""
        overflow = self._overflow
        while True:
            if self._bucket_count:
                buckets = self._buckets
                cursor = self._cursor
                bucket = buckets[cursor]
                while not bucket:
                    cursor += 1
                    bucket = buckets[cursor]
                self._cursor = cursor
                if len(bucket) == 1:
                    when = bucket[0]
                    if overflow and overflow[0] < when:
                        return heappop(overflow)
                    bucket.clear()
                else:
                    when = min(bucket)
                    if overflow and overflow[0] < when:
                        return heappop(overflow)
                    bucket.remove(when)
                self._bucket_count -= 1
                return when
            if not overflow:
                return None
            # Buckets drained: re-seed the window from the overflow.
            # Width: decayed mean of the observed inter-cohort deltas.
            if self._dcnt >= _MIN_DELTA_OBS:
                width = self._dsum / self._dcnt
                self._dsum *= 0.5
                self._dcnt *= 0.5
                if 0.0 < width < _INF:
                    self._width = width
                    self._inv_width = 1.0 / width
            width = self._width
            if width is None:
                return heappop(overflow)
            base = overflow[0]
            end = base + _NBUCKETS * width
            if not (base < end < _INF):
                # Degenerate width/base (inf overflow): serve heap-style.
                return heappop(overflow)
            # A sorted list is a valid min-heap, so the tail left behind
            # after the in-window prefix moves out still supports
            # heappush/heappop.
            overflow.sort()
            cut = bisect_left(overflow, end)
            # cut >= 1 always: base = overflow[0] < end.
            self._base = base
            self._cursor = 0
            inv_width = self._inv_width
            buckets = self._buckets
            last = _NBUCKETS - 1
            for when in overflow[:cut]:
                index = int((when - base) * inv_width)
                if index > last:  # float edge at the window boundary
                    index = last
                buckets[index].append(when)
            self._bucket_count += cut
            del overflow[:cut]

    def _form_cohort(self) -> Optional[float]:
        """Extract the next cohort; returns its time, or None if empty.

        Installs the batch as ``_cohort`` (head reset) and advances
        ``_cohort_time``; the caller advances the clock.
        """
        when = self._pop_time()
        if when is None:
            return None
        prev = self._cohort_time
        self._cohort = self._pending.pop(when)
        self._cohort_head = 0
        self._cohort_time = when
        delta = when - prev
        if 0.0 < delta < _INF:
            self._dsum += delta
            self._dcnt += 1.0
        return when

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._use_calendar:
            if self._cohort_head < len(self._cohort):
                return self._cohort_time
            when = self._next_time()
            return _INF if when is None else when
        if not self._queue:
            return _INF
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event."""
        if self._use_calendar:
            head = self._cohort_head
            cohort = self._cohort
            if head >= len(cohort):
                if self._form_cohort() is None:
                    raise SimulationError("step() on an empty event queue")
                cohort = self._cohort
                head = 0
            event = cohort[head]
            self._cohort_head = head + 1
            self._now = self._cohort_time
            self._events_processed += 1
            _TOTAL_EVENTS[0] += 1
            event._run_callbacks()
            return
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._events_processed += 1
        _TOTAL_EVENTS[0] += 1
        event._run_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception on failure).

        Events only ever enter the queue at ``now + delay`` with
        ``delay >= 0``, so unlike :meth:`step` the inlined loops skip the
        scheduled-in-the-past check.
        """
        if self._use_calendar:
            if self._native_state is not None:
                from . import native as _native_mod
                return _native_mod.run(self, until)
            return self._run_calendar(until)
        return self._run_heap(until)

    # -- calendar kernel run loops -----------------------------------------
    def _run_calendar(self, until: Optional[Any]) -> Any:
        # The dispatch block below appears twice (event-target loop and
        # time-limit loop) and inlines the first iteration of
        # Process._resume for single-waiter events — the dominant shape
        # by far.  Keep the two copies, the heap twins in _run_heap,
        # Process._resume and Event._run_callbacks in lockstep.
        #
        # Cohort wave dispatch: the batch for the current timestamp is a
        # plain list consumed by index; ``IndexError`` on the read past
        # the end is the (steady-state-free) batch terminator, and
        # same-instant events scheduled while the wave dispatches append
        # onto the live list in FIFO position.
        #
        # Invariant on entry: a non-exhausted live cohort implies
        # ``_now == _cohort_time`` (only a run(until=event) return or
        # step() leaves a cohort mid-dispatch, and both set the clock).
        pool = self._timeout_pool
        sanitize = self._sanitize
        count = 0
        cohort = self._cohort
        head = self._cohort_head
        counted = head
        if sanitize:
            # Lazy import: the analysis package only loads when sanitizing.
            from ..analysis.sanitize import install_rng_trap, uninstall_rng_trap
            last_when = float("-inf")
            tie_run = 0
        if isinstance(until, Event):
            target = until
            targets = self._run_targets
            targets.append(target)
            if sanitize:
                install_rng_trap()
            try:
                while target._state != PROCESSED:
                    try:
                        event = cohort[head]
                    except IndexError:
                        count += head - counted
                        counted = head  # folded: the finally must not re-add
                        if self._form_cohort() is None:
                            if target._state == POOLED:  # defensive: the
                                # _run_targets exemption should make this
                                # unreachable via the public API
                                raise SimulationError(
                                    "run(until=...) target is a recycled "
                                    "bare Timeout; bare timeouts are "
                                    "single-waiter (see repro.sim.events "
                                    "docstring)"
                                )
                            raise SimulationError(
                                "simulation ran out of events before the "
                                "awaited event triggered (deadlock?)"
                            )
                        cohort = self._cohort
                        head = 0
                        counted = 0
                        self._now = self._cohort_time
                        continue
                    head += 1
                    if sanitize:
                        when = self._cohort_time
                        if when == last_when:
                            tie_run += 1
                            if tie_run == 2:
                                self._tie_cohorts += 1
                            if tie_run > self._tie_max:
                                self._tie_max = tie_run
                        else:
                            last_when = when
                            tie_run = 1
                        if event._exception is not None \
                                and event._waiter is None \
                                and not event.callbacks \
                                and event is not target:
                            # Unhandled failure: nothing will ever observe
                            # this exception — surface it instead of
                            # letting it rot on the event.
                            raise event._exception
                    event._state = PROCESSED
                    waiter = event._waiter
                    if waiter is not None:
                        event._waiter = None
                        self._active_process = waiter
                        try:
                            if event._exception is None:
                                result = waiter._send(event._value)
                            else:
                                result = waiter._generator.throw(
                                    event._exception)
                        except BaseException as exc:
                            waiter._finish(exc)
                        else:
                            if type(event) is Timeout \
                                    and event._value is None \
                                    and not event.callbacks \
                                    and event not in targets:
                                # (run targets — this loop's and any
                                # outer run()'s — must stay PROCESSED so
                                # their loops can observe completion)
                                event._state = POOLED
                                if not sanitize:
                                    if self._spare is None:
                                        self._spare = event
                                    else:
                                        pool.append(event)
                            try:
                                rstate = result._state
                            except AttributeError:
                                waiter._yield_error(result)
                            waiter._target = result
                            if rstate == PROCESSED:
                                waiter._resume(result)
                            elif rstate == POOLED:
                                raise SimulationError(
                                    "yielded a recycled bare Timeout; bare "
                                    "timeouts are single-waiter (see "
                                    "repro.sim.events docstring)"
                                )
                            else:
                                if result._waiter is None \
                                        and not result.callbacks:
                                    result._waiter = waiter
                                else:
                                    result.callbacks.append(
                                        waiter._resume_cb)
                                self._active_process = None
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
            finally:
                targets.pop()
                count += head - counted
                self._cohort_head = head
                self._events_processed += count
                _TOTAL_EVENTS[0] += count
                if sanitize:
                    uninstall_rng_trap()
            return target.value

        limit = _INF if until is None else float(until)
        targets = self._run_targets
        if limit < self._now:
            raise SimulationError("run(until=...) is in the past")
        if sanitize:
            install_rng_trap()
        try:
            while True:
                try:
                    event = cohort[head]
                except IndexError:
                    count += head - counted
                    counted = head  # folded: the except must not re-add
                    # Non-destructive look-ahead: only extract the next
                    # cohort once it is known to be inside the limit, so
                    # nothing is staged past it (a staged future cohort
                    # would outrank events scheduled later at earlier
                    # times).
                    when = self._next_time()
                    if when is None or when > limit:
                        self._cohort_head = head
                        break
                    self._form_cohort()
                    cohort = self._cohort
                    head = 0
                    counted = 0
                    self._now = when
                    continue
                head += 1
                if sanitize:
                    when = self._cohort_time
                    if when == last_when:
                        tie_run += 1
                        if tie_run == 2:
                            self._tie_cohorts += 1
                        if tie_run > self._tie_max:
                            self._tie_max = tie_run
                    else:
                        last_when = when
                        tie_run = 1
                    if event._exception is not None \
                            and event._waiter is None \
                            and not event.callbacks \
                            and event not in targets:
                        # Unhandled failure (see the event-target loop).
                        raise event._exception
                event._state = PROCESSED
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    self._active_process = waiter
                    try:
                        if event._exception is None:
                            result = waiter._send(event._value)
                        else:
                            result = waiter._generator.throw(event._exception)
                    except BaseException as exc:
                        waiter._finish(exc)
                    else:
                        if type(event) is Timeout and event._value is None \
                                and not event.callbacks \
                                and event not in targets:
                            event._state = POOLED
                            if not sanitize:
                                if self._spare is None:
                                    self._spare = event
                                else:
                                    pool.append(event)
                        try:
                            rstate = result._state
                        except AttributeError:
                            waiter._yield_error(result)
                        waiter._target = result
                        if rstate == PROCESSED:
                            waiter._resume(result)
                        elif rstate == POOLED:
                            raise SimulationError(
                                "yielded a recycled bare Timeout; bare "
                                "timeouts are single-waiter (see "
                                "repro.sim.events docstring)"
                            )
                        else:
                            if result._waiter is None \
                                    and not result.callbacks:
                                result._waiter = waiter
                            else:
                                result.callbacks.append(waiter._resume_cb)
                            self._active_process = None
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
        except BaseException:
            count += head - counted
            self._cohort_head = head
            raise
        finally:
            self._events_processed += count
            _TOTAL_EVENTS[0] += count
            if sanitize:
                uninstall_rng_trap()
        if until is not None:
            self._now = limit
        return None

    # -- heap kernel run loops ---------------------------------------------
    def _run_heap(self, until: Optional[Any]) -> Any:
        # The PR 4 inlined heap loops, verbatim: the reference scheduler
        # for the equivalence suite and the lifo tie-break audit.  Keep
        # the two copies, the calendar twins above, Process._resume and
        # Event._run_callbacks in lockstep.
        queue = self._queue
        pop = heappop
        pool = self._timeout_pool
        count = 0
        sanitize = self._sanitize
        if sanitize:
            # Lazy import: the analysis package only loads when sanitizing.
            from ..analysis.sanitize import install_rng_trap, uninstall_rng_trap
            last_when = float("-inf")
            cohort = 0
        if isinstance(until, Event):
            target = until
            targets = self._run_targets
            targets.append(target)
            if sanitize:
                install_rng_trap()
            try:
                while target._state != PROCESSED:
                    if not queue:
                        if target._state == POOLED:  # defensive: the
                            # _run_targets exemption should make this
                            # unreachable via the public API
                            raise SimulationError(
                                "run(until=...) target is a recycled bare "
                                "Timeout; bare timeouts are single-waiter "
                                "(see repro.sim.events docstring)"
                            )
                        raise SimulationError(
                            "simulation ran out of events before the awaited "
                            "event triggered (deadlock?)"
                        )
                    when, _seq, event = pop(queue)
                    self._now = when
                    count += 1
                    if sanitize:
                        if when == last_when:
                            cohort += 1
                            if cohort == 2:
                                self._tie_cohorts += 1
                            if cohort > self._tie_max:
                                self._tie_max = cohort
                        else:
                            last_when = when
                            cohort = 1
                        if event._exception is not None \
                                and event._waiter is None \
                                and not event.callbacks \
                                and event is not target:
                            # Unhandled failure: nothing will ever observe
                            # this exception — surface it instead of
                            # letting it rot on the event.
                            raise event._exception
                    event._state = PROCESSED
                    waiter = event._waiter
                    if waiter is not None:
                        event._waiter = None
                        self._active_process = waiter
                        try:
                            if event._exception is None:
                                result = waiter._send(event._value)
                            else:
                                result = waiter._generator.throw(
                                    event._exception)
                        except BaseException as exc:
                            waiter._finish(exc)
                        else:
                            if type(event) is Timeout \
                                    and event._value is None \
                                    and not event.callbacks \
                                    and event not in targets:
                                # (run targets — this loop's and any
                                # outer run()'s — must stay PROCESSED so
                                # their loops can observe completion)
                                event._state = POOLED
                                if not sanitize:
                                    if self._spare is None:
                                        self._spare = event
                                    else:
                                        pool.append(event)
                            try:
                                rstate = result._state
                            except AttributeError:
                                waiter._yield_error(result)
                            waiter._target = result
                            if rstate == PROCESSED:
                                waiter._resume(result)
                            elif rstate == POOLED:
                                raise SimulationError(
                                    "yielded a recycled bare Timeout; bare "
                                    "timeouts are single-waiter (see "
                                    "repro.sim.events docstring)"
                                )
                            else:
                                if result._waiter is None \
                                        and not result.callbacks:
                                    result._waiter = waiter
                                else:
                                    result.callbacks.append(waiter._resume_cb)
                                self._active_process = None
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for callback in callbacks:
                            callback(event)
            finally:
                targets.pop()
                self._events_processed += count
                _TOTAL_EVENTS[0] += count
                if sanitize:
                    uninstall_rng_trap()
            return target.value

        limit = _INF if until is None else float(until)
        targets = self._run_targets
        if limit < self._now:
            raise SimulationError("run(until=...) is in the past")
        if sanitize:
            install_rng_trap()
        try:
            while queue and queue[0][0] <= limit:
                when, _seq, event = pop(queue)
                self._now = when
                count += 1
                if sanitize:
                    if when == last_when:
                        cohort += 1
                        if cohort == 2:
                            self._tie_cohorts += 1
                        if cohort > self._tie_max:
                            self._tie_max = cohort
                    else:
                        last_when = when
                        cohort = 1
                    if event._exception is not None \
                            and event._waiter is None \
                            and not event.callbacks \
                            and event not in targets:
                        # Unhandled failure (see the event-target loop).
                        raise event._exception
                event._state = PROCESSED
                waiter = event._waiter
                if waiter is not None:
                    event._waiter = None
                    self._active_process = waiter
                    try:
                        if event._exception is None:
                            result = waiter._send(event._value)
                        else:
                            result = waiter._generator.throw(event._exception)
                    except BaseException as exc:
                        waiter._finish(exc)
                    else:
                        if type(event) is Timeout and event._value is None \
                                and not event.callbacks \
                                and event not in targets:
                            event._state = POOLED
                            if not sanitize:
                                if self._spare is None:
                                    self._spare = event
                                else:
                                    pool.append(event)
                        try:
                            rstate = result._state
                        except AttributeError:
                            waiter._yield_error(result)
                        waiter._target = result
                        if rstate == PROCESSED:
                            waiter._resume(result)
                        elif rstate == POOLED:
                            raise SimulationError(
                                "yielded a recycled bare Timeout; bare "
                                "timeouts are single-waiter (see "
                                "repro.sim.events docstring)"
                            )
                        else:
                            if result._waiter is None \
                                    and not result.callbacks:
                                result._waiter = waiter
                            else:
                                result.callbacks.append(waiter._resume_cb)
                            self._active_process = None
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
        finally:
            self._events_processed += count
            _TOTAL_EVENTS[0] += count
            if sanitize:
                uninstall_rng_trap()
        if until is not None:
            self._now = limit
        return None


__all__ = [
    "Environment",
    "KERNELS",
    "total_events_processed",
]
