"""Minimal deterministic discrete-event simulation kernel.

This package provides the substrate on which every timed experiment in the
reproduction runs: cluster servers, network transfers and query executions
are simulation processes whose costs come from calibrated cost models rather
than Python wall-clock time.
"""

from .environment import Environment, total_events_processed
from .events import (
    AllOf,
    AnyOf,
    Event,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "total_events_processed",
]
