"""Greedy vertex-cut edge partitioning (PowerGraph's placement heuristic).

PowerGraph [6] partitions *edges* across machines and replicates vertices
that span machines; communication scales with the replication factor. The
greedy heuristic places each edge using the current replica sets A(u), A(v):

* both endpoints share machines → least-loaded shared machine;
* both have (disjoint) replicas → least-loaded machine among the replicas
  of the endpoint with more unplaced edges;
* one has replicas → least-loaded of those;
* neither → least-loaded machine overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

import numpy as np

from ..graph.digraph import Graph


@dataclass
class VertexCut:
    """Result of a vertex-cut partitioning."""

    edge_machine: Dict[Tuple[int, int], int]
    replicas: Dict[int, Set[int]]
    num_machines: int

    def replication_factor(self) -> float:
        """Average replicas per vertex — PowerGraph's communication driver."""
        if not self.replicas:
            return 0.0
        return sum(len(m) for m in self.replicas.values()) / len(self.replicas)

    def machine_loads(self) -> np.ndarray:
        """Edges per machine."""
        loads = np.zeros(self.num_machines, dtype=np.int64)
        for machine in self.edge_machine.values():
            loads[machine] += 1
        return loads

    def master_of(self, node: int) -> int:
        """Deterministic master replica (lowest machine id)."""
        machines = self.replicas.get(node)
        if not machines:
            return node % self.num_machines
        return min(machines)


def greedy_vertex_cut(graph: Graph, num_machines: int, seed: int = 0) -> VertexCut:
    """Place every directed edge of ``graph`` on one of ``num_machines``."""
    if num_machines < 1:
        raise ValueError("need at least one machine")
    rng = np.random.default_rng(seed)
    loads = np.zeros(num_machines, dtype=np.int64)
    replicas: Dict[int, Set[int]] = {}
    edge_machine: Dict[Tuple[int, int], int] = {}

    remaining: Dict[int, int] = {
        node: graph.degree(node) for node in graph.nodes()
    }

    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v in edges:
        a_u = replicas.get(u, set())
        a_v = replicas.get(v, set())
        shared = a_u & a_v
        if shared:
            candidates = shared
        elif a_u and a_v:
            # Favor the endpoint with more unplaced edges: its replica set
            # will keep growing anyway, so reuse the other's.
            candidates = a_u if remaining[u] >= remaining[v] else a_v
        elif a_u or a_v:
            candidates = a_u or a_v
        else:
            candidates = None
        if candidates:
            machine = min(candidates, key=lambda m: (loads[m], m))
        else:
            machine = int(np.argmin(loads))
        edge_machine[(u, v)] = machine
        loads[machine] += 1
        replicas.setdefault(u, set()).add(machine)
        replicas.setdefault(v, set()).add(machine)
        remaining[u] -= 1
        remaining[v] -= 1

    # Isolated nodes still need a home (single replica, balanced).
    for node in graph.nodes():
        if node not in replicas:
            replicas[node] = {int(np.argmin(loads))}
    return VertexCut(edge_machine, replicas, num_machines)


def random_vertex_cut(graph: Graph, num_machines: int, seed: int = 0) -> VertexCut:
    """Uniform-random edge placement — the ablation baseline for greedy."""
    rng = np.random.default_rng(seed)
    replicas: Dict[int, Set[int]] = {}
    edge_machine: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        machine = int(rng.integers(0, num_machines))
        edge_machine[(u, v)] = machine
        replicas.setdefault(u, set()).add(machine)
        replicas.setdefault(v, set()).add(machine)
    for node in graph.nodes():
        if node not in replicas:
            replicas[node] = {int(rng.integers(0, num_machines))}
    return VertexCut(edge_machine, replicas, num_machines)
