"""Comparison systems: coupled BSP (SEDGE/Giraph) and GAS (PowerGraph)."""

from .coupled import CoupledCosts, PowerGraphSystem, SedgeSystem
from .metis_like import (
    edge_cut,
    hash_partition,
    multilevel_partition,
    partition_loads,
)
from .vertex_cut import VertexCut, greedy_vertex_cut, random_vertex_cut

__all__ = [
    "CoupledCosts",
    "PowerGraphSystem",
    "SedgeSystem",
    "VertexCut",
    "edge_cut",
    "greedy_vertex_cut",
    "hash_partition",
    "multilevel_partition",
    "partition_loads",
    "random_vertex_cut",
]
