"""Multilevel balanced edge-cut partitioner (METIS-style).

SEDGE runs ParMETIS for its partitioning/re-partitioning (§4, [35][9]).
This module implements the same three-phase multilevel scheme:

1. **coarsening** — repeated heavy-edge matching collapses the graph by
   roughly half per level while preserving its community structure;
2. **initial partitioning** — greedy region growing (BFS from spread-out
   seeds) on the coarsest graph, balanced by collapsed node weight;
3. **uncoarsening + refinement** — projected back level by level with a
   boundary Kernighan–Lin/Fiduccia–Mattheyses pass after each projection,
   moving boundary nodes when it reduces the edge cut within balance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.digraph import Graph

Adjacency = List[Dict[int, float]]


def _adjacency_from_csr(csr: CSRGraph) -> Adjacency:
    adj: Adjacency = [dict() for _ in range(csr.num_nodes)]
    for u in range(csr.num_nodes):
        for v in csr.neighbors_of(u):
            v = int(v)
            if v != u:
                adj[u][v] = adj[u].get(v, 0.0) + 1.0
                adj[v][u] = adj[v].get(u, 0.0) + 1.0
    # Each undirected pair was added twice (once per direction row).
    for u in range(csr.num_nodes):
        for v in adj[u]:
            adj[u][v] /= 2.0
    return adj


def _heavy_edge_matching(
    adj: Adjacency, _weights: np.ndarray, rng: np.random.Generator
) -> Tuple[np.ndarray, int]:
    """Match each node with its heaviest unmatched neighbor."""
    n = len(adj)
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for u in order:
        if match[u] != -1 or not adj[u]:
            continue
        best, best_weight = -1, -1.0
        for v, w in adj[u].items():
            if match[v] == -1 and w > best_weight:
                best, best_weight = v, w
        if best != -1:
            match[u] = best
            match[best] = u
    # Assign coarse ids: matched pairs share one id.
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if coarse_id[u] != -1:
            continue
        coarse_id[u] = next_id
        if match[u] != -1:
            coarse_id[match[u]] = next_id
        next_id += 1
    return coarse_id, next_id


def _coarsen(
    adj: Adjacency, weights: np.ndarray, coarse_id: np.ndarray, size: int
) -> Tuple[Adjacency, np.ndarray]:
    new_adj: Adjacency = [dict() for _ in range(size)]
    new_weights = np.zeros(size, dtype=np.float64)
    for u, cu in enumerate(coarse_id):
        new_weights[cu] += weights[u]
        for v, w in adj[u].items():
            cv = coarse_id[v]
            if cu != cv:
                new_adj[cu][cv] = new_adj[cu].get(cv, 0.0) + w
    return new_adj, new_weights


def _grow_initial(
    adj: Adjacency,
    weights: np.ndarray,
    k: int,
    _rng: np.random.Generator,
) -> np.ndarray:
    """Greedy BFS region growing into k balanced parts."""
    n = len(adj)
    labels = np.full(n, -1, dtype=np.int32)
    target = weights.sum() / k
    order = np.argsort(-weights, kind="stable")
    part = 0
    for seed in order:
        if part >= k:
            break
        if labels[seed] != -1:
            continue
        # Grow part `part` from this seed until it reaches target weight.
        load = 0.0
        frontier = [int(seed)]
        while frontier and load < target:
            u = frontier.pop(0)
            if labels[u] != -1:
                continue
            labels[u] = part
            load += weights[u]
            frontier.extend(v for v in adj[u] if labels[v] == -1)
        part += 1
    # Leftover nodes join their lightest labelled neighbor's part, or the
    # globally lightest part.
    loads = np.zeros(k, dtype=np.float64)
    for u in range(n):
        if labels[u] >= 0:
            loads[labels[u]] += weights[u]
    for u in range(n):
        if labels[u] != -1:
            continue
        neighbor_parts = {labels[v] for v in adj[u] if labels[v] != -1}
        if neighbor_parts:
            choice = min(neighbor_parts, key=lambda p: loads[p])
        else:
            choice = int(np.argmin(loads))
        labels[u] = choice
        loads[choice] += weights[u]
    return labels


def _refine(
    adj: Adjacency,
    weights: np.ndarray,
    labels: np.ndarray,
    k: int,
    balance: float,
    passes: int = 4,
) -> None:
    """Boundary FM refinement: greedy gain moves within the balance bound."""
    loads = np.zeros(k, dtype=np.float64)
    for u, part in enumerate(labels):
        loads[part] += weights[u]
    max_load = balance * weights.sum() / k
    for _ in range(passes):
        moved = 0
        for u in range(len(adj)):
            here = labels[u]
            if not adj[u]:
                continue
            # Connectivity of u to each adjacent part.
            conn: Dict[int, float] = {}
            for v, w in adj[u].items():
                conn[labels[v]] = conn.get(labels[v], 0.0) + w
            best_part, best_gain = here, 0.0
            internal = conn.get(here, 0.0)
            for part, weight_to in conn.items():
                if part == here:
                    continue
                gain = weight_to - internal
                if gain > best_gain and loads[part] + weights[u] <= max_load:
                    best_part, best_gain = part, gain
            if best_part != here:
                loads[here] -= weights[u]
                loads[best_part] += weights[u]
                labels[u] = best_part
                moved += 1
        if moved == 0:
            break


def multilevel_partition(
    graph: Graph,
    k: int,
    seed: int = 0,
    balance: float = 1.05,
    coarsest_size: int = 200,
    csr: Optional[CSRGraph] = None,
) -> np.ndarray:
    """Partition ``graph`` into ``k`` parts; returns per-compact-index labels.

    Labels follow the node ordering of ``CSRGraph.from_graph(graph,
    "both")`` (sorted node ids).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if csr is None:
        csr = CSRGraph.from_graph(graph, direction="both")
    n = csr.num_nodes
    if k == 1:
        return np.zeros(n, dtype=np.int32)
    if n < k:
        raise ValueError("cannot split fewer nodes than parts")
    rng = np.random.default_rng(seed)

    adj = _adjacency_from_csr(csr)
    weights = np.ones(n, dtype=np.float64)
    levels: List[np.ndarray] = []  # coarse_id maps per level
    adjs = [adj]
    weight_stack = [weights]
    while len(adjs[-1]) > max(coarsest_size, 2 * k):
        coarse_id, size = _heavy_edge_matching(adjs[-1], weight_stack[-1], rng)
        if size >= len(adjs[-1]):  # matching stalled; stop coarsening
            break
        coarse_adj, coarse_weights = _coarsen(
            adjs[-1], weight_stack[-1], coarse_id, size
        )
        levels.append(coarse_id)
        adjs.append(coarse_adj)
        weight_stack.append(coarse_weights)

    labels = _grow_initial(adjs[-1], weight_stack[-1], k, rng)
    _refine(adjs[-1], weight_stack[-1], labels, k, balance)
    # Project back through the levels, refining after each projection.
    for level in range(len(levels) - 1, -1, -1):
        labels = labels[levels[level]]
        _refine(adjs[level], weight_stack[level], labels, k, balance)
    return labels.astype(np.int32)


def hash_partition(csr: CSRGraph, k: int) -> np.ndarray:
    """Node-id modulo partitioning (the cheap scheme, for comparison)."""
    return (csr.node_ids % k).astype(np.int32)


def edge_cut(csr: CSRGraph, labels: np.ndarray) -> int:
    """Number of adjacency entries crossing partitions (directed rows)."""
    total = 0
    for u in range(csr.num_nodes):
        row = csr.neighbors_of(u)
        if row.size:
            total += int((labels[row] != labels[u]).sum())
    return total


def partition_loads(labels: np.ndarray, k: int) -> np.ndarray:
    """Nodes per part."""
    return np.bincount(labels, minlength=k)
