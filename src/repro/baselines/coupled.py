"""Coupled (non-decoupled) distributed graph systems for Figure 7.

Both comparison systems colocate query processing with graph storage
(Figure 1 of the paper): each server owns one partition and a fixed routing
table maps a query to the server owning its query node. Queries execute as
cluster-wide jobs, one at a time — the execution model of Giraph-style BSP
and PowerGraph-style GAS engines, and the reason their online-query
throughput is low despite sophisticated partitioning.

* :class:`SedgeSystem` — SEDGE/Giraph: vertex-centric bulk-synchronous
  supersteps (one per hop) with a global barrier each, cross-partition
  messages along cut edges, METIS-style partitioning (+ optional
  workload-driven re-partitioning).
* :class:`PowerGraphSystem` — PowerGraph: asynchronous gather-apply-scatter
  over a greedy vertex cut; communication follows the replication factor,
  no global barrier.

Execution produces the same :class:`~repro.core.metrics.WorkloadReport` as
:class:`~repro.core.cluster.GRoutingCluster`, so benchmark tables treat all
systems uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.assets import GraphAssets
from ..core.metrics import QueryRecord, QueryStats, WorkloadReport
from ..core.queries import (
    NeighborAggregationQuery,
    Query,
    RandomWalkQuery,
    ReachabilityQuery,
    query_class,
)
from ..costs import ETHERNET, NetworkModel
from .metis_like import multilevel_partition
from .vertex_cut import VertexCut, greedy_vertex_cut


@dataclass(frozen=True)
class CoupledCosts:
    """Timing knobs for the coupled systems (same time unit: seconds).

    Calibrated so per-query times sit a small factor above gRouting's —
    the paper's throughput gap (5-10x over Ethernet) comes mostly from the
    coupled systems executing queries as serialized cluster-wide jobs.
    """

    per_node_compute: float = 0.5e-6  # same CPU model as the query processors
    message_bytes: int = 64  # per cross-partition edge message
    job_setup: float = 30.0e-6  # job injection + scheduling
    barrier_base: float = 30.0e-6  # BSP: global superstep barrier
    barrier_per_server: float = 2.0e-6  # BSP: barrier grows with cluster
    gas_hop_overhead: float = 12.0e-6  # GAS: async coordination per hop
    replica_sync_bytes: int = 32  # GAS: per extra replica per touched node
    network: NetworkModel = ETHERNET


class _CoupledBase:
    """Shared machinery: fixed owner routing + per-hop frontier walk."""

    name = "coupled"

    def __init__(self, assets: GraphAssets, num_servers: int,
                 costs: Optional[CoupledCosts] = None) -> None:
        if num_servers < 1:
            raise ValueError("need at least one server")
        self.assets = assets
        self.num_servers = num_servers
        self.costs = costs or CoupledCosts()

    # -- subclass hooks ----------------------------------------------------
    def _hop_cost(self, frontier: np.ndarray, neighbors: np.ndarray,
                  neighbor_sources: np.ndarray) -> float:
        raise NotImplementedError

    def _setup_cost(self) -> float:
        return self.costs.job_setup

    # -- query execution ------------------------------------------------------
    def _frontier_walk(self, source: int, hops: int, csr) -> tuple[float, int]:
        """Time and nodes for an h-hop frontier expansion from ``source``."""
        elapsed = self._setup_cost()
        visited = np.zeros(csr.num_nodes, dtype=bool)
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)
        total = 0
        for _hop in range(hops):
            if frontier.size == 0:
                break
            counts = csr.indptr[frontier + 1] - csr.indptr[frontier]
            neighbors = csr.gather_neighbors(frontier)
            neighbor_sources = np.repeat(frontier, counts)
            elapsed += self._hop_cost(frontier, neighbors, neighbor_sources)
            if neighbors.size == 0:
                break
            fresh = np.unique(neighbors[~visited[neighbors]])
            visited[fresh] = True
            total += int(fresh.size)
            elapsed += self.costs.per_node_compute * fresh.size
            frontier = fresh
        return elapsed, total

    def _execute(self, query: Query) -> tuple[float, QueryStats]:
        assets = self.assets
        stats = QueryStats()
        source = assets.compact.get(query.node)
        if source is None:
            return self._setup_cost(), stats
        if isinstance(query, NeighborAggregationQuery):
            elapsed, total = self._frontier_walk(source, query.hops,
                                                 assets.csr_both)
            stats.nodes_touched = total
            stats.result = total
        elif isinstance(query, RandomWalkQuery):
            # Vertex-centric engines pay a full coordination round per step.
            rng = np.random.default_rng((query.seed, query.node))
            csr = assets.csr_both
            elapsed = self._setup_cost()
            current = source
            for _step in range(query.steps):
                row = csr.neighbors_of(current)
                one = np.array([current], dtype=np.int64)
                elapsed += self._hop_cost(one, row, np.repeat(one, row.size))
                elapsed += self.costs.per_node_compute
                if row.size == 0 or rng.random() < query.restart_prob:
                    current = source
                else:
                    current = int(row[rng.integers(0, row.size)])
                stats.nodes_touched += 1
            stats.result = query.steps
        elif isinstance(query, ReachabilityQuery):
            # Forward-only BFS: vertex-centric traversal activates out-
            # neighbors until the target is seen or the budget runs out.
            target = assets.compact.get(query.target)
            csr = assets.csr_out
            elapsed = self._setup_cost()
            found = target == source
            if target is not None and not found:
                visited = np.zeros(csr.num_nodes, dtype=bool)
                visited[source] = True
                frontier = np.array([source], dtype=np.int64)
                for _hop in range(query.hops):
                    if frontier.size == 0 or found:
                        break
                    counts = csr.indptr[frontier + 1] - csr.indptr[frontier]
                    neighbors = csr.gather_neighbors(frontier)
                    sources = np.repeat(frontier, counts)
                    elapsed += self._hop_cost(frontier, neighbors, sources)
                    if neighbors.size == 0:
                        break
                    fresh = np.unique(neighbors[~visited[neighbors]])
                    visited[fresh] = True
                    stats.nodes_touched += int(fresh.size)
                    elapsed += self.costs.per_node_compute * fresh.size
                    if fresh.size and visited[target]:
                        found = True
                    frontier = fresh
            stats.result = bool(found)
        else:
            raise TypeError(f"unsupported query type: {type(query).__name__}")
        return elapsed, stats

    def run(self, queries: Sequence[Query]) -> WorkloadReport:
        """Execute ``queries`` as serialized cluster-wide jobs."""
        records: List[QueryRecord] = []
        now = 0.0
        for query in queries:
            elapsed, stats = self._execute(query)
            records.append(
                QueryRecord(
                    query_id=query.query_id,
                    kind=type(query).__name__,
                    node=query.node,
                    intended_processor=self._owner(query.node),
                    processor=self._owner(query.node),
                    stolen=False,
                    decision_time=0.0,
                    enqueued_at=0.0,
                    started_at=now,
                    finished_at=now + elapsed,
                    stats=stats,
                    routed_via=self.name,
                    query_class=query_class(query),
                )
            )
            now += elapsed
        return WorkloadReport(
            records=records,
            makespan=now,
            num_processors=self.num_servers,
            num_storage_servers=self.num_servers,
            routing=self.name,
        )

    def _owner(self, node: int) -> int:
        raise NotImplementedError


class SedgeSystem(_CoupledBase):
    """SEDGE/Giraph-like BSP system over a METIS-style partitioning."""

    name = "sedge"

    def __init__(
        self,
        assets: GraphAssets,
        num_servers: int = 12,
        costs: Optional[CoupledCosts] = None,
        partition_labels: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(assets, num_servers, costs)
        if partition_labels is None:
            partition_labels = multilevel_partition(
                assets.graph, num_servers, seed=seed, csr=assets.csr_both
            )
        self.labels = partition_labels

    def _owner(self, node: int) -> int:
        idx = self.assets.compact.get(node)
        if idx is None:
            return node % self.num_servers
        return int(self.labels[idx])

    def _hop_cost(self, _frontier: np.ndarray, neighbors: np.ndarray,
                  neighbor_sources: np.ndarray) -> float:
        costs = self.costs
        barrier = costs.barrier_base + costs.barrier_per_server * self.num_servers
        if neighbors.size == 0:
            return barrier
        crossing = int(
            (self.labels[neighbor_sources] != self.labels[neighbors]).sum()
        )
        message_time = costs.network.transfer_time(
            crossing * costs.message_bytes
        ) if crossing else 0.0
        return barrier + message_time


class PowerGraphSystem(_CoupledBase):
    """PowerGraph-like asynchronous GAS system over a greedy vertex cut."""

    name = "powergraph"

    def __init__(
        self,
        assets: GraphAssets,
        num_servers: int = 12,
        costs: Optional[CoupledCosts] = None,
        cut: Optional[VertexCut] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(assets, num_servers, costs)
        if cut is None:
            cut = greedy_vertex_cut(assets.graph, num_servers, seed=seed)
        self.cut = cut
        # Per-compact-node replica counts drive sync volume.
        self.replica_counts = np.array(
            [
                len(cut.replicas.get(int(nid), (0,)))
                for nid in assets.node_ids
            ],
            dtype=np.int64,
        )

    def _owner(self, node: int) -> int:
        return self.cut.master_of(node) % self.num_servers

    def _hop_cost(self, frontier: np.ndarray, _neighbors: np.ndarray,
                  _neighbor_sources: np.ndarray) -> float:
        costs = self.costs
        extra_replicas = int(
            np.maximum(self.replica_counts[frontier] - 1, 0).sum()
        )
        sync_time = costs.network.transfer_time(
            extra_replicas * costs.replica_sync_bytes
        ) if extra_replicas else 0.0
        return costs.gas_hop_overhead + sync_time
