"""Per-processor exponential moving average of routed query coordinates.

Embed routing infers each processor's cache contents from the history of
queries sent to it (§3.4.2): the router keeps one EMA point per processor
(Eq. 5) and routes to the processor whose EMA is nearest the query node's
coordinates (Eq. 6). LRU eviction favors recent entries, which is why an
*exponential* average matches the cache state well.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ProcessorEMATracker:
    """EMA of query coordinates, one mean point per processor."""

    def __init__(
        self,
        num_processors: int,
        dim: int,
        alpha: float = 0.5,
        bounds: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> None:
        """``bounds`` is an optional ``(2, dim)`` array of (low, high) used
        to draw the initial means uniformly at random (the paper
        initialises means uniformly at random)."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if num_processors < 1:
            raise ValueError("need at least one processor")
        self.alpha = alpha
        rng = np.random.default_rng(seed)
        if bounds is None:
            low, high = -1.0, 1.0
            self.means = rng.uniform(low, high, size=(num_processors, dim))
        else:
            low, high = bounds[0], bounds[1]
            self.means = rng.uniform(
                low[None, :], high[None, :], size=(num_processors, dim)
            )

    @property
    def num_processors(self) -> int:
        return self.means.shape[0]

    @property
    def dim(self) -> int:
        return self.means.shape[1]

    def add_processor(self) -> int:
        """Append a mean for a processor joining the cluster.

        Deterministic: the joiner starts at the centroid of the existing
        means — it has routed nothing yet, so the population center is
        the least-wrong summary, and Eq. 5 pulls the mean onto its real
        traffic within a few dispatches (the cold-cache warmup the
        topology layer accounts for). Returns the new processor's index.
        """
        centroid = self.means.mean(axis=0)
        self.means = np.vstack([self.means, centroid[None, :]])
        return self.num_processors - 1

    def update(self, processor: int, coords: np.ndarray) -> None:
        """Eq. 5: mean(p) <- alpha * mean(p) + (1 - alpha) * coords(v)."""
        self.means[processor] = (
            self.alpha * self.means[processor] + (1.0 - self.alpha) * coords
        )

    def distances(self, coords: np.ndarray) -> np.ndarray:
        """Eq. 6: L2 distance from ``coords`` to every processor's mean."""
        return np.linalg.norm(self.means - coords[None, :], axis=1)

    @classmethod
    def for_embedding(
        cls,
        coords: np.ndarray,
        num_processors: int,
        alpha: float = 0.5,
        seed: int = 0,
    ) -> "ProcessorEMATracker":
        """Tracker with initial means drawn inside the embedding's bounding box."""
        bounds = np.stack([coords.min(axis=0), coords.max(axis=0)])
        return cls(
            num_processors,
            coords.shape[1],
            alpha=alpha,
            bounds=bounds,
            seed=seed,
        )
