"""Simplex Downhill (Nelder–Mead) minimizers.

The paper embeds the graph by minimizing relative distance error "by many
off-the-shelf techniques, e.g., the Simplex Downhill algorithm that we apply
in this work" (§3.4.2). Two implementations live here:

* :func:`nelder_mead` — the textbook scalar algorithm, used for landmark
  placement (few points) and for embedding single new nodes on updates;
* :func:`batch_nelder_mead` — a vectorised variant that advances one
  independent simplex *per problem* simultaneously with numpy, so embedding
  every node of a 10^4–10^5-node graph takes seconds rather than hours.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

# Standard Nelder–Mead coefficients.
ALPHA = 1.0  # reflection
GAMMA = 2.0  # expansion
RHO = 0.5  # contraction
SIGMA = 0.5  # shrink


def _initial_simplex(x0: np.ndarray, step: float) -> np.ndarray:
    """Axis-aligned start simplex around ``x0`` — shape ``(D+1, D)``."""
    dim = x0.shape[0]
    simplex = np.tile(x0, (dim + 1, 1))
    for i in range(dim):
        delta = step if x0[i] == 0 else step * max(abs(x0[i]), 1.0)
        simplex[i + 1, i] += delta
    return simplex


def nelder_mead(
    func: Callable[[np.ndarray], float],
    x0: np.ndarray,
    max_iter: int = 200,
    xtol: float = 1e-6,
    ftol: float = 1e-9,
    step: float = 0.5,
) -> Tuple[np.ndarray, float]:
    """Minimize ``func`` from ``x0``; returns ``(best_x, best_f)``."""
    x0 = np.asarray(x0, dtype=np.float64)
    simplex = _initial_simplex(x0, step)
    values = np.array([func(x) for x in simplex])

    for _ in range(max_iter):
        order = np.argsort(values, kind="stable")
        simplex, values = simplex[order], values[order]
        if (
            np.abs(values[-1] - values[0]) <= ftol
            and np.abs(simplex[1:] - simplex[0]).max() <= xtol
        ):
            break

        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]
        reflected = centroid + ALPHA * (centroid - worst)
        f_reflected = func(reflected)

        if f_reflected < values[0]:
            expanded = centroid + GAMMA * (reflected - centroid)
            f_expanded = func(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
        elif f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
        else:
            if f_reflected < values[-1]:
                contracted = centroid + RHO * (reflected - centroid)
            else:
                contracted = centroid + RHO * (worst - centroid)
            f_contracted = func(contracted)
            if f_contracted < min(f_reflected, values[-1]):
                simplex[-1], values[-1] = contracted, f_contracted
            else:  # shrink toward the best vertex
                simplex[1:] = simplex[0] + SIGMA * (simplex[1:] - simplex[0])
                values[1:] = np.array([func(x) for x in simplex[1:]])

    best = int(np.argmin(values))
    return simplex[best], float(values[best])


def batch_nelder_mead(
    func: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iter: int = 150,
    ftol: float = 1e-9,
    xtol: float = 1e-6,
    step: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimize N independent D-dimensional problems simultaneously.

    ``func`` maps an ``(N, D)`` batch of points to ``(N,)`` objective
    values, where row ``i`` belongs to problem ``i``; ``x0`` is ``(N, D)``.
    Every problem runs the standard Nelder–Mead update, selected per row by
    boolean masks. Returns ``(best_points (N, D), best_values (N,))``.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    n, dim = x0.shape
    # simplex: (N, D+1, D); values: (N, D+1)
    simplex = np.repeat(x0[:, None, :], dim + 1, axis=1)
    for i in range(dim):
        delta = np.where(
            x0[:, i] == 0, step, step * np.maximum(np.abs(x0[:, i]), 1.0)
        )
        simplex[:, i + 1, i] += delta
    values = np.stack(
        [func(simplex[:, v, :]) for v in range(dim + 1)], axis=1
    )

    rows = np.arange(n)
    for _ in range(max_iter):
        order = np.argsort(values, axis=1, kind="stable")
        values = np.take_along_axis(values, order, axis=1)
        simplex = np.take_along_axis(simplex, order[:, :, None], axis=1)

        value_spread = np.abs(values[:, -1] - values[:, 0])
        x_spread = np.abs(simplex - simplex[:, 0:1, :]).max(axis=(1, 2))
        # A problem is done only when both values and positions collapsed;
        # checking values alone stalls on simplices straddling an optimum.
        active = (value_spread > ftol) | (x_spread > xtol)
        if not active.any():
            break

        centroid = simplex[:, :-1, :].mean(axis=1)  # (N, D)
        worst = simplex[:, -1, :]
        reflected = centroid + ALPHA * (centroid - worst)
        f_reflected = func(reflected)

        # Candidate replacement point/value per row, refined branch by branch.
        new_point = simplex[:, -1, :].copy()
        new_value = values[:, -1].copy()

        better_than_best = f_reflected < values[:, 0]
        middle = (~better_than_best) & (f_reflected < values[:, -2])

        # Expansion (only meaningful where reflection beat the best).
        expanded = centroid + GAMMA * (reflected - centroid)
        f_expanded = func(expanded)
        take_expanded = better_than_best & (f_expanded < f_reflected)
        take_reflected = (better_than_best & ~take_expanded) | middle

        # Contraction for the remaining rows.
        needs_contract = ~(better_than_best | middle)
        outside = needs_contract & (f_reflected < values[:, -1])
        contract_base = np.where(outside[:, None], reflected, worst)
        contracted = centroid + RHO * (contract_base - centroid)
        f_contracted = func(contracted)
        take_contracted = needs_contract & (
            f_contracted < np.minimum(f_reflected, values[:, -1])
        )
        needs_shrink = needs_contract & ~take_contracted

        for mask, point, value in (
            (take_expanded, expanded, f_expanded),
            (take_reflected, reflected, f_reflected),
            (take_contracted, contracted, f_contracted),
        ):
            use = mask & active
            new_point[use] = point[use]
            new_value[use] = value[use]

        replace = active & ~needs_shrink
        simplex[replace, -1, :] = new_point[replace]
        values[replace, -1] = new_value[replace]

        shrink = active & needs_shrink
        if shrink.any():
            best = simplex[shrink, 0:1, :]
            simplex[shrink, 1:, :] = best + SIGMA * (
                simplex[shrink, 1:, :] - best
            )
            for v in range(1, dim + 1):
                values[shrink, v] = func(simplex[:, v, :])[shrink]

    order = np.argsort(values, axis=1, kind="stable")
    best_idx = order[:, 0]
    return simplex[rows, best_idx, :], values[rows, best_idx]
