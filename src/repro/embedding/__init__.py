"""Graph embedding for smart routing (Simplex Downhill, LMDS, EMA)."""

from .embedder import (
    GraphEmbedding,
    classical_mds,
    embed_landmarks,
    lmds_triangulate,
)
from .ema import ProcessorEMATracker
from .simplex import batch_nelder_mead, nelder_mead

__all__ = [
    "GraphEmbedding",
    "ProcessorEMATracker",
    "batch_nelder_mead",
    "classical_mds",
    "embed_landmarks",
    "lmds_triangulate",
    "nelder_mead",
]
