"""Graph embedding into a low-dimensional Euclidean space (§3.4.2).

Pipeline (exactly the paper's): select landmarks, BFS their distances,
place the landmarks by minimizing pairwise *relative* distance error
(Eq. 4) with Simplex Downhill, then place every other node by minimizing
its relative error against all landmarks. Node placement uses the
vectorised batch Nelder–Mead so whole graphs embed in seconds; a
Landmark-MDS linear triangulation provides both the initial guess and a
fast-path alternative (``method="lmds"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..landmarks.distances import UNREACHABLE, LandmarkDistances
from ..landmarks.selection import select_landmarks
from .simplex import batch_nelder_mead, nelder_mead

_CHUNK = 4096  # nodes embedded per batch (bounds peak memory)


def _finite_pair_matrix(pair_matrix: np.ndarray) -> np.ndarray:
    """Hop distances with UNREACHABLE mapped to (max finite + 2)."""
    out = pair_matrix.astype(np.float64).copy()
    unreachable = out == UNREACHABLE
    finite_max = out[~unreachable].max() if (~unreachable).any() else 1.0
    out[unreachable] = finite_max + 2.0
    return out


def classical_mds(pair_matrix: np.ndarray, dim: int) -> np.ndarray:
    """Classical (Torgerson) MDS of a distance matrix — ``(L, dim)``."""
    d = _finite_pair_matrix(pair_matrix)
    num = d.shape[0]
    squared = d**2
    centering = np.eye(num) - np.full((num, num), 1.0 / num)
    b = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:dim]
    values = np.clip(eigenvalues[order], 0.0, None)
    coords = eigenvectors[:, order] * np.sqrt(values)[None, :]
    if coords.shape[1] < dim:  # rank-deficient: pad with zeros
        pad = np.zeros((num, dim - coords.shape[1]))
        coords = np.hstack([coords, pad])
    return coords


def _pairwise_relative_error(coords: np.ndarray, target: np.ndarray) -> float:
    """Mean Eq. 4 error over all landmark pairs (diagonal excluded)."""
    diff = coords[:, None, :] - coords[None, :, :]
    euclidean = np.sqrt((diff**2).sum(axis=2))
    mask = ~np.eye(len(coords), dtype=bool)
    return float(
        (np.abs(target - euclidean)[mask] / target[mask]).mean()
    )


def embed_landmarks(
    pair_matrix: np.ndarray,
    dim: int,
    rounds: int = 3,
    nm_iterations: int = 60,
) -> np.ndarray:
    """Place landmarks: MDS initialisation + Simplex Downhill refinement.

    Refinement is coordinate descent: each round re-optimises every
    landmark's ``dim`` coordinates against the others with Nelder–Mead,
    minimizing the summed relative error of Eq. 4.
    """
    target = _finite_pair_matrix(pair_matrix)
    np.fill_diagonal(target, 1.0)  # placeholder; diagonal never used
    coords = classical_mds(pair_matrix, dim)
    num = coords.shape[0]
    if num < 2:
        return coords

    others_mask = ~np.eye(num, dtype=bool)
    for _ in range(rounds):
        for i in range(num):
            other_coords = coords[others_mask[i]]
            other_target = target[i, others_mask[i]]

            def objective(x: np.ndarray) -> float:
                dist = np.sqrt(((other_coords - x) ** 2).sum(axis=1))
                return float(
                    (np.abs(other_target - dist) / other_target).sum()
                )

            best, _value = nelder_mead(
                objective, coords[i], max_iter=nm_iterations, step=0.25
            )
            coords[i] = best
    return coords


def lmds_triangulate(
    landmark_coords: np.ndarray,
    node_landmark_dists: np.ndarray,
) -> np.ndarray:
    """Landmark-MDS placement of all nodes at once (least squares).

    ``node_landmark_dists`` is ``(L, n)`` hop distances (UNREACHABLE
    allowed). Linearises ``||x - l_i||^2 - ||x - l_0||^2`` into a common
    ``(L-1, dim)`` system solved for every node simultaneously.
    """
    dists = node_landmark_dists.astype(np.float64).copy()
    unreachable = dists == UNREACHABLE
    finite_max = dists[~unreachable].max() if (~unreachable).any() else 1.0
    dists[unreachable] = finite_max + 2.0

    l0 = landmark_coords[0]
    rest = landmark_coords[1:]
    a = 2.0 * (rest - l0)  # (L-1, dim)
    norms = (rest**2).sum(axis=1) - (l0**2).sum()  # (L-1,)
    b = norms[:, None] - (dists[1:] ** 2 - dists[0] ** 2)  # (L-1, n)
    # Truncated-SVD solve: when the landmark configuration is nearly rank
    # deficient (few landmarks, or an intrinsically low-dimensional metric),
    # unregularised least squares amplifies noise into huge coordinates.
    solution, *_ = np.linalg.lstsq(a, b, rcond=0.05)  # (dim, n)
    coords = solution.T
    # Nodes live among the landmarks; clamp to a padded bounding box so a
    # badly conditioned node cannot start the refinement at infinity.
    low = landmark_coords.min(axis=0)
    high = landmark_coords.max(axis=0)
    margin = 0.5 * (high - low) + 1.0
    return np.clip(coords, low - margin, high + margin)


def _node_objective_factory(
    landmark_coords: np.ndarray,
    dists_chunk: np.ndarray,
    valid_chunk: np.ndarray,
):
    """Batch objective: mean relative error of a chunk of nodes.

    ``dists_chunk`` is ``(N, L)`` float; ``valid_chunk`` ``(N, L)`` bool
    marking landmark distances that exist and are nonzero.
    """
    safe = np.where(valid_chunk, dists_chunk, 1.0)
    weight = valid_chunk.astype(np.float64)
    denom = np.maximum(weight.sum(axis=1), 1.0)

    def objective(points: np.ndarray) -> np.ndarray:
        diff = points[:, None, :] - landmark_coords[None, :, :]
        euclidean = np.sqrt((diff**2).sum(axis=2))  # (N, L)
        err = np.abs(safe - euclidean) / safe * weight
        return err.sum(axis=1) / denom

    return objective


class GraphEmbedding:
    """Node coordinates preserving hop distances (approximately)."""

    def __init__(
        self,
        node_ids: np.ndarray,
        coords: np.ndarray,
        landmark_node_ids: List[int],
        landmark_coords: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.coords = coords.astype(np.float64)
        self.landmark_node_ids = landmark_node_ids
        self.landmark_coords = landmark_coords.astype(np.float64)
        self._row: Dict[int, int] = {int(n): i for i, n in enumerate(node_ids)}
        self._extra: Dict[int, np.ndarray] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def embed(
        cls,
        csr: CSRGraph,
        dim: int = 10,
        num_landmarks: int = 96,
        min_separation: int = 3,
        method: str = "simplex",
        landmark_distances: Optional[LandmarkDistances] = None,
        nm_iterations: int = 120,
    ) -> "GraphEmbedding":
        """Embed every node of ``csr`` (bi-directed view expected).

        ``method="simplex"`` refines the Landmark-MDS initialisation with
        batch Nelder–Mead (the paper's algorithm); ``method="lmds"`` stops
        at the linear triangulation (fast path, used for ablation).
        """
        if method not in ("simplex", "lmds"):
            raise ValueError(f"unknown embedding method: {method!r}")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if landmark_distances is None:
            landmarks = select_landmarks(csr, num_landmarks, min_separation)
            landmark_distances = LandmarkDistances.compute(csr, landmarks)
        ld = landmark_distances
        landmark_coords = embed_landmarks(ld.pair_matrix(), dim)
        coords = lmds_triangulate(landmark_coords, ld.matrix)

        if method == "simplex":
            dists = ld.matrix.T.astype(np.float64)  # (n, L)
            valid = (dists != UNREACHABLE) & (dists > 0)
            for start in range(0, coords.shape[0], _CHUNK):
                stop = min(start + _CHUNK, coords.shape[0])
                objective = _node_objective_factory(
                    landmark_coords, dists[start:stop], valid[start:stop]
                )
                refined, _values = batch_nelder_mead(
                    objective, coords[start:stop], max_iter=nm_iterations
                )
                coords[start:stop] = refined
        # Landmarks sit exactly at their optimised positions.
        for row, landmark in enumerate(ld.landmarks):
            coords[landmark] = landmark_coords[row]

        landmark_node_ids = [int(csr.node_ids[l]) for l in ld.landmarks]
        return cls(csr.node_ids, coords, landmark_node_ids, landmark_coords)

    # -- lookups ------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.coords.shape[1]

    def knows(self, node_id: int) -> bool:
        return node_id in self._row or node_id in self._extra

    def coordinates_of(self, node_id: int) -> Optional[np.ndarray]:
        row = self._row.get(node_id)
        if row is not None:
            return self.coords[row]
        return self._extra.get(node_id)

    def euclidean(self, node_a: int, node_b: int) -> float:
        """Embedded distance between two nodes (Eq. 6's norm)."""
        a = self.coordinates_of(node_a)
        b = self.coordinates_of(node_b)
        if a is None or b is None:
            raise KeyError("node not embedded")
        return float(np.linalg.norm(a - b))

    def storage_bytes(self) -> int:
        """Router-side footprint: O(nD) coordinates."""
        extra = sum(v.nbytes for v in self._extra.values())
        return self.coords.nbytes + extra

    # -- incremental maintenance ---------------------------------------------
    def add_node(self, node_id: int, landmark_dist_vector: np.ndarray) -> None:
        """Embed a new node given its distances to the landmarks.

        Runs the scalar Simplex Downhill the paper prescribes for node
        additions; unreachable entries (inf or UNREACHABLE) are ignored.
        """
        if self.knows(node_id):
            raise ValueError(f"node {node_id} already embedded")
        vector = np.asarray(landmark_dist_vector, dtype=np.float64).copy()
        vector[vector == UNREACHABLE] = np.inf
        valid = np.isfinite(vector) & (vector > 0)
        if not valid.any():
            # No landmark information: place at the landmark centroid.
            self._extra[node_id] = self.landmark_coords.mean(axis=0)
            return
        anchors = self.landmark_coords[valid]
        targets = vector[valid]

        def objective(x: np.ndarray) -> float:
            dist = np.sqrt(((anchors - x) ** 2).sum(axis=1))
            return float((np.abs(targets - dist) / targets).mean())

        # Initialise from the triangulation against the valid anchors.
        start = anchors.mean(axis=0)
        best, _value = nelder_mead(objective, start, max_iter=150, step=0.5)
        self._extra[node_id] = best

    def add_nodes_lmds(self, node_ids: Sequence[int],
                       vectors: np.ndarray) -> None:
        """Batch-embed new nodes via LMDS triangulation.

        ``vectors`` is ``(len(node_ids), L)`` landmark distances (inf or
        UNREACHABLE allowed). Much faster than per-node Simplex Downhill;
        used when thousands of nodes arrive between offline rebuilds
        (the Fig 10 robustness experiment).
        """
        if len(node_ids) == 0:
            return
        dists = np.asarray(vectors, dtype=np.float64).T.copy()  # (L, n_new)
        dists[~np.isfinite(dists)] = UNREACHABLE
        coords = lmds_triangulate(self.landmark_coords, dists)
        for node_id, point in zip(node_ids, coords, strict=True):
            if self.knows(node_id):
                raise ValueError(f"node {node_id} already embedded")
            self._extra[int(node_id)] = point

    def refresh_node(
        self,
        node_id: int,
        neighbor_coords: Sequence[np.ndarray],
        blend: float = 0.5,
    ) -> None:
        """Incrementally (re-)place one node from its neighbors' coordinates.

        The live-update refresh path: a node is (approximately) one hop
        from each neighbor, so the centroid of the embedded neighbors is
        the least-squares one-hop placement — one Jacobi relaxation step
        in embedding space, no landmark BFS required. New nodes take the
        centroid outright (falling back to the landmark centroid when no
        neighbor is embedded yet); already-embedded nodes blend
        ``blend`` of the centroid into their existing coordinates, which
        damps oscillation when a whole dirty region refreshes at once.
        Drift against true hop distances accumulates across refreshes and
        is cleared by periodic full re-embedding, mirroring the landmark
        index's rebuild story.
        """
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must lie in [0, 1]")
        points = [c for c in neighbor_coords if c is not None]
        centroid = (
            np.mean(np.stack(points), axis=0) if points else None
        )
        row = self._row.get(node_id)
        if row is None and node_id not in self._extra:
            if centroid is None:
                centroid = self.landmark_coords.mean(axis=0)
            self._extra[node_id] = centroid
            return
        if centroid is None:
            return  # no information; keep the existing placement
        old = self.coords[row] if row is not None else self._extra[node_id]
        updated = (1.0 - blend) * old + blend * centroid
        if row is not None:
            self.coords[row] = updated
        else:
            self._extra[node_id] = updated

    def clone(self) -> "GraphEmbedding":
        """Independent copy (shared immutable node ids, copied coords).

        The live-update experiments run several services from identical
        starting preprocessing; cloning skips re-running the embedding.
        """
        copy = GraphEmbedding(
            self.node_ids,
            self.coords,  # the constructor astype() call copies
            list(self.landmark_node_ids),
            self.landmark_coords,
        )
        copy._extra = {
            node: vec.copy() for node, vec in self._extra.items()
        }
        return copy

    # -- evaluation -------------------------------------------------------------
    def relative_errors(
        self,
        csr: CSRGraph,
        pairs: Sequence[Tuple[int, int]],
        max_hops: int = 8,
    ) -> np.ndarray:
        """Eq. 4 relative error for sampled node-id pairs (Fig 12a).

        Pairs whose true distance is 0 or exceeds ``max_hops`` are skipped.
        """
        errors: List[float] = []
        by_source: Dict[int, List[int]] = {}
        for a, b in pairs:
            by_source.setdefault(a, []).append(b)
        for a, targets in by_source.items():
            dist = csr.bfs_distances([csr.index_of(a)], max_hops=max_hops)
            for b in targets:
                true = int(dist[csr.index_of(b)])
                if true <= 0:
                    continue
                embedded = self.euclidean(a, b)
                errors.append(abs(true - embedded) / true)
        return np.array(errors)
