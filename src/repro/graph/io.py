"""Graph serialization: edge lists and compact binary (npz) formats."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .digraph import Graph

PathLike = Union[str, os.PathLike]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``u<TAB>v`` lines, one per directed edge, sorted for stability."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u in sorted(graph.nodes()):
            for v in sorted(graph.out_neighbors(u)):
                handle.write(f"{u}\t{v}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Read a ``u<TAB>v`` edge list; ``#`` lines are comments."""
    graph = Graph()
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed edge line: {line!r}")
            graph.add_edge(int(parts[0]), int(parts[1]))
    return graph


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save as flat numpy arrays (sources, targets, isolated nodes)."""
    edges = list(graph.edges())
    sources = np.array([u for u, _ in edges], dtype=np.int64)
    targets = np.array([v for _, v in edges], dtype=np.int64)
    touched = set(sources.tolist()) | set(targets.tolist())
    isolated = np.array(
        sorted(node for node in graph.nodes() if node not in touched),
        dtype=np.int64,
    )
    np.savez_compressed(path, sources=sources, targets=targets, isolated=isolated)


def load_npz(path: PathLike) -> Graph:
    """Inverse of :func:`save_npz`."""
    data = np.load(path)
    graph = Graph()
    for node in data["isolated"]:
        graph.add_node(int(node))
    for u, v in zip(data["sources"], data["targets"], strict=True):
        graph.add_edge(int(u), int(v))
    return graph
