"""Pure-Python traversal primitives on :class:`Graph`.

These are the reference implementations of the paper's three h-hop query
kernels (§2.2). The simulated query processors use the same logic but fetch
adjacency from the storage tier; these functions operate directly on a local
graph and serve as ground truth in tests and as building blocks for the
workload generator.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Set

from .digraph import Graph, NodeId

Direction = str  # "out", "in", or "both"


def _adjacency(graph: Graph, direction: Direction) -> Callable[[NodeId], Iterable[NodeId]]:
    if direction == "out":
        return graph.out_neighbors
    if direction == "in":
        return graph.in_neighbors
    if direction == "both":
        return graph.neighbors
    raise ValueError(f"bad direction: {direction!r}")


def bfs_distances(
    graph: Graph,
    source: NodeId,
    max_hops: Optional[int] = None,
    direction: Direction = "both",
) -> Dict[NodeId, int]:
    """Hop distance from ``source`` to every reachable node (within bound)."""
    adjacency = _adjacency(graph, direction)
    dist: Dict[NodeId, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        hop = dist[node]
        if max_hops is not None and hop >= max_hops:
            continue
        for neighbor in adjacency(node):
            if neighbor not in dist:
                dist[neighbor] = hop + 1
                frontier.append(neighbor)
    return dist


def k_hop_neighborhood(
    graph: Graph,
    source: NodeId,
    hops: int,
    direction: Direction = "both",
) -> Set[NodeId]:
    """N_h(source): nodes within ``hops`` hops, excluding the source."""
    dist = bfs_distances(graph, source, max_hops=hops, direction=direction)
    return {node for node, d in dist.items() if 0 < d <= hops}


def per_hop_frontiers(
    graph: Graph,
    source: NodeId,
    hops: int,
    direction: Direction = "both",
) -> List[List[NodeId]]:
    """Nodes first reached at each hop: ``[hop1, hop2, ...]``."""
    dist = bfs_distances(graph, source, max_hops=hops, direction=direction)
    frontiers: List[List[NodeId]] = [[] for _ in range(hops)]
    for node, d in dist.items():
        if 0 < d <= hops:
            frontiers[d - 1].append(node)
    return frontiers


def neighbor_aggregation(
    graph: Graph,
    source: NodeId,
    hops: int,
    label=None,
    direction: Direction = "both",
) -> int:
    """h-hop Neighbor Aggregation (paper query 1).

    Counts nodes within ``hops`` hops; with ``label`` set, counts only
    nodes carrying that label (the "occurrences of a specific label"
    variant).
    """
    neighborhood = k_hop_neighborhood(graph, source, hops, direction)
    if label is None:
        return len(neighborhood)
    return sum(1 for node in neighborhood if graph.node_label(node) == label)


def random_walk_with_restart(
    graph: Graph,
    source: NodeId,
    steps: int,
    restart_prob: float = 0.15,
    rng: Optional[random.Random] = None,
    direction: Direction = "both",
) -> List[NodeId]:
    """h-step Random Walk with Restart (paper query 2).

    Returns the visited node sequence (length ``steps + 1`` including the
    start). At each step the walk jumps to a uniform neighbor, or back to
    the source with probability ``restart_prob``. A node with no neighbors
    forces a restart.
    """
    if rng is None:
        rng = random.Random(0)
    adjacency = _adjacency(graph, direction)
    path = [source]
    current = source
    for _ in range(steps):
        neighbors = list(adjacency(current))
        if not neighbors or rng.random() < restart_prob:
            current = source
        else:
            current = neighbors[rng.randrange(len(neighbors))]
        path.append(current)
    return path


def bidirectional_reachability(
    graph: Graph,
    source: NodeId,
    target: NodeId,
    hops: int,
) -> bool:
    """h-hop Reachability via bidirectional BFS (paper query 3).

    Searches forward (out-edges) from ``source`` and backward (in-edges)
    from ``target``, which is possible because the store keeps both edge
    directions; returns True iff a directed path of length <= ``hops``
    exists.
    """
    if source == target:
        return True
    if hops <= 0:
        return False
    forward_hops = (hops + 1) // 2
    backward_hops = hops // 2
    forward = bfs_distances(graph, source, max_hops=forward_hops, direction="out")
    backward = bfs_distances(graph, target, max_hops=backward_hops, direction="in")
    meet = forward.keys() & backward.keys()
    return any(forward[node] + backward[node] <= hops for node in meet)
