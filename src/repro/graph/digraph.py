"""Labeled directed graph with both in- and out-adjacency.

The paper (§2.1) models a heterogeneous network as a labeled directed graph
and stores, for every node, *both* incoming and outgoing edges so that
queries can traverse in either direction (e.g. ``founded`` implies the
reverse ``founded_by``). This class mirrors that storage decision: adjacency
is kept per direction, and ``neighbors()`` exposes the bi-directed view used
by the smart-routing preprocessing (§3.4).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

NodeId = int
Label = Optional[Hashable]


class GraphError(Exception):
    """Raised on invalid graph mutations or lookups."""


class Graph:
    """A labeled, directed graph.

    Adjacency is stored as ``{node: {neighbor: edge_label}}`` in both
    directions, which gives O(1) edge membership, deduplicated edges, and
    label storage without auxiliary structures.
    """

    def __init__(self) -> None:
        self._out: Dict[NodeId, Dict[NodeId, Label]] = {}
        self._in: Dict[NodeId, Dict[NodeId, Label]] = {}
        self._node_labels: Dict[NodeId, Hashable] = {}
        self._num_edges = 0

    # -- nodes ---------------------------------------------------------------
    def add_node(self, node: NodeId, label: Label = None) -> None:
        """Add ``node`` if absent; set its label if given."""
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}
        if label is not None:
            self._node_labels[node] = label

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every edge incident on it."""
        self._require(node)
        for succ in list(self._out[node]):
            self.remove_edge(node, succ)
        for pred in list(self._in[node]):
            self.remove_edge(pred, node)
        del self._out[node]
        del self._in[node]
        self._node_labels.pop(node, None)

    def has_node(self, node: NodeId) -> bool:
        return node in self._out

    def __contains__(self, node: NodeId) -> bool:
        return node in self._out

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._out)

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    def node_label(self, node: NodeId) -> Label:
        self._require(node)
        return self._node_labels.get(node)

    def set_node_label(self, node: NodeId, label: Hashable) -> None:
        self._require(node)
        self._node_labels[node] = label

    # -- edges ---------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId, label: Label = None) -> bool:
        """Add directed edge ``u -> v``; returns False if it already existed.

        Endpoints are created implicitly, matching the paper's adjacency-list
        ingestion where edges arrive as (source, target) pairs.
        """
        self.add_node(u)
        self.add_node(v)
        if v in self._out[u]:
            if label is not None:
                self._out[u][v] = label
                self._in[v][u] = label
            return False
        self._out[u][v] = label
        self._in[v][u] = label
        self._num_edges += 1
        return True

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"no such edge: {u} -> {v}")
        del self._out[u][v]
        del self._in[v][u]
        self._num_edges -= 1

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._out and v in self._out[u]

    def edge_label(self, u: NodeId, v: NodeId) -> Label:
        if not self.has_edge(u, v):
            raise GraphError(f"no such edge: {u} -> {v}")
        return self._out[u][v]

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        for u, succs in self._out.items():
            for v in succs:
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # -- adjacency -------------------------------------------------------------
    def out_neighbors(self, node: NodeId) -> Iterable[NodeId]:
        self._require(node)
        return self._out[node].keys()

    def in_neighbors(self, node: NodeId) -> Iterable[NodeId]:
        self._require(node)
        return self._in[node].keys()

    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Bi-directed neighbors (out first, then in-only), deduplicated."""
        self._require(node)
        out = self._out[node]
        yield from out
        for pred in self._in[node]:
            if pred not in out:
                yield pred

    def out_degree(self, node: NodeId) -> int:
        self._require(node)
        return len(self._out[node])

    def in_degree(self, node: NodeId) -> int:
        self._require(node)
        return len(self._in[node])

    def degree(self, node: NodeId) -> int:
        """Total degree (in + out), the measure used for landmark selection."""
        self._require(node)
        return len(self._out[node]) + len(self._in[node])

    # -- whole-graph operations ------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        for node in self._out:
            clone.add_node(node, self._node_labels.get(node))
        for u, succs in self._out.items():
            for v, label in succs.items():
                clone.add_edge(u, v, label)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Induced subgraph on ``nodes`` (labels preserved)."""
        keep = set(nodes)
        sub = Graph()
        for node in keep:
            if node in self._out:
                sub.add_node(node, self._node_labels.get(node))
        for u in keep:
            if u not in self._out:
                continue
            for v, label in self._out[u].items():
                if v in keep:
                    sub.add_edge(u, v, label)
        return sub

    def _require(self, node: NodeId) -> None:
        if node not in self._out:
            raise GraphError(f"no such node: {node}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
