"""Graph-update deltas: the unit of live graph mutation.

The paper's Fig 10 studies routing robustness when the graph changes after
preprocessing; dynamic distributed stores (PHD-Store, workload-based
fragmentation) likewise treat updates as first-class deltas applied
incrementally rather than as offline rebuilds. :class:`GraphUpdate` is that
delta for this reproduction: a frozen, replayable record of one mutation
(edge added, edge removed, or node added) that flows through every layer —
the :class:`~repro.graph.digraph.Graph` itself, the storage tier's write
path, processor-cache invalidation, and staleness-aware routing (see
:mod:`repro.core.updates`).

Node *removal* is deliberately not a delta kind: compact node indices are
append-only so that cache keys, CSR rows and record-size arrays stay
stable across updates. Production systems tombstone; so do we —
``remove_edge`` deltas can strip a node down to isolation, which is the
tombstone state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

from .digraph import Graph, GraphError

#: The supported delta kinds, in the order the docs discuss them.
UPDATE_KINDS = ("add_edge", "remove_edge", "add_node")


@dataclass(frozen=True)
class GraphUpdate:
    """One graph mutation: ``kind`` plus its endpoint(s).

    * ``add_edge`` — directed edge ``u -> v`` (endpoints created
      implicitly, matching :meth:`Graph.add_edge`); ``label`` optional.
    * ``remove_edge`` — existing directed edge ``u -> v``.
    * ``add_node`` — node ``u`` (idempotent); ``label`` optional.

    Use the classmethod constructors — they read better in workload
    generators and keep the field conventions in one place.
    """

    kind: str
    u: int
    v: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in UPDATE_KINDS:
            raise ValueError(
                f"unknown update kind {self.kind!r}; choose from {UPDATE_KINDS}"
            )
        if self.kind in ("add_edge", "remove_edge") and self.v is None:
            raise ValueError(f"{self.kind} updates need both endpoints (v)")
        if self.kind == "add_node" and self.v is not None:
            raise ValueError("add_node updates take a single node (no v)")

    # -- constructors --------------------------------------------------------
    @classmethod
    def add_edge(cls, u: int, v: int, label: Optional[str] = None) -> "GraphUpdate":
        return cls(kind="add_edge", u=u, v=v, label=label)

    @classmethod
    def remove_edge(cls, u: int, v: int) -> "GraphUpdate":
        return cls(kind="remove_edge", u=u, v=v)

    @classmethod
    def add_node(cls, u: int, label: Optional[str] = None) -> "GraphUpdate":
        return cls(kind="add_node", u=u, label=label)

    def touched(self) -> Tuple[int, ...]:
        """Node ids whose adjacency record this delta dirties."""
        if self.v is None or self.v == self.u:
            return (self.u,)
        return (self.u, self.v)


def validate_updates(graph: Graph, updates: Sequence[GraphUpdate]) -> None:
    """Reject an inapplicable batch *before* any of it is applied.

    Mirrors the router's submit-time batch validation: a mid-batch failure
    would leave the graph (and everything downstream — storage, caches,
    routing staleness) partially updated, and the caller's natural
    recovery of re-applying the batch would then double-apply the prefix.
    Tracks edge adds/removes within the batch so e.g. removing an edge the
    same batch added validates correctly.
    """
    added: Set[Tuple[int, int]] = set()
    removed: Set[Tuple[int, int]] = set()
    for position, update in enumerate(updates):
        if not isinstance(update, GraphUpdate):
            raise TypeError(
                f"updates[{position}] is {type(update).__name__}, not "
                "GraphUpdate; queries go through submit()/stream(), updates "
                "through apply_updates()"
            )
        if update.kind == "add_edge":
            edge = (update.u, update.v)
            added.add(edge)
            removed.discard(edge)
        elif update.kind == "remove_edge":
            edge = (update.u, update.v)
            exists = (
                edge not in removed
                and (edge in added or graph.has_edge(update.u, update.v))
            )
            if not exists:
                raise GraphError(
                    f"updates[{position}] removes non-existent edge "
                    f"{update.u} -> {update.v}; batch not applied"
                )
            removed.add(edge)
            added.discard(edge)


def apply_update(graph: Graph, update: GraphUpdate) -> Tuple[Set[int], Set[int]]:
    """Apply one delta; returns ``(dirty_node_ids, new_node_ids)``.

    *Dirty* nodes are those whose adjacency record changed (their stored
    bytes must be rewritten, cached copies invalidated, routing info
    refreshed); *new* nodes are the subset that did not exist before.
    """
    new: Set[int] = set()
    if update.kind == "add_edge":
        for endpoint in update.touched():
            if endpoint not in graph:
                new.add(endpoint)
        changed = graph.add_edge(update.u, update.v, update.label)
        if not changed and update.label is None:
            # Pure no-op upsert (edge already present, no label change):
            # no record bytes changed, so nothing downstream — storage
            # rewrite, cache invalidation, staleness — should trigger.
            return set(), set()
    elif update.kind == "remove_edge":
        graph.remove_edge(update.u, update.v)
    else:  # add_node
        existed = update.u in graph
        graph.add_node(update.u, update.label)
        if existed and update.label is None:
            return set(), set()
        if not existed:
            new.add(update.u)
    return set(update.touched()), new


def apply_updates(
    graph: Graph, updates: Iterable[GraphUpdate]
) -> Tuple[Set[int], Set[int]]:
    """Validate then apply a batch; returns the union dirty/new node sets.

    This is the graph-only entry point (tests, offline tooling). Live
    clusters go through :meth:`repro.core.service.QuerySession.apply_updates`,
    which also drives the storage write path, cache invalidation and
    routing staleness.
    """
    updates = list(updates)
    validate_updates(graph, updates)
    dirty: Set[int] = set()
    new: Set[int] = set()
    for update in updates:
        update_dirty, update_new = apply_update(graph, update)
        dirty |= update_dirty
        new |= update_new
    return dirty, new
