"""Graph data model, generators and traversal substrate."""

from .csr import CSRGraph
from .digraph import Graph, GraphError
from .generators import (
    barabasi_albert,
    community_graph,
    copying_model,
    erdos_renyi,
    ring_of_cliques,
    rmat,
    watts_strogatz,
)
from .traversal import (
    bfs_distances,
    bidirectional_reachability,
    k_hop_neighborhood,
    neighbor_aggregation,
    per_hop_frontiers,
    random_walk_with_restart,
)
from .updates import (
    UPDATE_KINDS,
    GraphUpdate,
    apply_update,
    apply_updates,
    validate_updates,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "GraphError",
    "GraphUpdate",
    "UPDATE_KINDS",
    "apply_update",
    "apply_updates",
    "validate_updates",
    "barabasi_albert",
    "bfs_distances",
    "bidirectional_reachability",
    "community_graph",
    "copying_model",
    "erdos_renyi",
    "k_hop_neighborhood",
    "neighbor_aggregation",
    "per_hop_frontiers",
    "random_walk_with_restart",
    "ring_of_cliques",
    "rmat",
    "watts_strogatz",
]
