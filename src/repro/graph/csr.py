"""Compressed-sparse-row view of a graph with vectorised traversals.

Landmark preprocessing runs |L| full breadth-first searches and the workload
generator samples thousands of h-hop neighbourhoods. Pure-Python BFS would
dominate experiment runtime, so analysis-side traversals run on a CSR array
view with numpy frontier expansion. The simulated *cluster* never touches
this class — query processors work on adjacency records fetched from the
storage tier — CSR is purely an offline analysis accelerator.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .digraph import Graph

UNREACHED = -1


class CSRGraph:
    """Immutable CSR adjacency with numpy-vectorised BFS.

    Node ids are compacted to ``0..n-1`` in sorted order of the original
    ids; :attr:`node_ids` maps compact index back to the original id and
    :meth:`index_of` the other way.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        node_ids: np.ndarray,
        index: Optional[dict] = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.node_ids = node_ids
        self._index = (
            index
            if index is not None
            else {int(nid): i for i, nid in enumerate(node_ids)}
        )

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        direction: str = "both",
        node_ids: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Build from a :class:`Graph`.

        ``direction`` selects which adjacency goes into the rows:

        * ``"out"`` — successors only;
        * ``"in"`` — predecessors only;
        * ``"both"`` — the bi-directed view (deduplicated), which is what
          the paper's landmark and embedding preprocessing uses (§3.4.1).

        ``node_ids`` fixes the compact ordering instead of the default
        sorted order — live graph updates append new nodes at the end so
        compact indices (cache keys, record-size rows) stay stable.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(f"bad direction: {direction!r}")
        if node_ids is None:
            node_ids = np.array(sorted(graph.nodes()), dtype=np.int64)
        elif len(node_ids) != graph.num_nodes:
            raise ValueError(
                f"node_ids has {len(node_ids)} entries for a graph of "
                f"{graph.num_nodes} nodes"
            )
        index = {int(nid): i for i, nid in enumerate(node_ids)}
        n = len(node_ids)
        counts = np.zeros(n + 1, dtype=np.int64)
        rows: List[Sequence[int]] = [()] * n
        for nid in node_ids:
            node = int(nid)
            if direction == "out":
                adj: Iterable[int] = graph.out_neighbors(node)
            elif direction == "in":
                adj = graph.in_neighbors(node)
            else:
                adj = graph.neighbors(node)
            row = [index[v] for v in adj]
            rows[index[node]] = row
            counts[index[node] + 1] = len(row)
        indptr = np.cumsum(counts)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, row in enumerate(rows):
            indices[indptr[i]:indptr[i + 1]] = row
        return cls(indptr, indices, node_ids, index=index)

    def with_updated_rows(
        self,
        new_rows: "dict[int, Sequence[int]]",
        appended_rows: Sequence[Sequence[int]] = (),
        appended_node_ids: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """New CSR with some rows replaced and new nodes appended at the end.

        Live graph updates dirty a handful of adjacency rows per batch; a
        full :meth:`from_graph` rebuild is a Python loop over *every* node
        and dominates update latency. This splice is O(edges) in numpy
        memcpy plus O(dirty) Python: unchanged row *runs* between dirty
        rows are copied with slice assignment, and only the dirty/new rows
        (already translated to compact indices by the caller) are written
        element-wise.

        ``new_rows`` maps compact index -> replacement neighbor row (compact
        indices); ``appended_rows`` are rows for brand-new nodes, whose ids
        (``appended_node_ids``) extend :attr:`node_ids` in order.
        """
        n_old = self.num_nodes
        if len(appended_rows) != (
            0 if appended_node_ids is None else len(appended_node_ids)
        ):
            raise ValueError("appended_rows and appended_node_ids disagree")
        for idx in new_rows:
            if not 0 <= idx < n_old:
                raise ValueError(f"row {idx} out of range for {n_old} nodes")
        counts = np.diff(self.indptr)
        if appended_rows:
            counts = np.concatenate([
                counts, np.fromiter(
                    (len(r) for r in appended_rows), dtype=np.int64,
                    count=len(appended_rows),
                ),
            ])
        else:
            counts = counts.copy()
        for idx, row in new_rows.items():
            counts[idx] = len(row)
        n_new = n_old + len(appended_rows)
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        # Copy unchanged runs between dirty rows in one slice each.
        dirty = sorted(new_rows)
        run_start = 0
        for idx in dirty:
            if idx > run_start:
                length = int(self.indptr[idx] - self.indptr[run_start])
                dest = int(indptr[run_start])
                indices[dest:dest + length] = (
                    self.indices[self.indptr[run_start]:self.indptr[idx]]
                )
            indices[indptr[idx]:indptr[idx + 1]] = new_rows[idx]
            run_start = idx + 1
        if run_start < n_old:
            length = int(self.indptr[n_old] - self.indptr[run_start])
            dest = int(indptr[run_start])
            indices[dest:dest + length] = (
                self.indices[self.indptr[run_start]:self.indptr[n_old]]
            )
        for offset, row in enumerate(appended_rows):
            idx = n_old + offset
            indices[indptr[idx]:indptr[idx + 1]] = row
        if appended_rows:
            node_ids = np.concatenate([
                self.node_ids,
                np.asarray(appended_node_ids, dtype=np.int64),
            ])
            index = dict(self._index)
            for offset, nid in enumerate(appended_node_ids):
                index[int(nid)] = n_old + offset
        else:
            node_ids = self.node_ids
            index = self._index
        return CSRGraph(indptr, indices, node_ids, index=index)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of stored adjacency entries (directed rows)."""
        return int(self.indptr[-1])

    def index_of(self, node_id: int) -> int:
        """Compact index of an original node id."""
        return self._index[node_id]

    def degrees(self) -> np.ndarray:
        """Row lengths (degree in the chosen direction) per compact index."""
        return np.diff(self.indptr)

    def neighbors_of(self, index: int) -> np.ndarray:
        """Compact-index neighbors of a compact-index node."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Public alias of :meth:`_gather` for frontier expansion."""
        return self._gather(frontier)

    def _gather(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbors of every frontier node, concatenated (with dups)."""
        starts = self.indptr[frontier]
        counts = self.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorised multi-slice gather: for each frontier node, the range
        # [start, start+count) into `indices`, laid out back to back.
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        return self.indices[np.arange(total) + offsets]

    def bfs_distances(
        self,
        sources: Iterable[int],
        max_hops: Optional[int] = None,
    ) -> np.ndarray:
        """Hop distances from ``sources`` (compact indices) to every node.

        Returns an ``int32`` array where unreached nodes hold ``-1``.
        """
        dist = np.full(self.num_nodes, UNREACHED, dtype=np.int32)
        frontier = np.unique(np.asarray(list(sources), dtype=np.int64))
        if frontier.size == 0:
            return dist
        dist[frontier] = 0
        hops = 0
        while frontier.size:
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            neighbors = self._gather(frontier)
            if neighbors.size == 0:
                break
            fresh = np.unique(neighbors[dist[neighbors] == UNREACHED])
            if fresh.size == 0:
                break
            dist[fresh] = hops
            frontier = fresh
        return dist

    def k_hop_frontiers(self, source: int, hops: int) -> List[np.ndarray]:
        """Per-hop frontiers from ``source``: ``[hop1, hop2, ...]``.

        ``source`` itself is not included; each array holds the compact
        indices first reached at that hop. This is the exact node set a
        query processor must have adjacency data for when answering an
        h-hop neighbourhood query starting at ``source``.
        """
        dist = self.bfs_distances([source], max_hops=hops)
        return [
            np.flatnonzero(dist == hop).astype(np.int64)
            for hop in range(1, hops + 1)
        ]

    def neighborhood_size(self, source: int, hops: int) -> int:
        """|N_h(source)| — nodes within ``hops`` hops, excluding the source."""
        dist = self.bfs_distances([source], max_hops=hops)
        return int(((dist > 0) & (dist <= hops)).sum())

    def eccentricity_lower_bound(self, source: int) -> int:
        """Largest finite BFS distance from ``source``."""
        dist = self.bfs_distances([source])
        reached = dist[dist >= 0]
        return int(reached.max()) if reached.size else 0
