"""Compressed-sparse-row view of a graph with vectorised traversals.

Landmark preprocessing runs |L| full breadth-first searches and the workload
generator samples thousands of h-hop neighbourhoods. Pure-Python BFS would
dominate experiment runtime, so analysis-side traversals run on a CSR array
view with numpy frontier expansion. The simulated *cluster* never touches
this class — query processors work on adjacency records fetched from the
storage tier — CSR is purely an offline analysis accelerator.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from .digraph import Graph

UNREACHED = -1


class CSRGraph:
    """Immutable CSR adjacency with numpy-vectorised BFS.

    Node ids are compacted to ``0..n-1`` in sorted order of the original
    ids; :attr:`node_ids` maps compact index back to the original id and
    :meth:`index_of` the other way.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        node_ids: np.ndarray,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.node_ids = node_ids
        self._index = {int(nid): i for i, nid in enumerate(node_ids)}

    @classmethod
    def from_graph(cls, graph: Graph, direction: str = "both") -> "CSRGraph":
        """Build from a :class:`Graph`.

        ``direction`` selects which adjacency goes into the rows:

        * ``"out"`` — successors only;
        * ``"in"`` — predecessors only;
        * ``"both"`` — the bi-directed view (deduplicated), which is what
          the paper's landmark and embedding preprocessing uses (§3.4.1).
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(f"bad direction: {direction!r}")
        node_ids = np.array(sorted(graph.nodes()), dtype=np.int64)
        index = {int(nid): i for i, nid in enumerate(node_ids)}
        n = len(node_ids)
        counts = np.zeros(n + 1, dtype=np.int64)
        rows: List[Sequence[int]] = [()] * n
        for nid in node_ids:
            node = int(nid)
            if direction == "out":
                adj: Iterable[int] = graph.out_neighbors(node)
            elif direction == "in":
                adj = graph.in_neighbors(node)
            else:
                adj = graph.neighbors(node)
            row = [index[v] for v in adj]
            rows[index[node]] = row
            counts[index[node] + 1] = len(row)
        indptr = np.cumsum(counts)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, row in enumerate(rows):
            indices[indptr[i]:indptr[i + 1]] = row
        return cls(indptr, indices, node_ids)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of stored adjacency entries (directed rows)."""
        return int(self.indptr[-1])

    def index_of(self, node_id: int) -> int:
        """Compact index of an original node id."""
        return self._index[node_id]

    def degrees(self) -> np.ndarray:
        """Row lengths (degree in the chosen direction) per compact index."""
        return np.diff(self.indptr)

    def neighbors_of(self, index: int) -> np.ndarray:
        """Compact-index neighbors of a compact-index node."""
        return self.indices[self.indptr[index]:self.indptr[index + 1]]

    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Public alias of :meth:`_gather` for frontier expansion."""
        return self._gather(frontier)

    def _gather(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbors of every frontier node, concatenated (with dups)."""
        starts = self.indptr[frontier]
        counts = self.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorised multi-slice gather: for each frontier node, the range
        # [start, start+count) into `indices`, laid out back to back.
        offsets = np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        return self.indices[np.arange(total) + offsets]

    def bfs_distances(
        self,
        sources: Iterable[int],
        max_hops: Optional[int] = None,
    ) -> np.ndarray:
        """Hop distances from ``sources`` (compact indices) to every node.

        Returns an ``int32`` array where unreached nodes hold ``-1``.
        """
        dist = np.full(self.num_nodes, UNREACHED, dtype=np.int32)
        frontier = np.unique(np.asarray(list(sources), dtype=np.int64))
        if frontier.size == 0:
            return dist
        dist[frontier] = 0
        hops = 0
        while frontier.size:
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            neighbors = self._gather(frontier)
            if neighbors.size == 0:
                break
            fresh = np.unique(neighbors[dist[neighbors] == UNREACHED])
            if fresh.size == 0:
                break
            dist[fresh] = hops
            frontier = fresh
        return dist

    def k_hop_frontiers(self, source: int, hops: int) -> List[np.ndarray]:
        """Per-hop frontiers from ``source``: ``[hop1, hop2, ...]``.

        ``source`` itself is not included; each array holds the compact
        indices first reached at that hop. This is the exact node set a
        query processor must have adjacency data for when answering an
        h-hop neighbourhood query starting at ``source``.
        """
        dist = self.bfs_distances([source], max_hops=hops)
        return [
            np.flatnonzero(dist == hop).astype(np.int64)
            for hop in range(1, hops + 1)
        ]

    def neighborhood_size(self, source: int, hops: int) -> int:
        """|N_h(source)| — nodes within ``hops`` hops, excluding the source."""
        dist = self.bfs_distances([source], max_hops=hops)
        return int(((dist > 0) & (dist <= hops)).sum())

    def eccentricity_lower_bound(self, source: int) -> int:
        """Largest finite BFS distance from ``source``."""
        dist = self.bfs_distances([source])
        reached = dist[dist >= 0]
        return int(reached.max()) if reached.size else 0
