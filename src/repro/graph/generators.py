"""Seeded random-graph generators.

The paper evaluates on four real graphs (WebGraph, Friendster, Memetracker,
Freebase) that are far too large for an in-process Python reproduction and
not redistributable here. These generators produce the *classes* of graph
the evaluation depends on:

* power-law degree distributions (preferential attachment, R-MAT),
* web-like locality and neighbourhood overlap (copying model),
* sparse hyperlink-style graphs (R-MAT with low edge density),
* near-tree knowledge-graph sparsity (low-degree R-MAT / random).

All generators are deterministic for a fixed seed and return a
:class:`~repro.graph.digraph.Graph`.
"""

from __future__ import annotations

import numpy as np

from .digraph import Graph


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi(num_nodes: int, num_edges: int, seed=0) -> Graph:
    """Uniform random directed graph with ``num_edges`` distinct edges."""
    if num_nodes < 2 and num_edges > 0:
        raise ValueError("need at least two nodes to place edges")
    rng = _rng(seed)
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    placed = 0
    while placed < num_edges:
        batch = max(1024, num_edges - placed)
        us = rng.integers(0, num_nodes, size=batch)
        vs = rng.integers(0, num_nodes, size=batch)
        for u, v in zip(us, vs, strict=True):
            if u == v:
                continue
            if graph.add_edge(int(u), int(v)):
                placed += 1
                if placed == num_edges:
                    break
    return graph


def barabasi_albert(num_nodes: int, edges_per_node: int, seed=0) -> Graph:
    """Preferential-attachment graph (directed: new node -> chosen targets).

    Produces the heavy-tailed degree distribution typical of social
    networks; used for the Friendster analogue.
    """
    m = edges_per_node
    if num_nodes < m + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = _rng(seed)
    graph = Graph()
    # Repeated-nodes list: each endpoint appearance is one lottery ticket,
    # which realises preferential attachment without degree bookkeeping.
    repeated: list[int] = []
    for node in range(m + 1):
        graph.add_node(node)
    for u in range(1, m + 1):
        for v in range(u):
            graph.add_edge(u, v)
            repeated.extend((u, v))
    for u in range(m + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < m:
            pick = int(repeated[rng.integers(0, len(repeated))])
            if pick != u:
                targets.add(pick)
        for v in targets:
            graph.add_edge(u, v)
            repeated.extend((u, v))
    return graph


def rmat(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=0,
) -> Graph:
    """R-MAT recursive-matrix generator (2^scale nodes).

    The (a, b, c, d) quadrant probabilities control skew; the defaults are
    the Graph500 parameters, giving a power-law graph with community
    structure. Self-loops and duplicate edges are dropped, so the realised
    edge count can fall slightly below ``num_edges``.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("rmat probabilities exceed 1")
    rng = _rng(seed)
    n = 1 << scale
    graph = Graph()
    for node in range(n):
        graph.add_node(node)
    # Vectorised bit construction: each of `scale` levels picks a quadrant.
    remaining = num_edges
    while remaining > 0:
        batch = remaining
        us = np.zeros(batch, dtype=np.int64)
        vs = np.zeros(batch, dtype=np.int64)
        for _level in range(scale):
            r = rng.random(batch)
            right = (r >= a) & (r < a + b)
            down = (r >= a + b) & (r < a + b + c)
            diag = r >= a + b + c
            us = (us << 1) | (down | diag)
            vs = (vs << 1) | (right | diag)
        added = 0
        for u, v in zip(us, vs, strict=True):
            if u != v and graph.add_edge(int(u), int(v)):
                added += 1
        if added == 0:
            # Saturated (tiny graphs): accept fewer edges than asked.
            break
        remaining -= added
    return graph


def watts_strogatz(num_nodes: int, nearest: int, rewire_prob: float, seed=0) -> Graph:
    """Ring lattice with random rewiring — high locality, used in tests.

    ``nearest`` must be even; each node connects to ``nearest/2`` clockwise
    neighbors (directed), then each edge rewires with ``rewire_prob``.
    """
    if nearest % 2 != 0:
        raise ValueError("nearest must be even")
    rng = _rng(seed)
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    half = nearest // 2
    for u in range(num_nodes):
        for offset in range(1, half + 1):
            v = (u + offset) % num_nodes
            if rng.random() < rewire_prob:
                v = int(rng.integers(0, num_nodes))
                while v == u or graph.has_edge(u, v):
                    v = int(rng.integers(0, num_nodes))
            if u != v:
                graph.add_edge(u, v)
    return graph


def copying_model(
    num_nodes: int,
    out_degree: int,
    copy_prob: float = 0.7,
    seed=0,
) -> Graph:
    """Kleinberg copying model — web-graph-like structure.

    Each new page links to ``out_degree`` targets; with ``copy_prob`` each
    link copies the corresponding link of a random earlier "prototype"
    page, otherwise it points to a uniform earlier page. Copying yields
    both power-law in-degrees and the strong neighbourhood overlap between
    related pages that the WebGraph experiments rely on.
    """
    if out_degree < 1:
        raise ValueError("out_degree must be >= 1")
    rng = _rng(seed)
    graph = Graph()
    seed_size = out_degree + 1
    for node in range(seed_size):
        graph.add_node(node)
    for u in range(1, seed_size):
        for v in range(u):
            graph.add_edge(u, v)
    out_lists: list[list[int]] = [
        list(graph.out_neighbors(node)) for node in range(seed_size)
    ]
    for u in range(seed_size, num_nodes):
        prototype = out_lists[int(rng.integers(0, u))]
        targets: set[int] = set()
        for _slot in range(out_degree):
            if prototype and rng.random() < copy_prob:
                v = prototype[int(rng.integers(0, len(prototype)))]
            else:
                v = int(rng.integers(0, u))
            if v != u:
                targets.add(v)
        for v in targets:
            graph.add_edge(u, v)
        out_lists.append(sorted(targets))
    return graph


def community_graph(
    num_communities: int,
    community_size: int,
    intra_degree: int = 6,
    inter_degree: float = 1.0,
    size_spread: float = 0.35,
    seed=0,
) -> Graph:
    """Power-law communities with sparse cross links (web/social-like).

    Real web graphs are locally dense: pages of one site link heavily to
    each other and sparsely elsewhere, so 2-hop neighbourhoods of nearby
    pages overlap strongly — the *topology-aware locality* smart routing
    exploits. This generator plants ``num_communities`` preferential-
    attachment communities (sizes lognormal around ``community_size``) and
    adds ``inter_degree`` expected cross-community edges per node, with
    popular communities attracting more of them.
    """
    if num_communities < 2 or community_size < 3:
        raise ValueError("need >= 2 communities of >= 3 nodes")
    if intra_degree < 1:
        raise ValueError("intra_degree must be >= 1")
    rng = _rng(seed)
    graph = Graph()
    sizes = np.maximum(
        3,
        (community_size * rng.lognormal(0.0, size_spread, num_communities))
        .astype(np.int64),
    )
    members: list[np.ndarray] = []
    next_id = 0
    for size in sizes:
        ids = np.arange(next_id, next_id + size)
        members.append(ids)
        next_id += int(size)
        # Preferential attachment inside the community: power-law degrees
        # at community scale without global hubs.
        m = min(intra_degree // 2 + 1, int(size) - 1)
        repeated: list[int] = []
        base = int(ids[0])
        for u in range(1, m + 1):
            for v in range(u):
                graph.add_edge(base + u, base + v)
                repeated.extend((base + u, base + v))
        for u in range(m + 1, int(size)):
            targets: set[int] = set()
            while len(targets) < m:
                pick = repeated[rng.integers(0, len(repeated))]
                if pick != base + u:
                    targets.add(pick)
            for v in targets:
                graph.add_edge(base + u, v)
                repeated.extend((base + u, v))
    # Cross links: communities get popularity weights (Zipf-ish), nodes
    # link out to a random node in a popularity-weighted other community.
    popularity = 1.0 / np.arange(1, num_communities + 1) ** 0.8
    popularity /= popularity.sum()
    for c, ids in enumerate(members):
        expected = inter_degree * len(ids)
        num_links = rng.poisson(expected)
        for _ in range(num_links):
            u = int(ids[rng.integers(0, len(ids))])
            other = int(rng.choice(num_communities, p=popularity))
            if other == c:
                continue
            v = int(members[other][rng.integers(0, len(members[other]))])
            graph.add_edge(u, v)
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int) -> Graph:
    """Deterministic test graph: cliques joined in a ring.

    Handy for traversal/partitioning tests because hop distances and
    community structure are known in closed form.
    """
    graph = Graph()
    for c in range(num_cliques):
        base = c * clique_size
        members = range(base, base + clique_size)
        for u in members:
            graph.add_node(u)
        for u in members:
            for v in members:
                if u < v:
                    graph.add_edge(u, v)
                    graph.add_edge(v, u)
    for c in range(num_cliques):
        u = c * clique_size
        v = ((c + 1) % num_cliques) * clique_size
        if u != v:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
    return graph
