"""Log-structured in-memory key-value store (RAMCloud-like).

RAMCloud keeps all values in an append-only, segmented log with a hash-table
index and reclaims space with a cleaner (§4.1 and [19]). This class models
the parts the paper relies on: O(1) gets through the index, append-on-write,
per-segment liveness accounting and a cleaner that compacts the emptiest
segments when utilization drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class KVStoreError(Exception):
    """Raised on invalid store operations."""


@dataclass
class _Segment:
    entries: List[Optional[Tuple[int, bytes]]] = field(default_factory=list)
    used_bytes: int = 0
    live_bytes: int = 0

    def append(self, key: int, value: bytes) -> int:
        self.entries.append((key, value))
        self.used_bytes += len(value)
        self.live_bytes += len(value)
        return len(self.entries) - 1

    def kill(self, entry_index: int) -> None:
        entry = self.entries[entry_index]
        assert entry is not None
        self.live_bytes -= len(entry[1])
        self.entries[entry_index] = None


class LogStructuredStore:
    """Append-only segmented log with a hash index and a cleaner."""

    def __init__(
        self,
        segment_bytes: int = 1 << 20,
        clean_threshold: float = 0.5,
    ) -> None:
        if segment_bytes <= 0:
            raise KVStoreError("segment_bytes must be positive")
        if not 0.0 < clean_threshold < 1.0:
            raise KVStoreError("clean_threshold must be in (0, 1)")
        self.segment_bytes = segment_bytes
        self.clean_threshold = clean_threshold
        self._segments: List[_Segment] = [_Segment()]
        self._index: Dict[int, Tuple[int, int]] = {}
        self.cleanings = 0

    # -- basic operations -------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def get(self, key: int) -> bytes:
        """Value for ``key``; raises :class:`KeyError` if absent."""
        seg_idx, entry_idx = self._index[key]
        entry = self._segments[seg_idx].entries[entry_idx]
        assert entry is not None
        return entry[1]

    def multiget(self, keys) -> Dict[int, bytes]:
        """Values for every present key (absent keys are skipped)."""
        result = {}
        for key in keys:
            location = self._index.get(key)
            if location is None:
                continue
            seg_idx, entry_idx = location
            entry = self._segments[seg_idx].entries[entry_idx]
            assert entry is not None
            result[key] = entry[1]
        return result

    def put(self, key: int, value: bytes) -> None:
        """Write ``key``; overwriting appends and kills the old entry."""
        if not isinstance(value, bytes):
            raise KVStoreError("values must be bytes")
        old = self._index.get(key)
        if old is not None:
            self._segments[old[0]].kill(old[1])
        head = self._segments[-1]
        if head.used_bytes + len(value) > self.segment_bytes and head.entries:
            head = _Segment()
            self._segments.append(head)
        entry_idx = head.append(key, value)
        self._index[key] = (len(self._segments) - 1, entry_idx)
        if self.utilization() < self.clean_threshold:
            self._clean()

    def delete(self, key: int) -> None:
        """Remove ``key``; raises :class:`KeyError` if absent."""
        seg_idx, entry_idx = self._index.pop(key)
        self._segments[seg_idx].kill(entry_idx)

    # -- space accounting --------------------------------------------------
    def live_bytes(self) -> int:
        return sum(seg.live_bytes for seg in self._segments)

    def used_bytes(self) -> int:
        return sum(seg.used_bytes for seg in self._segments)

    def utilization(self) -> float:
        """live / appended bytes — the cleaner's trigger metric."""
        used = self.used_bytes()
        if used == 0:
            return 1.0
        return self.live_bytes() / used

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def _clean(self) -> None:
        """Compact: rewrite live entries into fresh segments."""
        self.cleanings += 1
        live: List[Tuple[int, bytes]] = []
        for key, (seg_idx, entry_idx) in self._index.items():
            entry = self._segments[seg_idx].entries[entry_idx]
            assert entry is not None
            live.append((key, entry[1]))
        self._segments = [_Segment()]
        self._index.clear()
        for key, value in live:
            head = self._segments[-1]
            if head.used_bytes + len(value) > self.segment_bytes and head.entries:
                head = _Segment()
                self._segments.append(head)
            entry_idx = head.append(key, value)
            self._index[key] = (len(self._segments) - 1, entry_idx)
