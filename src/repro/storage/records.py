"""Adjacency-record codec: the graph's key-value representation (§2.1).

Every node is one record: key = node id, value = its outgoing and incoming
neighbor lists with optional labels (Figure 3 of the paper). Records encode
to a compact binary layout so that byte sizes — which drive cache capacity,
network transfer and storage utilization — are real numbers, not guesses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..graph.digraph import Graph

_HEADER = struct.Struct("<qII")  # node id, #out entries, #in entries
_ENTRY = struct.Struct("<qH")  # neighbor id, label byte-length


@dataclass
class AdjacencyRecord:
    """One node's stored value: out- and in-adjacency with labels."""

    node_id: int
    out_edges: List[Tuple[int, Optional[str]]] = field(default_factory=list)
    in_edges: List[Tuple[int, Optional[str]]] = field(default_factory=list)
    node_label: Optional[str] = None

    # -- views -------------------------------------------------------------
    def out_neighbors(self) -> List[int]:
        return [v for v, _ in self.out_edges]

    def in_neighbors(self) -> List[int]:
        return [v for v, _ in self.in_edges]

    def neighbors(self) -> List[int]:
        """Bi-directed neighbor list, deduplicated, out-edges first."""
        seen = set()
        result = []
        for v, _ in self.out_edges:
            if v not in seen:
                seen.add(v)
                result.append(v)
        for v, _ in self.in_edges:
            if v not in seen:
                seen.add(v)
                result.append(v)
        return result

    @property
    def degree(self) -> int:
        return len(self.out_edges) + len(self.in_edges)

    # -- codec -------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the compact binary layout."""
        parts = [
            _HEADER.pack(self.node_id, len(self.out_edges), len(self.in_edges))
        ]
        label_bytes = (self.node_label or "").encode("utf-8")
        parts.append(struct.pack("<H", len(label_bytes)))
        parts.append(label_bytes)
        for edges in (self.out_edges, self.in_edges):
            for neighbor, label in edges:
                encoded = (label or "").encode("utf-8")
                parts.append(_ENTRY.pack(neighbor, len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def decode(cls, payload: bytes) -> "AdjacencyRecord":
        """Inverse of :meth:`encode`."""
        node_id, n_out, n_in = _HEADER.unpack_from(payload, 0)
        offset = _HEADER.size
        (label_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        node_label = (
            payload[offset:offset + label_len].decode("utf-8") if label_len else None
        )
        offset += label_len

        def read_entries(count: int, offset: int):
            entries: List[Tuple[int, Optional[str]]] = []
            for _ in range(count):
                neighbor, edge_len = _ENTRY.unpack_from(payload, offset)
                offset += _ENTRY.size
                label = (
                    payload[offset:offset + edge_len].decode("utf-8")
                    if edge_len
                    else None
                )
                offset += edge_len
                entries.append((neighbor, label))
            return entries, offset

        out_edges, offset = read_entries(n_out, offset)
        in_edges, offset = read_entries(n_in, offset)
        return cls(node_id, out_edges, in_edges, node_label)

    def size_bytes(self) -> int:
        """Encoded size; used for cache occupancy and transfer accounting."""
        size = _HEADER.size + 2 + len((self.node_label or "").encode("utf-8"))
        for edges in (self.out_edges, self.in_edges):
            for _, label in edges:
                size += _ENTRY.size + len((label or "").encode("utf-8"))
        return size


def record_for_node(graph: Graph, node: int) -> AdjacencyRecord:
    """Build the adjacency record of ``node`` from a graph."""
    out_edges = [(v, graph.edge_label(node, v)) for v in graph.out_neighbors(node)]
    in_edges = [(u, graph.edge_label(u, node)) for u in graph.in_neighbors(node)]
    label = graph.node_label(node)
    return AdjacencyRecord(
        node_id=node,
        out_edges=out_edges,
        in_edges=in_edges,
        node_label=label if isinstance(label, str) or label is None else str(label),
    )


def graph_to_records(graph: Graph):
    """Yield the adjacency record of every node."""
    for node in graph.nodes():
        yield record_for_node(graph, node)
