"""The storage tier: graph records hash-partitioned across storage servers.

The paper's storage tier (§2.3, §4.1) is RAMCloud with its default
MurmurHash3 key partitioning — deliberately *inexpensive* partitioning,
because smart routing at the processing tier is what recovers locality.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..costs import StorageServiceModel
from ..graph.digraph import Graph
from ..sim import Environment
from .murmur import hash_node_id
from .records import AdjacencyRecord, graph_to_records
from .server import StorageServer

Partitioner = Callable[[int, int], int]


def murmur_partitioner(key: int, num_servers: int) -> int:
    """RAMCloud-style placement: MurmurHash3 of the key, mod servers."""
    return hash_node_id(key) % num_servers


def modulo_partitioner(key: int, num_servers: int) -> int:
    """Plain modulo placement (useful in tests for predictable layouts)."""
    return key % num_servers


class StorageTier:
    """A set of storage servers holding one partitioned graph."""

    def __init__(
        self,
        env: Environment,
        num_servers: int,
        service_model: Optional[StorageServiceModel] = None,
        partitioner: Partitioner = murmur_partitioner,
        pipeline_width: int = 1,
        segment_bytes: int = 1 << 20,
    ) -> None:
        if num_servers < 1:
            raise ValueError("storage tier needs at least one server")
        self.env = env
        self.partitioner = partitioner
        self.servers: List[StorageServer] = [
            StorageServer(
                env,
                server_id=i,
                service_model=service_model or StorageServiceModel(),
                pipeline_width=pipeline_width,
                segment_bytes=segment_bytes,
            )
            for i in range(num_servers)
        ]

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def locate(self, key: int) -> StorageServer:
        """The server owning ``key``."""
        return self.servers[self.partitioner(key, self.num_servers)]

    def load_graph(self, graph: Graph) -> int:
        """Bulk-load every adjacency record; returns total bytes stored.

        Loading happens outside simulated time (the paper's experiments
        start with the graph already resident in the storage tier).
        """
        total = 0
        for record in graph_to_records(graph):
            payload = record.encode()
            self.locate(record.node_id).load(record.node_id, payload)
            total += len(payload)
        return total

    def store_record(self, record: AdjacencyRecord) -> None:
        """Untimed single-record upsert (used by graph-update handling)."""
        self.locate(record.node_id).load(record.node_id, record.encode())

    def partition_plan(self, keys: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``keys`` by owning server id."""
        plan: Dict[int, List[int]] = {}
        for key in keys:
            plan.setdefault(self.partitioner(key, self.num_servers), []).append(key)
        return plan

    def fetch_process(self, keys: Iterable[int]):
        """Simulation process fetching records for ``keys`` in parallel.

        Issues one multiget per involved server concurrently (server-side
        queueing applies) and yields ``{key: AdjacencyRecord}``. Network
        cost is the *caller's* concern: the query processor knows which
        interconnect it is on.
        """
        plan = self.partition_plan(keys)
        pending = [
            self.env.process(self.servers[sid].multiget_process(server_keys))
            for sid, server_keys in plan.items()
        ]
        value_maps = yield self.env.all_of(pending)
        records: Dict[int, AdjacencyRecord] = {}
        for values in value_maps:
            for key, payload in values.items():
                records[key] = AdjacencyRecord.decode(payload)
        return records

    def total_live_bytes(self) -> int:
        return sum(server.store.live_bytes() for server in self.servers)

    def load_distribution(self) -> List[int]:
        """Records held per server — partition-balance diagnostics."""
        return [len(server.store) for server in self.servers]
