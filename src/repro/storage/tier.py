"""The storage tier: graph records hash-partitioned across storage servers.

The paper's storage tier (§2.3, §4.1) is RAMCloud with its default
MurmurHash3 key partitioning — deliberately *inexpensive* partitioning,
because smart routing at the processing tier is what recovers locality.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..costs import NetworkModel, StorageServiceModel
from ..graph.digraph import Graph
from ..sim import Environment
from .murmur import hash_node_id
from .placement import HeatTracker, PlacementDirectory, pick_read_replica
from .records import AdjacencyRecord, graph_to_records
from .server import StorageServer, StorageServerDown

Partitioner = Callable[[int, int], int]

#: Wire framing of a multiput request/ack (mirrors the gather constants).
_WRITE_HEADER_BYTES = 24
_PER_RECORD_WRITE_BYTES = 12  # key + length prefix per record
_WRITE_ACK_BYTES = 16


def murmur_partitioner(key: int, num_servers: int) -> int:
    """RAMCloud-style placement: MurmurHash3 of the key, mod servers."""
    return hash_node_id(key) % num_servers


def modulo_partitioner(key: int, num_servers: int) -> int:
    """Plain modulo placement (useful in tests for predictable layouts)."""
    return key % num_servers


class StorageTier:
    """A set of storage servers holding one partitioned graph."""

    def __init__(
        self,
        env: Environment,
        num_servers: int,
        service_model: Optional[StorageServiceModel] = None,
        partitioner: Partitioner = murmur_partitioner,
        pipeline_width: int = 1,
        segment_bytes: int = 1 << 20,
    ) -> None:
        if num_servers < 1:
            raise ValueError("storage tier needs at least one server")
        self.env = env
        self.partitioner = partitioner
        self.servers: List[StorageServer] = [
            StorageServer(
                env,
                server_id=i,
                service_model=service_model or StorageServiceModel(),
                pipeline_width=pipeline_width,
                segment_bytes=segment_bytes,
            )
            for i in range(num_servers)
        ]
        # Dynamic-placement overlay (see repro.storage.placement). Both stay
        # None unless a PlacementManager attaches them; every consumer
        # guards on that, so the default tier is exactly the pre-placement
        # tier. An *empty* attached directory is equally zero-cost: lookups
        # guard on truthiness before consulting the overlay.
        self.directory: Optional[PlacementDirectory] = None
        self.heat: Optional[HeatTracker] = None
        # Demand-repair hook (see repro.core.topology): called with the
        # cache keys of a read wave about to hit a dead server, so the
        # repair loop can re-home exactly what live traffic is blocked
        # on before its linear scan gets there. None (the default) keeps
        # the read path bit-identical to the pre-topology tier.
        self.on_read_failure: Optional[Callable[[List[int]], None]] = None

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def attach_placement(
        self, directory: PlacementDirectory, heat: HeatTracker
    ) -> None:
        """Install the dynamic-placement overlay (one per tier)."""
        self.directory = directory
        self.heat = heat

    def locate(self, key: int) -> StorageServer:
        """The server owning ``key`` (read-any across directory replicas)."""
        if self.directory is not None and self.directory:
            entry = self.directory.by_key.get(key)
            if entry is not None:
                return self.servers[
                    pick_read_replica(entry.replicas, self.servers)
                ]
        return self.servers[self.partitioner(key, self.num_servers)]

    def replica_sids(self, key: int) -> Tuple[int, ...]:
        """Every server currently holding ``key`` (write-all targets)."""
        home = self.partitioner(key, self.num_servers)
        if self.directory is not None and self.directory:
            return self.directory.replicas_for(key, home)
        return (home,)

    def load_graph(self, graph: Graph) -> int:
        """Bulk-load every adjacency record; returns total bytes stored.

        Loading happens outside simulated time (the paper's experiments
        start with the graph already resident in the storage tier).
        """
        total = 0
        for record in graph_to_records(graph):
            payload = record.encode()
            self.locate(record.node_id).load(record.node_id, payload)
            total += len(payload)
        return total

    def store_record(self, record: AdjacencyRecord) -> None:
        """Untimed single-record upsert (used by graph-update handling).

        Write-all: a record with directory replicas is upserted on every
        replica, so read-any stays coherent.
        """
        payload = record.encode()
        for sid in self.replica_sids(record.node_id):
            self.servers[sid].load(record.node_id, payload)

    def partition_plan(self, keys: Iterable[int]) -> Dict[int, List[int]]:
        """Group ``keys`` by the server a read should go to.

        With an empty (or absent) directory this is exactly the hash
        partition; directory exceptions route read-any to the
        least-loaded live replica at this simulated instant.
        """
        directory = self.directory
        overlay = directory.by_key if directory is not None and directory else None
        plan: Dict[int, List[int]] = {}
        for key in keys:
            if overlay is not None:
                entry = overlay.get(key)
                if entry is not None:
                    sid = pick_read_replica(entry.replicas, self.servers)
                    plan.setdefault(sid, []).append(key)
                    continue
            plan.setdefault(self.partitioner(key, self.num_servers), []).append(key)
        return plan

    def fetch_process(self, keys: Iterable[int]):
        """Simulation process fetching records for ``keys`` in parallel.

        Issues one multiget per involved server concurrently (server-side
        queueing applies) and yields ``{key: AdjacencyRecord}``. Network
        cost is the *caller's* concern: the query processor knows which
        interconnect it is on.
        """
        plan = self.partition_plan(keys)
        pending = [
            self.env.process(self.servers[sid].multiget_process(server_keys))
            for sid, server_keys in plan.items()
        ]
        value_maps = yield self.env.all_of(pending)
        records: Dict[int, AdjacencyRecord] = {}
        for values in value_maps:
            for key, payload in values.items():
                records[key] = AdjacencyRecord.decode(payload)
        return records

    def _server_write_process(
        self,
        server: StorageServer,
        entries: List[Tuple[int, Optional[bytes]]],
        nbytes: int,
        network: Optional[NetworkModel],
    ):
        """One server's leg of a multiput: request transfer, write, ack."""
        if network is not None:
            request_bytes = (
                _WRITE_HEADER_BYTES
                + _PER_RECORD_WRITE_BYTES * len(entries)
                + nbytes
            )
            yield self.env.timeout(network.transfer_time(request_bytes))
        yield self.env.process(server.multiput_process(entries, nbytes))
        if network is not None:
            yield self.env.timeout(network.transfer_time(_WRITE_ACK_BYTES))
        return len(entries), nbytes

    def multiput_process(
        self,
        items: Iterable[Tuple[int, int, Optional[bytes]]],
        network: Optional[NetworkModel] = None,
    ):
        """Simulation process writing updated records, one multiput per
        involved server, in parallel (the write twin of
        :meth:`fetch_process`).

        ``items`` are ``(key, size_bytes, payload)`` triples; ``payload``
        is the encoded record, or ``None`` in accounting mode (sizes alone
        drive timing, nothing lands in the store). ``network``, when
        given, charges the request/ack transfers per server — the caller
        (the live-update manager) knows which interconnect it is on.

        Returns ``(records_written, bytes_written, error)``: every
        server's leg runs to completion (failure injection on one server
        does not abort the others' writes), the totals count what
        actually landed, and ``error`` carries the first
        :class:`StorageServerDown` (or ``None``) instead of raising — the
        caller decides how a partial write surfaces, with accurate
        counters in hand either way.

        Directory replicas get **write-all-or-invalidate** semantics:
        a replicated key is written on every replica server, and a
        replica whose leg failed is *dropped from the directory* at the
        simulated instant the failure is known (the surviving replicas
        stay coherent, so read-any remains sound). ``error`` then
        reports only keys that landed on **no** server — with an empty
        directory every key lives on exactly one leg, so this reduces to
        the historical any-leg-failed behaviour bit-for-bit.
        """
        directory = self.directory
        replicated = directory is not None and bool(directory)
        plan: Dict[int, List[Tuple[int, Optional[bytes]]]] = {}
        sizes: Dict[int, int] = {}
        for key, size, payload in items:
            if replicated:
                sids = directory.replicas_for(
                    key, self.partitioner(key, self.num_servers)
                )
            else:
                sids = (self.partitioner(key, self.num_servers),)
            for sid in sids:
                plan.setdefault(sid, []).append((key, payload))
                sizes[sid] = sizes.get(sid, 0) + size
        pending = [
            (sid, self.env.process(self._server_write_process(
                self.servers[sid], entries, sizes[sid], network,
            )))
            for sid, entries in plan.items()
        ]
        total_records = 0
        total_bytes = 0
        error: Optional[StorageServerDown] = None
        failed_sids: List[int] = []
        for sid, process in pending:
            try:
                records, nbytes = yield process
            except StorageServerDown as down:
                if error is None:
                    error = down
                failed_sids.append(sid)
            else:
                total_records += records
                total_bytes += nbytes
        if failed_sids and replicated:
            # Coverage check: a key is lost only if *every* holder failed.
            failed = set(failed_sids)
            any_lost = False
            for sid in failed_sids:
                for key, _payload in plan[sid]:
                    holders = directory.replicas_for(
                        key, self.partitioner(key, self.num_servers)
                    )
                    if all(h in failed for h in holders):
                        any_lost = True
                    else:
                        # Invalidate the failed copy; survivors carry on.
                        directory.drop_replica(key, sid)
            if not any_lost:
                error = None
        return total_records, total_bytes, error

    def total_live_bytes(self) -> int:
        return sum(server.store.live_bytes() for server in self.servers)

    def load_distribution(self) -> List[int]:
        """Records held per server — partition-balance diagnostics."""
        return [len(server.store) for server in self.servers]
