"""A simulated storage server: log-structured store + FIFO service pipeline.

Requests occupy the server's pipeline for a service time derived from the
:class:`~repro.costs.StorageServiceModel`, so storage-tier contention —
central to the paper's Fig 8(c) storage-scaling experiment — emerges
naturally from queueing rather than being assumed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..costs import StorageServiceModel
from ..sim import Environment, Resource
from .kvstore import LogStructuredStore


class StorageServerDown(Exception):
    """Raised by requests against a failed server (failure injection)."""


class StorageServer:
    """One storage node in the storage tier."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        service_model: StorageServiceModel,
        pipeline_width: int = 1,
        segment_bytes: int = 1 << 20,
    ) -> None:
        self.env = env
        self.server_id = server_id
        self.service = service_model
        self.store = LogStructuredStore(segment_bytes=segment_bytes)
        self.pipeline = Resource(env, capacity=pipeline_width)
        self.alive = True
        # Counters for utilization / hotspot analysis. Reads and writes are
        # tracked separately so read-side experiments (Fig 8c) keep their
        # historical meaning under update churn.
        self.requests_served = 0
        self.keys_served = 0
        self.bytes_served = 0
        self.writes_served = 0
        self.records_written = 0
        self.bytes_written = 0
        #: Alive-flag transition log: ``(simulated time, now_alive)`` per
        #: fail/recover edge. Pure bookkeeping (no simulated effects) —
        #: feeds the downtime/recovery metrics in per-server reports.
        self.alive_transitions: List[Tuple[float, bool]] = []

    # -- untimed bulk loading (setup happens outside simulated time) -------
    def load(self, key: int, value: bytes) -> None:
        # repro: allow S301 — bulk loading runs before the simulation starts
        self.store.put(key, value)

    # -- failure injection ---------------------------------------------------
    def fail(self) -> None:
        """Mark the server down; subsequent requests raise."""
        if self.alive:
            self.alive = False
            self.alive_transitions.append((self.env.now, False))

    def recover(self) -> None:
        if not self.alive:
            self.alive = True
            self.alive_transitions.append((self.env.now, True))

    def downtime_windows(self) -> List[Tuple[float, Optional[float]]]:
        """``(down_at, up_at)`` per outage; ``up_at`` is None while down."""
        windows: List[Tuple[float, Optional[float]]] = []
        for at, now_alive in self.alive_transitions:
            if not now_alive:
                windows.append((at, None))
            elif windows and windows[-1][1] is None:
                windows[-1] = (windows[-1][0], at)
        return windows

    # -- timed operations ------------------------------------------------------
    def multiget_process(self, keys: Iterable[int]):
        """Simulation process serving a multiget; yields the value dict.

        The caller is responsible for network costs; this process models
        only server-side queueing and service time.
        """
        keys = list(keys)
        request = self.pipeline.request()
        yield request
        try:
            if not self.alive:
                raise StorageServerDown(f"storage server {self.server_id} is down")
            values = self.store.multiget(keys)
            nbytes = sum(len(v) for v in values.values())
            yield self.env.timeout(self.service.service_time(len(keys), nbytes))
            self.requests_served += 1
            self.keys_served += len(keys)
            self.bytes_served += nbytes
        finally:
            self.pipeline.release(request)
        return values

    def serve_process(self, num_keys: int, nbytes: int):
        """Metadata-only multiget: queueing + service time without data.

        Large experiment sweeps simulate thousands of queries over the same
        immutable graph; they account sizes and ownership from precomputed
        arrays and use this path so the store itself is not re-decoded per
        request. Timing and contention are identical to
        :meth:`multiget_process`.

        The gather hot path no longer spawns this generator: its fused
        callback twin, ``repro.core.operators.gather._ServerFetch``, drives
        the same pipeline ``Resource`` with the same stage order. Keep the
        two in lockstep when changing service semantics.
        """
        request = self.pipeline.request()
        yield request
        try:
            if not self.alive:
                raise StorageServerDown(f"storage server {self.server_id} is down")
            yield self.env.timeout(self.service.service_time(num_keys, nbytes))
            self.requests_served += 1
            self.keys_served += num_keys
            self.bytes_served += nbytes
        finally:
            self.pipeline.release(request)

    def multiput_process(self, entries, nbytes: int):
        """Simulation process serving a batched write (graph updates).

        ``entries`` is a sequence of ``(key, payload)`` pairs; ``payload``
        may be ``None`` in accounting mode (sweep experiments track sizes
        and ownership from precomputed arrays without materialising the
        store — the write twin of :meth:`serve_process`), in which case
        ``nbytes`` carries the encoded sizes. Writes occupy the same FIFO
        pipeline as reads, so update churn queues behind (and delays)
        query fetches, which is the contention the live-update experiments
        measure.
        """
        entries = list(entries)
        request = self.pipeline.request()
        yield request
        try:
            if not self.alive:
                raise StorageServerDown(f"storage server {self.server_id} is down")
            yield self.env.timeout(self.service.write_time(len(entries), nbytes))
            for key, payload in entries:
                if payload is not None:
                    self.store.put(key, payload)
            self.writes_served += 1
            self.records_written += len(entries)
            self.bytes_written += nbytes
        finally:
            self.pipeline.release(request)
        return len(entries)

    def put_process(self, key: int, value: bytes):
        """Simulation process serving a single put."""
        request = self.pipeline.request()
        yield request
        try:
            if not self.alive:
                raise StorageServerDown(f"storage server {self.server_id} is down")
            yield self.env.timeout(self.service.write_time(1, len(value)))
            self.store.put(key, value)
            self.writes_served += 1
            self.records_written += 1
            self.bytes_written += len(value)
        finally:
            self.pipeline.release(request)

    def utilization(self, elapsed: float) -> float:
        return self.pipeline.utilization(elapsed)
