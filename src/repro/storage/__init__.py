"""Decoupled storage tier: RAMCloud-like partitioned key-value store."""

from .kvstore import KVStoreError, LogStructuredStore
from .murmur import hash_node_id, murmur3_32
from .placement import (
    HeatTracker,
    Placement,
    PlacementDirectory,
    heat_by_server,
    pick_read_replica,
)
from .records import AdjacencyRecord, graph_to_records, record_for_node
from .server import StorageServer, StorageServerDown
from .tier import StorageTier, modulo_partitioner, murmur_partitioner

__all__ = [
    "AdjacencyRecord",
    "HeatTracker",
    "KVStoreError",
    "LogStructuredStore",
    "Placement",
    "PlacementDirectory",
    "StorageServer",
    "StorageServerDown",
    "StorageTier",
    "graph_to_records",
    "hash_node_id",
    "heat_by_server",
    "modulo_partitioner",
    "murmur3_32",
    "murmur_partitioner",
    "pick_read_replica",
    "record_for_node",
]
