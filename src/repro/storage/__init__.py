"""Decoupled storage tier: RAMCloud-like partitioned key-value store."""

from .kvstore import KVStoreError, LogStructuredStore
from .murmur import hash_node_id, murmur3_32
from .records import AdjacencyRecord, graph_to_records, record_for_node
from .server import StorageServer, StorageServerDown
from .tier import StorageTier, modulo_partitioner, murmur_partitioner

__all__ = [
    "AdjacencyRecord",
    "KVStoreError",
    "LogStructuredStore",
    "StorageServer",
    "StorageServerDown",
    "StorageTier",
    "graph_to_records",
    "hash_node_id",
    "modulo_partitioner",
    "murmur3_32",
    "murmur_partitioner",
    "record_for_node",
]
