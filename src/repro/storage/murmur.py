"""MurmurHash3 (x86, 32-bit) — the hash RAMCloud-style stores use to
partition keys across storage servers (paper §4.1 names MurmurHash3).

Pure-Python reference implementation; verified against the canonical
test vectors in the test suite.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF
_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """32-bit MurmurHash3 of ``data``."""
    length = len(data)
    h = seed & _MASK32
    rounded = length & ~0x3

    for offset in range(0, rounded, 4):
        k = struct.unpack_from("<I", data, offset)[0]
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    k = 0
    tail = length & 0x3
    if tail >= 3:
        k ^= data[rounded + 2] << 16
    if tail >= 2:
        k ^= data[rounded + 1] << 8
    if tail >= 1:
        k ^= data[rounded]
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k

    return _fmix32(h ^ length)


def hash_node_id(node_id: int, seed: int = 0) -> int:
    """Hash an integer node id (little-endian 8-byte encoding)."""
    return murmur3_32(struct.pack("<q", node_id), seed)
