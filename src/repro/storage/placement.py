"""Storage-side placement primitives: record heat and the placement directory.

The paper keeps storage placement deliberately dumb — MurmurHash3 of the
key, mod servers (§2.3/§4.1) — and recovers locality purely by routing
queries toward data. PHD-Store and Peng et al.'s workload-based
fragmentation (PAPERS.md) make the complementary move: *move data toward
queries*. This module holds the two data structures that move needs,
kept storage-side so the tier can consult them on every read and write:

:class:`HeatTracker`
    A decayed access-frequency counter per record, keyed by *compact
    node index* (the cache/gather key space — dense, append-stable under
    live updates). Touches are vectorised over the miss arrays the
    gather path already produces; decay is lazy (applied on touch and on
    read), with a half-life measured in **simulated** seconds, so heat
    reflects the workload the simulation actually served, at any scale.

:class:`PlacementDirectory`
    A mutable overlay on the hash partitioner that stores only
    *exceptions*: records that were migrated away from their hash home
    or replicated onto extra servers. An empty directory is bit-identical
    to plain ``murmur_partitioner`` behaviour — every lookup guards on
    emptiness before doing any work. Entries are dual-keyed, by storage
    key (original node id — the key space ``StorageTier`` partitions and
    writes with) and by cache key (compact index — what the gather hot
    path routes with), because both paths must agree on where a record
    lives at every simulated instant.

Read-any / write-all-or-invalidate:
:func:`pick_read_replica` implements read-any (least-loaded live replica
by pipeline occupancy, deterministic tie-break); the write side lives in
:meth:`StorageTier.multiput_process`, which expands directory entries to
every replica and drops replicas whose server failed mid-write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .server import StorageServer


class HeatTracker:
    """Exponentially-decayed access counts per record (compact index).

    ``heat[i]`` halves every ``half_life_s`` simulated seconds of
    inactivity; a touch at time ``t`` first decays the stored value from
    its last-touch stamp, then adds the touch weight. Decay is lazy, so
    idle records cost nothing; :meth:`snapshot` applies the decay
    read-only, leaving the stamps in place.
    """

    __slots__ = ("half_life_s", "_heat", "_stamp", "touches")

    def __init__(self, half_life_s: float, size: int = 0) -> None:
        if half_life_s <= 0:
            raise ValueError("heat half-life must be positive")
        self.half_life_s = half_life_s
        self._heat = np.zeros(max(size, 1), dtype=np.float64)
        self._stamp = np.zeros(max(size, 1), dtype=np.float64)
        self.touches = 0

    def __len__(self) -> int:
        return self._heat.shape[0]

    def _ensure(self, size: int) -> None:
        if size > self._heat.shape[0]:
            grown = max(size, 2 * self._heat.shape[0])
            heat = np.zeros(grown, dtype=np.float64)
            stamp = np.zeros(grown, dtype=np.float64)
            heat[: self._heat.shape[0]] = self._heat
            stamp[: self._stamp.shape[0]] = self._stamp
            self._heat = heat
            self._stamp = stamp

    def touch(self, keys: np.ndarray, now: float, weight: float = 1.0) -> None:
        """Record accesses to ``keys`` (distinct compact indices) at ``now``.

        Vectorised: one call per gather/write batch. ``keys`` must be
        deduplicated (the gather miss array and the dirty-index array
        both are); duplicated keys would each decay from the same stamp
        and lose all but one weight.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        self._ensure(int(keys.max()) + 1)
        decay = np.exp2((self._stamp[keys] - now) / self.half_life_s)
        self._heat[keys] = self._heat[keys] * decay + weight
        self._stamp[keys] = now
        self.touches += keys.size

    def heat_of(self, key: int, now: float) -> float:
        """Decayed heat of one compact index at ``now``."""
        if key >= self._heat.shape[0]:
            return 0.0
        decay = 2.0 ** ((self._stamp[key] - now) / self.half_life_s)
        return float(self._heat[key] * decay)

    def snapshot(self, now: float) -> np.ndarray:
        """Decayed heat of every record at ``now`` (read-only; stamps stay)."""
        decay = np.exp2((self._stamp - now) / self.half_life_s)
        return self._heat * decay

    def top_k(self, k: int, now: float,
              threshold: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """The ``k`` hottest records above ``threshold``, hottest first.

        Returns ``(indices, heats)`` — both possibly shorter than ``k``.
        """
        heats = self.snapshot(now)
        hot = np.flatnonzero(heats >= threshold) if threshold > 0 else (
            np.flatnonzero(heats > 0)
        )
        if hot.size == 0:
            return hot, heats[hot]
        if hot.size > k:
            part = np.argpartition(heats[hot], hot.size - k)[-k:]
            hot = hot[part]
        order = np.argsort(heats[hot], kind="stable")[::-1]
        hot = hot[order]
        return hot, heats[hot]


class Placement:
    """One directory exception: where a record *actually* lives.

    ``replicas`` is an ordered tuple of server ids currently holding the
    record; ``home`` is the hash owner the record reverts to when the
    exception is dropped. A replicated record keeps its home in the
    replica set; a migrated record's set does not contain its home.
    """

    __slots__ = ("key", "cache_key", "home", "replicas")

    def __init__(self, key: int, cache_key: int, home: int,
                 replicas: Tuple[int, ...]) -> None:
        self.key = key
        self.cache_key = cache_key
        self.home = home
        self.replicas = replicas

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Placement(key={self.key}, cache_key={self.cache_key}, "
                f"home={self.home}, replicas={self.replicas})")


class PlacementDirectory:
    """Exception-only overlay on the hash partitioner.

    Empty ⇒ zero-cost: every consumer guards on ``by_key`` /
    ``by_cache_key`` truthiness before touching the overlay, so a
    service built with the placement subsystem attached but an empty
    directory takes exactly the pre-placement code paths (the parity
    regression tests pin this). Mutations (``place`` / ``drop`` /
    ``drop_replica``) happen at the simulated instant the corresponding
    copies landed or were lost — the PlacementManager and the tier's
    write path are the only mutators.
    """

    def __init__(self) -> None:
        #: storage key (original node id) -> Placement; the write/fetch paths.
        self.by_key: Dict[int, Placement] = {}
        #: cache key (compact index) -> the same Placement; the gather path.
        self.by_cache_key: Dict[int, Placement] = {}
        #: Monotonic edit counter (diagnostics; bumped on every mutation).
        self.version = 0

    def __len__(self) -> int:
        return len(self.by_key)

    def __bool__(self) -> bool:
        return bool(self.by_key)

    def entries(self) -> List[Placement]:
        return list(self.by_key.values())

    def get(self, key: int) -> Optional[Placement]:
        return self.by_key.get(key)

    def place(self, key: int, cache_key: int, home: int,
              replicas: Sequence[int]) -> Placement:
        """Install/overwrite the exception for ``key``.

        ``replicas`` must be non-empty and duplicate-free; order is
        meaningful (deterministic tie-breaks scan it in order).
        """
        replica_tuple = tuple(int(s) for s in replicas)
        if not replica_tuple:
            raise ValueError("a placement needs at least one replica")
        if len(set(replica_tuple)) != len(replica_tuple):
            raise ValueError(f"duplicate replicas in {replica_tuple}")
        entry = self.by_key.get(key)
        if entry is None:
            entry = Placement(int(key), int(cache_key), int(home),
                              replica_tuple)
            self.by_key[int(key)] = entry
            self.by_cache_key[int(cache_key)] = entry
        else:
            entry.replicas = replica_tuple
        self.version += 1
        return entry

    def drop(self, key: int) -> Optional[Placement]:
        """Remove the exception: ``key`` reverts to its hash home."""
        entry = self.by_key.pop(key, None)
        if entry is not None:
            self.by_cache_key.pop(entry.cache_key, None)
            self.version += 1
        return entry

    def drop_replica(self, key: int, server_id: int) -> bool:
        """Remove one replica (a failed copy) from ``key``'s set.

        Returns True if the replica was removed. The *last* replica is
        never removed this way — a fully-lost record keeps its (dead)
        location so reads surface :class:`StorageServerDown` instead of
        silently routing to a hash home that no longer holds the bytes.
        """
        entry = self.by_key.get(key)
        if entry is None or server_id not in entry.replicas:
            return False
        remaining = tuple(s for s in entry.replicas if s != server_id)
        if not remaining:
            return False
        entry.replicas = remaining
        self.version += 1
        return True

    def replicas_for(self, key: int, home: int) -> Tuple[int, ...]:
        """Where ``key`` lives: its exception's replicas, or ``(home,)``."""
        entry = self.by_key.get(key)
        if entry is None:
            return (home,)
        return entry.replicas

    def replicated_keys(self) -> int:
        return sum(1 for e in self.by_key.values() if len(e.replicas) > 1)

    def migrated_keys(self) -> int:
        return sum(
            1 for e in self.by_key.values()
            if e.home not in e.replicas
        )


def pick_read_replica(replicas: Tuple[int, ...],
                      servers: Sequence["StorageServer"]) -> int:
    """Read-any: the least-loaded *live* replica (ties → directory order).

    Load is instantaneous pipeline occupancy (in-service + queued), the
    same signal adaptive routing's feedback reads. Dead replicas are
    skipped — replication doubles as read failover — falling back to the
    first replica (whose :class:`StorageServerDown` then surfaces
    normally) only when every copy is on a dead server.
    """
    best = -1
    best_load = None
    for sid in replicas:
        server = servers[sid]
        if not server.alive:
            continue
        pipeline = server.pipeline
        load = pipeline.in_use + pipeline.queue_length
        if best_load is None or load < best_load:
            best, best_load = sid, load
    return best if best >= 0 else replicas[0]


def heat_by_server(
    heat: HeatTracker,
    directory: Optional[PlacementDirectory],
    owner_of: np.ndarray,
    node_ids: np.ndarray,
    num_servers: int,
    now: float,
    k: int = 5,
) -> List[List[Tuple[int, float]]]:
    """Top-``k`` hottest records per server, as ``(node_id, heat)`` pairs.

    A record counts toward every server in its replica set (directory
    exceptions), or toward its hash owner. Observability helper for
    ``WorkloadReport.per_server_stats``; never on a hot path.
    """
    per_server: List[List[Tuple[float, int]]] = [[] for _ in range(num_servers)]
    hot_idx, heats = heat.top_k(max(k * num_servers, k), now)
    by_cache_key = directory.by_cache_key if directory is not None else {}
    for idx, h in zip(hot_idx.tolist(), heats.tolist(), strict=True):
        entry = by_cache_key.get(idx)
        sids: Iterable[int] = (
            entry.replicas if entry is not None
            else (int(owner_of[idx]),) if idx < owner_of.shape[0]
            else ()
        )
        for sid in sids:
            per_server[sid].append((h, int(node_ids[idx])))
    return [
        [(node, round(h, 3)) for h, node in sorted(bucket, reverse=True)[:k]]
        for bucket in per_server
    ]
