"""Rule registry and shared AST plumbing for the analyzer.

A rule is a pure function over one parsed module: it receives a
:class:`ModuleContext` (AST + parent links + import-alias table + path
predicates) and yields ``(line, col, message)`` findings. Rules register
themselves with :func:`rule`, which assigns the code every diagnostic,
waiver, and CI log refers to.

Rule codes are stable API: **D** = determinism, **K** = kernel contracts,
**S** = simulated-time accounting. Renumbering a code silently orphans
every waiver that names it, so codes are append-only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

Finding = Tuple[int, int, str]  # (line, col, message)


# -- module context -----------------------------------------------------------
@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one source module."""

    path: str  # repo-relative, posix separators, e.g. "src/repro/sim/events.py"
    tree: ast.Module
    source: str
    #: local name -> canonical dotted module/object it refers to
    #: (``np`` -> ``numpy``, ``perf_counter`` -> ``time.perf_counter``).
    aliases: Dict[str, str] = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                # repro: allow D104 — AST-node identity key, lookup only
                self._parents[id(child)] = node
        self.aliases = _collect_aliases(self.tree)

    # -- tree navigation ---------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        # repro: allow D104 — AST-node identity key, lookup only
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- name resolution ---------------------------------------------------
    def resolve_call(self, func: ast.AST) -> str:
        """Canonical dotted name of a call target ("" if not name-shaped).

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        module imported ``numpy as np``; a bare ``perf_counter`` resolves
        through ``from time import perf_counter``.
        """
        parts = dotted_name(func)
        if not parts:
            return ""
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    # -- path predicates ---------------------------------------------------
    def in_package(self, *segments: str) -> bool:
        """True when the module lives under ``repro/<segment>/`` for any
        given segment (or *is* ``repro/<segment>.py``)."""
        for segment in segments:
            if f"repro/{segment}/" in self.path or \
                    self.path.endswith(f"repro/{segment}.py"):
                return True
        return False

    def is_module(self, *names: str) -> bool:
        return any(self.path.endswith(name) for name in names)


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


# -- AST helpers shared by rule modules ---------------------------------------
def dotted_name(node: ast.AST) -> List[str]:
    """``a.b.c`` attribute chain as a list (empty for non-name shapes)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def receiver_segments(node: ast.AST) -> List[str]:
    """Name segments of a method-call receiver, skipping subscripts.

    ``self.tier.servers[sid].store.delete`` -> ``["self", "tier",
    "servers", "store", "delete"]``. Call results terminate the chain
    (their type is unknowable statically).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts[::-1]
        else:
            return parts[::-1]


def is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function's own body contains yield / yield from
    (yields inside nested defs/lambdas don't count)."""
    return bool(own_yields(func))


def own_yields(func: ast.FunctionDef | ast.AsyncFunctionDef) -> List[ast.AST]:
    """Yield/YieldFrom nodes belonging to ``func`` itself (not nested defs)."""
    found: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                found.append(child)
            visit(child)

    visit(func)
    return found


# -- registry ----------------------------------------------------------------
Checker = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    summary: str
    checker: Checker

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self.checker(ctx)


RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str) -> Callable[[Checker], Checker]:
    """Register ``checker`` under ``code`` in the global rule registry."""

    def decorate(checker: Checker) -> Checker:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code=code, name=name, summary=summary,
                           checker=checker)
        return checker

    return decorate


def all_rules() -> List[Rule]:
    return [RULES[code] for code in sorted(RULES)]


def get_rule(code: str) -> Rule:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {', '.join(sorted(RULES))}"
        ) from None


__all__ = [
    "Checker",
    "Finding",
    "ModuleContext",
    "RULES",
    "Rule",
    "all_rules",
    "dotted_name",
    "get_rule",
    "is_generator",
    "own_yields",
    "receiver_segments",
    "rule",
]
