"""D rules — determinism.

Simulated results must be a pure function of (program, seeds). Anything
that reads the wall clock, global RNG state, or CPython implementation
details (set iteration order, object addresses) can silently break the
bit-identical replay contract that every benchmark comparison rests on.

Codes
-----
D101
    wall-clock read outside ``bench/`` (``time.time``, ``perf_counter``,
    ``datetime.now``, ...). Benchmarks may measure wall clock for artifact
    *metadata*; simulation code never may.
D102
    module-level RNG call (``random.random()``, ``np.random.rand()``, ...)
    — global RNG state makes replay depend on call order across the whole
    process. Thread seeded ``np.random.default_rng``/``random.Random``
    generator objects explicitly instead.
D103
    iteration over a ``set``/``frozenset`` in an order-sensitive package
    (``sim``, ``core``, ``storage``, ``workloads``): set order is a hash
    implementation detail; wrap in ``sorted(...)`` before any use whose
    order can reach event scheduling.
D104
    ``id()`` used as a value — object addresses vary run to run, so they
    must never feed keys, sort orders, or anything result-visible.
D105
    ``dict.popitem()`` without ``last=`` — "pop an arbitrary item" reads
    as nondeterministic; use ``popitem(last=False)`` / ``last=True`` on an
    ``OrderedDict`` to make the intended order explicit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from .registry import Finding, ModuleContext, rule

#: Canonical wall-clock reading callables (D101).
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    "time.strftime",
})

#: ``datetime``-flavoured wall-clock constructors: matched by the final
#: two segments so ``datetime.datetime.now`` and an aliased
#: ``datetime.now`` both hit.
DATETIME_TAILS = frozenset({
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
})

#: ``random`` module functions that touch the hidden global Random (D102).
#: ``random.Random(seed)`` — constructing an explicit generator — is fine.
RANDOM_GLOBAL = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes", "binomialvariate",
})

#: ``numpy.random`` attributes that do NOT touch the legacy global state:
#: generator/bit-generator constructors and seeding machinery.
NUMPY_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
})

#: Callables whose output does not depend on argument iteration order —
#: a set flowing straight into one of these is harmless (D103).
ORDER_INSENSITIVE_SINKS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "len", "any",
    "all",
})

#: Packages whose iteration order can reach event scheduling (D103):
#: the kernel itself, the serving stack, storage, and the workload
#: generators whose streams must replay bit-identically.
ORDER_SENSITIVE_PACKAGES = ("sim", "core", "storage", "workloads")


@rule("D101", "wall-clock-read",
      "wall-clock read outside bench/ metadata emission")
def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.in_package("bench"):
        # Benchmarks measure wall clock for artifact metadata; that is
        # the one sanctioned use (simulated rows stay deterministic).
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve_call(node.func)
        if not name:
            continue
        tail = tuple(name.split(".")[-2:])
        if name in WALL_CLOCK or (len(tail) == 2 and tail in DATETIME_TAILS):
            yield (node.lineno, node.col_offset,
                   f"wall-clock read `{name}()` in simulation code; "
                   "simulated results must not depend on real time "
                   "(only bench/ may measure wall clock, for metadata)")


@rule("D102", "global-rng",
      "module-level RNG call (unseeded global random state)")
def check_global_rng(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve_call(node.func)
        if not name:
            continue
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2 \
                and parts[1] in RANDOM_GLOBAL:
            yield (node.lineno, node.col_offset,
                   f"`{name}()` uses the process-global RNG; thread an "
                   "explicit seeded `random.Random(seed)` instead")
        elif len(parts) >= 3 and parts[0] == "numpy" \
                and parts[1] == "random" and parts[2] not in NUMPY_RANDOM_OK:
            yield (node.lineno, node.col_offset,
                   f"`{name}()` uses numpy's legacy global RNG; thread an "
                   "explicit `np.random.default_rng(seed)` Generator "
                   "instead")


def _set_typed_locals(func: ast.AST) -> Set[str]:
    """Local names statically known to hold a set in ``func``'s body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            if _is_set_expr(node.value, names):
                names.add(node.targets[0].id)
            else:
                names.discard(node.targets[0].id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation).replace(" ", "")
            if annotation.lower().startswith(("set", "frozenset",
                                              "typing.set", "typing.frozenset",
                                              "abstractset",
                                              "typing.abstractset")):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left, set_vars) or \
            _is_set_expr(node.right, set_vars)
    return False


def _order_insensitive_consumer(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when the iteration feeds only an order-insensitive sink.

    Covers ``sorted(x for x in some_set)`` (the comprehension is the sole
    argument of a sink call) and set-producing comprehensions.
    """
    comp = None
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            comp = ancestor
            break
        if isinstance(ancestor, ast.stmt):
            break
    if comp is None:
        return False
    if isinstance(comp, ast.SetComp):
        return True  # produces a set: no order leaks out of it
    parent = ctx.parent(comp)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_SINKS)


@rule("D103", "set-iteration",
      "iteration over a set in an order-sensitive package")
def check_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package(*ORDER_SENSITIVE_PACKAGES):
        return
    # Per-scope set-typed name tracking: module scope plus each function.
    # repro: allow D104 — AST-node identity key, lookup only
    scopes: Dict[int, Set[str]] = {id(ctx.tree): _set_typed_locals(ctx.tree)}

    def set_vars_for(node: ast.AST) -> Set[str]:
        func = ctx.enclosing_function(node)
        scope = func if func is not None else ctx.tree
        key = id(scope)  # repro: allow D104 — AST-node identity key, lookup only
        if key not in scopes:
            scopes[key] = _set_typed_locals(scope)
        return scopes[key]

    def flag(iter_node: ast.AST, where: str) -> Iterator[Finding]:
        yield (iter_node.lineno, iter_node.col_offset,
               f"iteration over a set {where}: set order is a hash-table "
               "implementation detail; wrap in sorted(...) (or waive if "
               "provably order-insensitive)")

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_vars_for(node)):
                yield from flag(node.iter, "in a for loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter, set_vars_for(node)) and \
                        not _order_insensitive_consumer(ctx, comp.iter):
                    yield from flag(comp.iter, "in a comprehension")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple") and node.args:
            if _is_set_expr(node.args[0], set_vars_for(node)):
                yield from flag(node, f"materialized via {node.func.id}()")


@rule("D104", "id-as-key",
      "id() used as a value (object addresses vary across runs)")
def check_id_usage(ctx: ModuleContext) -> Iterator[Finding]:
    shadowed = "id" in ctx.aliases
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "id" and not shadowed:
            yield (node.lineno, node.col_offset,
                   "id() yields a memory address — it varies run to run "
                   "and must never feed sort keys, hashes, or "
                   "result-visible state")


@rule("D105", "popitem-arbitrary",
      "dict.popitem() without last= (arbitrary-item pop)")
def check_popitem(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "popitem" \
                and not node.args and not node.keywords:
            yield (node.lineno, node.col_offset,
                   "popitem() without last= pops an 'arbitrary' item; "
                   "make the order explicit with "
                   "OrderedDict.popitem(last=...)")


__all__ = [name for name in dir() if name.startswith("check_")]
