"""CLI: ``python -m repro.analysis [paths] [--strict] [--format json]``.

Exit status 0 when every violation is waived (and, under ``--strict``,
no waiver is stale); 1 otherwise. ``--format json`` emits the
machine-readable report nightly CI archives (validate saved reports with
``python -m repro.analysis.validate <file>``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .engine import analyze_paths, render_json, render_text
from .registry import all_rules

#: What the linter covers when no path is given: the package sources.
DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & simulation-invariant linter for the "
                    "repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on unused (stale) waivers")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the nightly trend artifact)")
    parser.add_argument(
        "--show-waived", action="store_true",
        help="include waived violations in text output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<26} {rule.summary}")
        return 0
    report = analyze_paths([Path(p) for p in args.paths])
    if args.format == "json":
        print(render_json(report, strict=args.strict))
    else:
        print(render_text(report, strict=args.strict,
                          show_waived=args.show_waived))
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":
    sys.exit(main())
