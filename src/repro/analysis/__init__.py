"""Static determinism & simulation-invariant linter (``python -m repro.analysis``).

Every headline claim in this reproduction rests on invariants that used to
be enforced only by convention: workload streams replay bit-identically
across schemes, storage/cache mutation flows through timed ``*_process``
pipelines in simulated time, and the hot-path kernel has sharp contracts
(``__slots__`` everywhere, single-waiter pooled timeouts, Event-only
yields, insertion-order tie-breaking). This package machine-checks them:

* :mod:`repro.analysis.determinism` — **D** rules: no wall-clock reads, no
  global RNG state, no set-order-dependent iteration, no ``id()`` keys.
* :mod:`repro.analysis.kernel` — **K** rules: ``__slots__`` contracts,
  pooled bare-timeout retention, Event-only process yields.
* :mod:`repro.analysis.simtime` — **S** rules: mutation only inside timed
  pipelines, benchmark artifacts only through ``emit()``.

Violations carry a rule code and can be waived inline with a reason::

    risky_call()  # repro: allow D101 — setup-only wall clock, not simulated

Run ``python -m repro.analysis --list-rules`` for the catalogue, and see
:mod:`repro.analysis.sanitize` for the runtime counterpart
(``REPRO_SANITIZE=1``).
"""

from .diagnostics import Diagnostic, Waiver, parse_waivers
from .engine import AnalysisReport, analyze_paths, analyze_source, render_json, render_text
from .registry import RULES, Rule, all_rules, get_rule

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "RULES",
    "Rule",
    "Waiver",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "parse_waivers",
    "render_json",
    "render_text",
]
