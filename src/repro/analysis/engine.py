"""Analysis engine: file discovery, rule execution, waivers, rendering.

The engine parses each module once, runs every registered rule over the
shared :class:`~repro.analysis.registry.ModuleContext`, then applies the
inline waivers from :mod:`repro.analysis.diagnostics`. Its JSON output is
the machine-readable artifact nightly CI archives for lint trends (see
:mod:`repro.analysis.validate`).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .diagnostics import Diagnostic, parse_waivers
from .registry import RULES, ModuleContext, all_rules

# Importing the rule modules registers their checks.
from . import determinism, kernel, simtime  # noqa: F401  (registration side effect)

#: Schema version of the JSON report; bump when keys change shape.
REPORT_VERSION = 1


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_analyzed: int = 0
    #: (path, line, text) of waiver comments that parsed but missed the
    #: mandatory reason — always an error.
    malformed_waivers: List[Dict[str, object]] = field(default_factory=list)
    #: waivers that matched no diagnostic (path, line, code, reason) —
    #: stale waivers are an error under --strict so they cannot mask a
    #: future violation at a different line.
    unused_waivers: List[Dict[str, object]] = field(default_factory=list)
    #: parse failures (path, error).
    errors: List[Dict[str, str]] = field(default_factory=list)

    @property
    def unwaived(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.waived]

    @property
    def waived(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.waived]

    def ok(self, strict: bool = False) -> bool:
        if self.unwaived or self.errors or self.malformed_waivers:
            return False
        if strict and self.unused_waivers:
            return False
        return True

    def as_dict(self, strict: bool = False) -> Dict[str, object]:
        return {
            "title": "repro.analysis report",
            "version": REPORT_VERSION,
            "strict": strict,
            "ok": self.ok(strict),
            "rules": {r.code: r.summary for r in all_rules()},
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "summary": {
                "files_analyzed": self.files_analyzed,
                "violations": len(self.diagnostics),
                "waived": len(self.waived),
                "unwaived": len(self.unwaived),
                "per_rule": self.per_rule_counts(),
            },
            "malformed_waivers": self.malformed_waivers,
            "unused_waivers": self.unused_waivers,
            "errors": self.errors,
        }

    def per_rule_counts(self) -> Dict[str, Dict[str, int]]:
        counts: Dict[str, Dict[str, int]] = {}
        for diag in self.diagnostics:
            entry = counts.setdefault(diag.code, {"waived": 0, "unwaived": 0})
            entry["waived" if diag.waived else "unwaived"] += 1
        return counts


def _normalize_path(path: str) -> str:
    return path.replace("\\", "/")


def analyze_source(source: str, path: str,
                   report: Optional[AnalysisReport] = None) -> List[Diagnostic]:
    """Run every rule over one module's source text.

    ``path`` is the repo-relative path the path-scoped rules dispatch on
    (tests pass virtual paths like ``repro/sim/fixture.py`` to target a
    package's rule set). Waivers are applied in place; unused ones are
    recorded on ``report`` when given.
    """
    path = _normalize_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        if report is not None:
            report.errors.append({"path": path, "error": str(exc)})
        return []
    ctx = ModuleContext(path=path, tree=tree, source=source)
    waivers = parse_waivers(source)

    diagnostics: List[Diagnostic] = []
    for rule in all_rules():
        for line, col, message in rule.run(ctx):
            diagnostics.append(Diagnostic(
                code=rule.code, path=path, line=line, col=col,
                message=message,
            ))
    diagnostics.sort(key=lambda d: (d.line, d.col, d.code))

    used = set()
    for diag in diagnostics:
        waiver = waivers.lookup(diag.code, diag.line)
        if waiver is not None:
            diag.waived = True
            diag.waiver_reason = waiver.reason
            used.add((waiver.code, waiver.line, waiver.module_level))

    if report is not None:
        for line, text in waivers.malformed:
            report.malformed_waivers.append(
                {"path": path, "line": line, "text": text,
                 "error": "waiver missing mandatory reason "
                          "(`# repro: allow CODE — reason`)"})
        for waiver in waivers.all_waivers():
            if waiver.code not in RULES:
                report.malformed_waivers.append(
                    {"path": path, "line": waiver.line, "text": waiver.code,
                     "error": f"waiver names unknown rule {waiver.code!r}"})
            elif (waiver.code, waiver.line, waiver.module_level) not in used:
                report.unused_waivers.append(
                    {"path": path, "line": waiver.line, "code": waiver.code,
                     "reason": waiver.reason})
    return diagnostics


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Sequence[Path],
                  root: Optional[Path] = None) -> AnalysisReport:
    """Analyze every ``*.py`` under ``paths`` (files or directories)."""
    report = AnalysisReport()
    root = root or Path.cwd()
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = file_path
        try:
            source = file_path.read_text()
        except OSError as exc:
            report.errors.append({"path": str(rel), "error": str(exc)})
            continue
        report.diagnostics.extend(
            analyze_source(source, str(rel), report=report))
        report.files_analyzed += 1
    return report


# -- rendering ----------------------------------------------------------------
def render_text(report: AnalysisReport, strict: bool = False,
                show_waived: bool = False) -> str:
    lines: List[str] = []
    for error in report.errors:
        lines.append(f"{error['path']}: PARSE ERROR {error['error']}")
    for item in report.malformed_waivers:
        lines.append(f"{item['path']}:{item['line']}: BAD WAIVER "
                     f"{item['error']}")
    for diag in report.diagnostics:
        if diag.waived and not show_waived:
            continue
        lines.append(diag.render())
    if strict:
        for item in report.unused_waivers:
            lines.append(f"{item['path']}:{item['line']}: UNUSED WAIVER "
                         f"{item['code']} ({item['reason']})")
    summary = (f"{report.files_analyzed} files, "
               f"{len(report.diagnostics)} violations "
               f"({len(report.unwaived)} unwaived, "
               f"{len(report.waived)} waived)")
    lines.append(("OK " if report.ok(strict) else "FAIL ") + summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, strict: bool = False) -> str:
    return json.dumps(report.as_dict(strict), indent=2, sort_keys=True)


__all__ = [
    "AnalysisReport",
    "REPORT_VERSION",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "render_json",
    "render_text",
]
