"""Diagnostics and the inline-waiver syntax.

A diagnostic pins one rule violation to a file/line. Violations are
waived — never silenced — with an inline comment carrying the rule code
*and a reason*, so every deliberate exception to an invariant stays
grep-able::

    self.store.put(key, value)  # repro: allow S301 — untimed bulk load

The waiver may sit on the flagged line or on the line directly above it
(for lines too long to share with a comment). A module-level waiver
(``# repro: allow-module K201 — reason``, anywhere in the file) waives
the rule for the whole file; use it only for deliberately-frozen modules.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Matches ``repro: allow <code>[, <code>] <sep> reason`` where <sep> is
#: an em-dash, ``--`` or ``:`` — the reason itself is mandatory.
_WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow(?P<module>-module)?\s+"
    r"(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"\s*(?:—|--|:)\s*(?P<reason>\S.*)$"
)

#: A waiver comment that parses *except* for the mandatory reason — kept
#: distinct so the engine can reject it loudly instead of ignoring it.
_REASONLESS_RE = re.compile(
    r"#\s*repro:\s*allow(-module)?\s+[A-Z]\d{3}"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed inline waiver."""

    code: str
    reason: str
    line: int  # 1-based line the comment sits on
    module_level: bool = False


@dataclass
class Diagnostic:
    """One rule violation at a file/line."""

    code: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }

    def render(self) -> str:
        mark = " (waived: %s)" % self.waiver_reason if self.waived else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{mark}"


@dataclass
class WaiverTable:
    """Waivers of one source file, indexed for the engine."""

    #: line -> list of waivers declared on that line.
    by_line: Dict[int, List[Waiver]] = field(default_factory=dict)
    #: rule code -> module-level waiver.
    module: Dict[str, Waiver] = field(default_factory=dict)
    #: malformed waiver comments (missing reason): (line, text).
    malformed: List[Tuple[int, str]] = field(default_factory=list)

    def lookup(self, code: str, line: int) -> Waiver | None:
        """The waiver covering ``code`` at ``line``, if any.

        Checks the flagged line, the line directly above, then the
        module-level table.
        """
        for candidate in (line, line - 1):
            for waiver in self.by_line.get(candidate, ()):
                if waiver.code == code:
                    return waiver
        return self.module.get(code)

    def all_waivers(self) -> List[Waiver]:
        out = [w for waivers in self.by_line.values() for w in waivers]
        out.extend(self.module.values())
        return out


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every real comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps waiver *examples*
    inside docstrings from registering as actual waivers.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # Unparseable source is reported by the engine as a parse error;
        # waivers in it are moot.
        pass
    return comments


def parse_waivers(source: str) -> WaiverTable:
    """Extract every waiver comment from ``source``."""
    table = WaiverTable()
    for lineno, text in _comment_tokens(source):
        if "repro:" not in text:
            continue
        match = _WAIVER_RE.search(text)
        if match is None:
            if _REASONLESS_RE.search(text):
                table.malformed.append((lineno, text.strip()))
            continue
        module_level = match.group("module") is not None
        reason = match.group("reason").strip()
        for code in re.split(r"\s*,\s*", match.group("codes")):
            waiver = Waiver(code=code, reason=reason, line=lineno,
                            module_level=module_level)
            if module_level:
                table.module[code] = waiver
            else:
                table.by_line.setdefault(lineno, []).append(waiver)
    return table


__all__ = ["Diagnostic", "Waiver", "WaiverTable", "parse_waivers"]
