"""Validate a saved ``repro.analysis --format json`` report.

The nightly workflow archives lint reports as trend artifacts the same
way it archives benchmark JSON; like :mod:`repro.bench.validate`, this
module is the contract check that keeps those artifacts machine-readable:
a report that fails here would silently break whatever tooling later
reads the trend.

Usage::

    python -m repro.analysis --format json > analysis_report.json
    python -m repro.analysis.validate analysis_report.json

Exit status 0 when the report conforms; 1 with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

from .engine import REPORT_VERSION

#: Top-level keys every report owes.
REQUIRED_KEYS = ("title", "version", "strict", "ok", "rules",
                 "diagnostics", "summary")

#: Keys every diagnostic entry owes.
REQUIRED_DIAGNOSTIC_KEYS = ("code", "path", "line", "col", "message",
                            "waived", "waiver_reason")

#: Keys the summary block owes.
REQUIRED_SUMMARY_KEYS = ("files_analyzed", "violations", "waived",
                         "unwaived", "per_rule")


def validate_report(path: Path) -> List[str]:
    """Problems with one report file (empty list = conforming)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable or invalid JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path.name}: top level must be a JSON object"]

    problems = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{path.name}: missing {key!r}")
    if problems:
        return problems

    if payload["version"] != REPORT_VERSION:
        problems.append(
            f"{path.name}: version {payload['version']!r} != "
            f"supported {REPORT_VERSION}")
    if not isinstance(payload["diagnostics"], list):
        problems.append(f"{path.name}: diagnostics must be a list")
    else:
        for index, diag in enumerate(payload["diagnostics"]):
            if not isinstance(diag, dict):
                problems.append(
                    f"{path.name}: diagnostics[{index}] must be an object")
                continue
            for key in REQUIRED_DIAGNOSTIC_KEYS:
                if key not in diag:
                    problems.append(
                        f"{path.name}: diagnostics[{index}] missing {key!r}")
    summary = payload["summary"]
    if not isinstance(summary, dict):
        problems.append(f"{path.name}: summary must be an object")
    else:
        for key in REQUIRED_SUMMARY_KEYS:
            if key not in summary:
                problems.append(f"{path.name}: summary missing {key!r}")
        unwaived = summary.get("unwaived")
        if isinstance(unwaived, int) and payload.get("strict") and \
                payload.get("ok") and unwaived:
            problems.append(
                f"{path.name}: ok=true under strict but "
                f"{unwaived} unwaived violations")
    return problems


def main(argv: List[str]) -> int:
    if len(argv) < 2:
        print("usage: python -m repro.analysis.validate <report.json> ...",
              file=sys.stderr)
        return 2
    problems = []
    for arg in argv[1:]:
        problems.extend(validate_report(Path(arg)))
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print(f"OK {len(argv) - 1} analysis report(s) conform to the "
          "report contract")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
