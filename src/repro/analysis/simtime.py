"""S rules — simulated-time accounting.

Work that touches shared simulated state must be *paid for* in simulated
time, or the benchmarks stop measuring contention. These rules pin the
two accounting contracts: storage/cache mutation flows through the timed
``*_process`` pipelines, and every benchmark artifact flows through
``emit()`` (which attaches the PR 4/6 metadata block CI validates).

Codes
-----
S301
    direct kvstore/cache mutation (``.put``/``.put_many``/``.delete``/
    ``.invalidate_many``/``.load`` on a store- or cache-shaped receiver)
    from a non-generator function in ``core/``/``storage/``: mutation
    outside a timed pipeline lands in zero simulated time and dodges the
    FIFO contention every experiment measures. Untimed *setup* loaders are
    legitimate — waive them with a reason.
S302
    a ``bench/`` module writing artifacts around ``emit()``
    (``write_json_atomic``, ``json.dump``, ``open``, ``.write_text``):
    artifacts that skip ``emit()`` lack the metadata contract and fail
    ``repro.bench.validate`` in CI — or worse, silently drop out of the
    perf trajectory.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .registry import (
    Finding,
    ModuleContext,
    is_generator,
    receiver_segments,
    rule,
)

#: Mutating methods the S301 rule watches.
MUTATORS = frozenset({"put", "put_many", "delete", "invalidate_many", "load"})

#: Receiver path segments that mark a storage/cache object. Matching is
#: by segment (``self.store.put``, ``processor.cache.invalidate_many``,
#: ``tier.servers[sid].store.delete`` all hit); queue-like receivers
#: (``inbox.put`` — a sim Store channel) deliberately do not.
STOREISH = ("store", "cache", "kvstore", "kv")

#: Modules that *implement* the data structures: their internal calls are
#: the structures' own bookkeeping, not simulation-time accounting.
IMPL_MODULES = ("storage/kvstore.py", "core/cache.py")

#: bench modules allowed to touch files: the emit()/validate machinery.
BENCH_IO_MODULES = ("bench/harness.py", "bench/validate.py")

#: File-writing callables banned in bench modules outside the harness.
#: ``open`` is matched only as the bare builtin (``Service.open(...)``
#: class methods are not file I/O).
BENCH_IO_CALLS = frozenset({"json.dump", "json.dumps", "open"})
BENCH_IO_TAILS = frozenset({"write_json_atomic"})
BENCH_IO_METHODS = frozenset({"write_text", "write_bytes"})


def _is_storeish(segments: list) -> bool:
    for segment in segments[:-1]:  # last segment is the method itself
        low = segment.lower()
        if low in STOREISH or low.endswith(("store", "cache")):
            return True
    return False


@rule("S301", "untimed-mutation",
      "kvstore/cache mutation outside a timed *_process pipeline")
def check_untimed_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("core", "storage"):
        return
    if ctx.is_module(*IMPL_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or \
                not isinstance(node.func, ast.Attribute) or \
                node.func.attr not in MUTATORS:
            continue
        segments = receiver_segments(node.func)
        if not _is_storeish(segments):
            continue
        func = ctx.enclosing_function(node)
        if func is not None and is_generator(func):
            continue  # inside a timed pipeline: the yield pays for it
        where = f"`{func.name}`" if func is not None else "module scope"
        yield (node.lineno, node.col_offset,
               f"{'.'.join(segments)}() mutates storage/cache state from "
               f"{where}, which is not a generator: the write lands in "
               "zero simulated time, outside the FIFO pipelines the "
               "experiments measure (waive only for documented untimed "
               "setup)")


@rule("S302", "artifact-bypasses-emit",
      "bench module writes artifacts around emit()")
def check_artifact_emission(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("bench") or ctx.is_module(*BENCH_IO_MODULES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.resolve_call(node.func)
        flagged = (
            name in BENCH_IO_CALLS
            or name.split(".")[-1] in BENCH_IO_TAILS
            or (isinstance(node.func, ast.Attribute)
                and node.func.attr in BENCH_IO_METHODS)
        )
        if flagged:
            yield (node.lineno, node.col_offset,
                   f"`{name or ast.unparse(node.func)}` writes outside "
                   "emit(): benchmark artifacts must go through "
                   "repro.bench.harness.emit so the metadata contract "
                   "(and the perf trajectory) holds")


__all__ = ["check_untimed_mutation", "check_artifact_emission"]
