"""K rules — hot-path kernel contracts.

The PR 4 kernel trades generality for speed, and each trade leaves a
contract behind. These rules make the contracts machine-checked so the
next hot-path rewrite (the batched/vectorized kernel on the ROADMAP)
starts from invariants, not folklore.

Codes
-----
K201
    a class under ``sim/`` (or any Event subclass anywhere) without
    ``__slots__`` — a single slotless class in an event-class hierarchy
    silently re-grows ``__dict__`` for every instance on the hot path.
K202
    a *bare* ``env.timeout(delay)`` result bound to a name that is used
    beyond a single immediate ``yield``: bare timeouts are recycled
    through the environment's free list the moment the waiting process
    advances, so retaining one past the next yield is a use-after-free.
    Pass an explicit ``value=`` (unpooled) if the event must be retained.
K203
    a simulation process (``*_process`` generator or ``_run``) yielding
    an expression that is statically not an Event (literal, tuple,
    f-string, comparison, bare ``yield``): the kernel resumes processes
    only through Events; anything else dies at runtime — catch it in
    review instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from .registry import (
    Finding,
    ModuleContext,
    dotted_name,
    own_yields,
    rule,
)

#: Final base-name segments that mark an event-class hierarchy.
EVENT_BASES = frozenset({
    "Event", "Timeout", "Process", "Condition", "AllOf", "AnyOf",
    "Initialize", "Request",
})

#: Exception hierarchies are exempt from K201: BaseException has a dict
#: anyway (args, traceback), so __slots__ buys nothing.
_EXC_TAILS = ("Exception", "Error", "BaseException", "Warning")

#: Function names treated as simulation processes for K203, beyond the
#: ``*_process`` convention.
PROCESS_NAMES = frozenset({"_run"})

#: Yield-value node types that can possibly evaluate to an Event.
_EVENTISH = (ast.Name, ast.Attribute, ast.Call, ast.Subscript, ast.IfExp,
             ast.Await, ast.NamedExpr)


def _is_event_subclass(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        parts = dotted_name(base)
        if parts and parts[-1] in EVENT_BASES:
            return True
    return False


def _is_exception_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        parts = dotted_name(base)
        if parts and parts[-1].endswith(_EXC_TAILS):
            return True
    return False


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == "__slots__":
            return True
    return False


@rule("K201", "missing-slots",
      "class under sim/ (or Event subclass) without __slots__")
def check_slots(ctx: ModuleContext) -> Iterator[Finding]:
    in_sim = ctx.in_package("sim")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (in_sim or _is_event_subclass(node)):
            continue
        if _is_exception_class(node):
            continue
        if not _declares_slots(node):
            scope = "kernel class" if in_sim else "Event subclass"
            yield (node.lineno, node.col_offset,
                   f"{scope} `{node.name}` does not declare __slots__; "
                   "a slotless class in the event hierarchy re-grows a "
                   "per-instance __dict__ on the hot path")


def _is_bare_timeout_call(node: ast.AST) -> bool:
    """``<anything>.timeout(delay)`` with one positional arg, no value=."""
    if not isinstance(node, ast.Call) or node.keywords or \
            len(node.args) != 1:
        return False
    parts = dotted_name(node.func)
    return bool(parts) and parts[-1] == "timeout"


def _name_loads(func: ast.AST, name: str) -> List[ast.Name]:
    return [n for n in ast.walk(func)
            if isinstance(n, ast.Name) and n.id == name
            and isinstance(n.ctx, ast.Load)]


@rule("K202", "pooled-timeout-retained",
      "bare env.timeout() result retained beyond a single yield")
def check_timeout_retention(ctx: ModuleContext) -> Iterator[Finding]:
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = own_yields(func)
        if not yields:
            # Non-generators retain timeouts only in callback style, where
            # pending callbacks already keep them out of the free list.
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_bare_timeout_call(node.value):
                continue
            if len(node.targets) != 1 or \
                    not isinstance(node.targets[0], ast.Name):
                # Tuple-unpacking / attribute / subscript targets all
                # store the pooled event somewhere it can outlive the
                # yield — flag unconditionally.
                yield (node.lineno, node.col_offset,
                       "bare env.timeout() stored into a structured "
                       "target; pooled timeouts are recycled after the "
                       "next yield — pass value= to opt out of pooling")
                continue
            name = node.targets[0].id
            loads = [n for n in _name_loads(func, name)
                     if (n.lineno, n.col_offset) >
                        (node.lineno, node.col_offset)]
            safe = (
                len(loads) == 1
                and isinstance(ctx.parent(loads[0]), ast.Yield)
            )
            if not safe:
                yield (node.lineno, node.col_offset,
                       f"bare env.timeout() bound to `{name}` is used "
                       "beyond a single immediate yield; the event is "
                       "recycled once the process advances (pass value= "
                       "to opt out of pooling, or yield it inline)")


def _is_process_function(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return func.name.endswith("_process") or func.name in PROCESS_NAMES


@rule("K203", "non-event-yield",
      "simulation process yields a statically-non-Event value")
def check_process_yields(ctx: ModuleContext) -> Iterator[Finding]:
    if not ctx.in_package("sim", "core", "storage"):
        return
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_process_function(func):
            continue
        for node in own_yields(func):
            if isinstance(node, ast.YieldFrom):
                continue  # delegation: the inner generator is checked itself
            value = node.value
            if value is None:
                yield (node.lineno, node.col_offset,
                       "bare `yield` in a simulation process yields None, "
                       "which the kernel rejects; yield an Event")
            elif not isinstance(value, _EVENTISH):
                yield (value.lineno, value.col_offset,
                       f"process yields a {type(value).__name__}, which "
                       "cannot be an Event; the kernel resumes processes "
                       "only through Events")


__all__ = ["check_slots", "check_timeout_retention", "check_process_yields"]
