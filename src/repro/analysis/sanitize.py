"""Runtime sanitizer: traps for invariants the static rules cannot prove.

Armed by ``Environment(sanitize=True)`` or ``REPRO_SANITIZE=1`` (see
:mod:`repro.sim.environment`), this module supplies the two pieces that
need process-global cooperation:

* :func:`install_rng_trap` / :func:`rng_trap` — while a sanitized
  simulation runs, every module-level ``random.*`` / ``np.random.*``
  call (the D102 rule's runtime twin) raises
  :class:`UnseededRandomError` instead of silently consuming hidden
  global state. Seeded ``random.Random`` / ``np.random.default_rng``
  generator *instances* are untouched — threading those explicitly is
  the sanctioned pattern.
* :func:`audit_tie_sensitivity` — runs the same program under FIFO and
  LIFO same-timestamp tie-breaking and diffs the result-visible state,
  flagging programs whose results depend on insertion-order tie
  resolution (the contract a batched/vectorized kernel must preserve).

The reuse-after-free trap for pooled bare timeouts needs no code here:
in sanitize mode the kernel *retires* bare timeouts instead of recycling
them, so any retained reference deterministically trips the POOLED-state
guards in :mod:`repro.sim.events`.
"""

from __future__ import annotations

import random as _random_module
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..sim.events import SimulationError
from .determinism import RANDOM_GLOBAL


class UnseededRandomError(SimulationError):
    """A module-level RNG call ran inside a sanitized simulation."""


#: ``numpy.random`` module-level functions backed by the hidden legacy
#: global RandomState (trapped); generator construction is not listed.
NUMPY_GLOBAL = (
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "seed",
    "uniform", "normal", "standard_normal", "poisson", "exponential",
    "binomial", "beta", "gamma", "chisquare", "dirichlet", "geometric",
    "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
    "logseries", "multinomial", "multivariate_normal",
    "negative_binomial", "pareto", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_t", "triangular", "vonmises", "wald", "weibull", "zipf",
    "get_state", "set_state", "random_integers",
)


def _raiser(module: str, name: str) -> Callable[..., Any]:
    def trap(*_args: Any, **_kwargs: Any) -> Any:
        raise UnseededRandomError(
            f"{module}.{name}() called during a sanitized simulation: "
            "module-level RNG state breaks bit-identical replay; thread "
            "an explicitly seeded generator "
            "(random.Random(seed) / np.random.default_rng(seed)) instead"
        )
    trap.__name__ = f"_sanitize_trap_{name}"
    return trap


# (module object, attribute, original) for every patched callable.
_saved: List[Tuple[Any, str, Any]] = []
_installs = 0


def install_rng_trap() -> None:
    """Patch global-RNG entry points to raise; re-entrant (refcounted)."""
    global _installs
    _installs += 1
    if _installs > 1:
        return
    for name in sorted(RANDOM_GLOBAL):
        original = getattr(_random_module, name, None)
        if callable(original):
            _saved.append((_random_module, name, original))
            setattr(_random_module, name, _raiser("random", name))
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        return
    for name in NUMPY_GLOBAL:
        original = getattr(_np.random, name, None)
        if callable(original):
            _saved.append((_np.random, name, original))
            setattr(_np.random, name, _raiser("np.random", name))


def uninstall_rng_trap() -> None:
    """Undo :func:`install_rng_trap` once the last installer exits."""
    global _installs
    if _installs == 0:
        return
    _installs -= 1
    if _installs:
        return
    while _saved:
        module, name, original = _saved.pop()
        setattr(module, name, original)


@contextmanager
def rng_trap() -> Iterator[None]:
    """Context-managed :func:`install_rng_trap` for tests and tools."""
    install_rng_trap()
    try:
        yield
    finally:
        uninstall_rng_trap()


# -- tie-order sensitivity audit ---------------------------------------------
@dataclass
class TieAuditResult:
    """Outcome of a FIFO-vs-LIFO tie-break comparison run."""

    sensitive: bool
    fifo_result: Any = None
    lifo_result: Any = None
    #: tie-break order -> repr of the exception that run raised, if any.
    errors: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        if not self.sensitive:
            return "tie-order insensitive: fifo and lifo runs agree"
        parts = ["tie-order SENSITIVE: results differ across same-"
                 "timestamp dispatch orders"]
        for order in ("fifo", "lifo"):
            if order in self.errors:
                parts.append(f"  {order}: raised {self.errors[order]}")
        return "\n".join(parts)


def audit_tie_sensitivity(
    build: Callable[..., Callable[[], Any]],
    until: Optional[Any] = None,
) -> TieAuditResult:
    """Run ``build`` under both tie-break orders and diff the results.

    ``build(env)`` must set up the program on a fresh environment and
    return a zero-argument extractor producing the result-visible state
    to compare (timings, counters, outputs — anything a benchmark would
    report). The audit runs the simulation (``env.run(until)``), calls
    the extractor under each order, and flags any divergence — including
    one order crashing where the other completes, which is equally a
    dispatch-order dependence.

    A sensitive program is not necessarily *wrong* today (the kernel's
    insertion-order tie-breaking is deterministic), but its results hang
    on a scheduling detail the planned batched kernel must then preserve
    bit-for-bit; insensitive programs are refactor-proof.

    Both runs execute with the sanitizer armed (sanitize never changes
    simulated results), so unhandled process failures surface as errors
    instead of rotting silently on their events.
    """
    from ..sim.environment import Environment

    results: Dict[str, Any] = {}
    errors: Dict[str, str] = {}
    for order in ("fifo", "lifo"):
        env = Environment(sanitize=True, tie_break=order)
        extract = build(env)
        if not callable(extract):
            raise TypeError(
                "build(env) must return a zero-argument extractor "
                "callable producing the state to compare")
        try:
            env.run(until)
            results[order] = extract()
        except Exception as exc:  # one order crashing IS a divergence
            errors[order] = repr(exc)
            results[order] = None
    sensitive = (errors.get("fifo") != errors.get("lifo")
                 or results["fifo"] != results["lifo"])
    return TieAuditResult(
        sensitive=sensitive,
        fifo_result=results["fifo"],
        lifo_result=results["lifo"],
        errors=errors,
    )


__all__ = [
    "NUMPY_GLOBAL",
    "TieAuditResult",
    "UnseededRandomError",
    "audit_tie_sensitivity",
    "install_rng_trap",
    "rng_trap",
    "uninstall_rng_trap",
]
