"""Per-tenant admission control, DRR fair queueing, and load shedding.

The :class:`~repro.core.router.Router` is a closed-loop dispatcher: it
assumes whoever submits is willing to wait, so under open-loop arrivals
(:mod:`repro.workloads.open_loop`) its queues — and every query's sojourn
time — grow without bound the moment offered load crosses capacity. This
module is the front door that makes overload survivable:

* **bounded per-tenant queues** — each tenant owns a FIFO of at most
  ``tenant_queue_limit`` queries; a full queue *rejects* new arrivals,
  which is the backpressure signal to that tenant (and only that tenant);
* **deficit round-robin release** — queued queries enter the router in
  DRR order with per-cost-class weights, so one tenant's heavy analytics
  cannot starve another tenant's point lookups, and the router itself is
  kept shallow (``router_depth``) so queueing happens where fairness is
  enforceable;
* **load shedding** — past the overload watermark the controller drops
  the *heavy* operators first (``k_reach``, ``ppr`` by default); past the
  severe watermark everything but point-class queries sheds. Shedding is
  cheaper than rejecting at the queue: a shed query never occupies a
  slot a cheap query could have used;
* **overload accounting** — entry/exit of the overload regime is
  recorded as ``(start, end)`` windows of simulated time, with hysteresis
  so the boundary doesn't chatter.

Decisions happen at *offer* time against live pressure (queued work plus
router backlog); everything admitted is eventually served. The
:class:`AdmissionStats` the controller produces ride on the
:class:`~repro.core.metrics.WorkloadReport` so goodput-vs-offered-load
and per-tenant shed/reject counts land next to the latency percentiles
they explain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from .operators.registry import default_registry
from .queries import Query

#: Admission decisions returned by :meth:`AdmissionController.offer`.
ADMITTED = "admitted"
REJECTED = "rejected"
SHED = "shed"

#: DRR cost weights per query class: releasing one traversal spends as
#: much of a tenant's deficit as sixteen point lookups (the same coarse
#: cost ordering the operator registry's classes encode).
DEFAULT_CLASS_WEIGHTS: Mapping[str, float] = {
    "point": 1.0,
    "walk": 4.0,
    "traversal": 16.0,
}

#: Operators shed first under overload: the two whose service demand
#: dwarfs the rest of the catalog (multi-walk PPR, batched reachability).
DEFAULT_HEAVY_OPERATORS = frozenset({"k_reach", "ppr"})


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission/fair-queueing layer.

    Overload watermarks are *fractions of aggregate tenant queue
    capacity* (``tenants_seen * tenant_queue_limit``), measured against
    total pending work (queued + router backlog): ``overload_high``
    enters overload, ``overload_low`` exits it (hysteresis), and
    ``severe_high`` escalates shedding from the heavy operators to every
    non-point query.
    """

    tenant_queue_limit: int = 64
    quantum: float = 16.0
    class_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_WEIGHTS)
    )
    heavy_operators: frozenset = DEFAULT_HEAVY_OPERATORS
    #: Max router backlog the DRR pump maintains (None = 2 per processor).
    router_depth: Optional[int] = None
    overload_high: float = 0.5
    overload_low: float = 0.25
    severe_high: float = 0.85

    def __post_init__(self) -> None:
        if self.tenant_queue_limit < 1:
            raise ValueError("tenant_queue_limit must be >= 1")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if any(w <= 0 for w in self.class_weights.values()):
            raise ValueError("class weights must be positive")
        if self.router_depth is not None and self.router_depth < 1:
            raise ValueError("router_depth must be >= 1")
        if not 0 < self.overload_low <= self.overload_high <= self.severe_high:
            raise ValueError(
                "watermarks must satisfy 0 < overload_low <= overload_high "
                "<= severe_high"
            )


@dataclass
class TenantAdmissionStats:
    """Offer-time outcome counters for one tenant."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    shed_by_operator: Dict[str, int] = field(default_factory=dict)
    max_queue_depth: int = 0


@dataclass
class AdmissionStats:
    """What the admission layer did over one serving run."""

    tenants: Dict[str, TenantAdmissionStats] = field(default_factory=dict)
    #: Closed ``[start, end)`` overload windows, in simulated seconds.
    overload_windows: List[Tuple[float, float]] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------------
    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants.values())

    @property
    def admitted(self) -> int:
        return sum(t.admitted for t in self.tenants.values())

    @property
    def rejected(self) -> int:
        return sum(t.rejected for t in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    def delivery_ratio(self) -> float:
        """Admitted / offered — 1.0 means nothing was dropped."""
        offered = self.offered
        return self.admitted / offered if offered else 1.0

    def time_in_overload(self) -> float:
        """Total simulated seconds spent inside overload windows."""
        return sum(end - start for start, end in self.overload_windows)


class _TenantState:
    """One tenant's bounded FIFO and DRR deficit counter."""

    __slots__ = ("queue", "deficit", "stats")

    def __init__(self) -> None:
        self.queue: Deque[Query] = deque()
        self.deficit = 0.0
        self.stats = TenantAdmissionStats()


class AdmissionController:
    """Admission + DRR fair-queueing front end for one :class:`Router`.

    ``config=None`` builds a *passthrough* controller: every offer goes
    straight to the router (unbounded queueing, no shedding) while the
    per-tenant offered/admitted counters still accumulate — the naive
    baseline an SLO benchmark compares against.

    The controller registers a router completion callback while
    :meth:`attach`-ed, so freed capacity pulls queued work in DRR order
    without any polling process.
    """

    def __init__(self, router, config: Optional[AdmissionConfig] = None) -> None:
        self.router = router
        self.env = router.env
        self.config = config
        self._tenants: Dict[str, _TenantState] = {}
        self._order: List[str] = []
        self._cursor = 0
        self._queued = 0
        self._overload_level = 0
        self._overload_since: Optional[float] = None
        self._windows: List[Tuple[float, float]] = []
        self._attached = False
        if config is not None and config.router_depth is not None:
            self._router_depth = config.router_depth
        else:
            self._router_depth = 2 * router.num_processors

    # -- lifecycle ------------------------------------------------------------
    def attach(self) -> "AdmissionController":
        """Start pulling queued work on every router completion."""
        if not self._attached:
            self.router.add_completion_callback(self._on_completion)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.router.remove_completion_callback(self._on_completion)
            self._attached = False

    def _on_completion(self) -> None:
        self.pump()

    # -- introspection ---------------------------------------------------------
    @property
    def passthrough(self) -> bool:
        return self.config is None

    def queued(self, tenant: Optional[str] = None) -> int:
        """Queries waiting in tenant queues (one tenant, or all)."""
        if tenant is None:
            return self._queued
        state = self._tenants.get(tenant)
        return len(state.queue) if state is not None else 0

    def pending(self) -> int:
        """Total un-finished admitted+queued work the controller sees."""
        return self._queued + self.router.backlog()

    def backpressure(self, tenant: str) -> bool:
        """True when ``tenant``'s queue is full — the caller should back
        off (its next offers will be rejected)."""
        if self.config is None:
            return False
        state = self._tenants.get(tenant)
        return (
            state is not None
            and len(state.queue) >= self.config.tenant_queue_limit
        )

    @property
    def overloaded(self) -> bool:
        return self._overload_level > 0

    # -- admission -------------------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState()
            self._tenants[tenant] = state
            self._order.append(tenant)
        return state

    def _cost(self, query: Query) -> float:
        weights = (
            self.config.class_weights
            if self.config is not None
            else DEFAULT_CLASS_WEIGHTS
        )
        query_class = default_registry.classify(query)
        return weights.get(query_class, max(weights.values()))

    def _update_overload(self) -> None:
        config = self.config
        if config is None:
            return
        capacity = max(1, len(self._tenants)) * config.tenant_queue_limit
        pending = self.pending()
        if self._overload_level == 0:
            if pending >= config.overload_high * capacity:
                self._overload_level = 1
                self._overload_since = self.env.now
        elif pending <= config.overload_low * capacity:
            self._overload_level = 0
            if self._overload_since is not None:
                self._windows.append((self._overload_since, self.env.now))
                self._overload_since = None
        if self._overload_level:
            severe = pending >= config.severe_high * capacity
            self._overload_level = 2 if severe else 1


    def _should_shed(self, query: Query) -> bool:
        if self._overload_level == 0:
            return False
        assert self.config is not None
        name = default_registry.operator_name(query)
        if name in self.config.heavy_operators:
            return True
        if self._overload_level >= 2:
            return default_registry.classify(query) != "point"
        return False

    def offer(self, query: Query, tenant: str = "default") -> str:
        """Offer one open-loop arrival; returns the admission decision.

        ``ADMITTED`` queries are queued (and released to the router in
        DRR order); ``SHED`` and ``REJECTED`` queries are dropped on the
        floor — in an open-loop system the arrival already happened, so
        dropping, not blocking, is the only backpressure available.
        """
        state = self._tenant(tenant)
        state.stats.offered += 1
        if self.config is None:
            state.stats.admitted += 1
            self.router.submit([query], tenant=tenant)
            return ADMITTED
        self._update_overload()
        if self._should_shed(query):
            state.stats.shed += 1
            name = default_registry.operator_name(query)
            state.stats.shed_by_operator[name] = (
                state.stats.shed_by_operator.get(name, 0) + 1
            )
            return SHED
        if len(state.queue) >= self.config.tenant_queue_limit:
            state.stats.rejected += 1
            return REJECTED
        state.queue.append(query)
        self._queued += 1
        state.stats.admitted += 1
        if len(state.queue) > state.stats.max_queue_depth:
            state.stats.max_queue_depth = len(state.queue)
        self.pump()
        return ADMITTED

    # -- DRR release ------------------------------------------------------------
    def pump(self) -> int:
        """Release queued queries into the router in DRR order.

        Runs until the router backlog reaches ``router_depth`` or the
        tenant queues drain; returns how many queries were released. Each
        DRR visit grants one ``quantum`` of deficit, a release spends the
        query's class weight, and a tenant that empties its queue forfeits
        its remaining deficit (idle tenants bank no credit — standard DRR).
        """
        if self.config is None:
            return 0
        released = 0
        router = self.router
        depth = self._router_depth
        quantum = self.config.quantum
        while self._queued > 0 and router.backlog() < depth:
            # Advance the cursor to the next tenant with queued work.
            num = len(self._order)
            for _ in range(num):
                name = self._order[self._cursor % num]
                self._cursor += 1
                state = self._tenants[name]
                if state.queue:
                    break
            state.deficit += quantum
            while state.queue and router.backlog() < depth:
                cost = self._cost(state.queue[0])
                if state.deficit < cost:
                    break
                query = state.queue.popleft()
                self._queued -= 1
                state.deficit -= cost
                router.submit([query], tenant=name)
                released += 1
            if not state.queue:
                state.deficit = 0.0
        if released:
            self._update_overload()
        return released

    # -- reporting ---------------------------------------------------------------
    def stats(self, now: Optional[float] = None) -> AdmissionStats:
        """Snapshot the admission outcome (open overload window closed at
        ``now``, default the current simulated time)."""
        end = self.env.now if now is None else now
        windows = list(self._windows)
        if self._overload_since is not None:
            windows.append((self._overload_since, end))
        return AdmissionStats(
            tenants={
                name: TenantAdmissionStats(
                    offered=s.stats.offered,
                    admitted=s.stats.admitted,
                    rejected=s.stats.rejected,
                    shed=s.stats.shed,
                    shed_by_operator=dict(s.stats.shed_by_operator),
                    max_queue_depth=s.stats.max_queue_depth,
                )
                for name, s in self._tenants.items()
            },
            overload_windows=windows,
        )
