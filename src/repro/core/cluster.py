"""Cluster assembly: storage tier + processing tier + router, one run.

:class:`GRoutingCluster` is the public entry point of the reproduction —
the piece that corresponds to "gRouting" in the paper. Build it from a
graph and a :class:`ClusterConfig`, call :meth:`run` with a list of
queries, and read the :class:`~repro.core.metrics.WorkloadReport`.

One cluster instance corresponds to one experiment run: caches start cold
(§4.1) and simulated time starts at zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..costs import DEFAULT_COSTS, CostModel
from ..graph.digraph import Graph
from ..sim import Environment
from ..storage.tier import StorageTier
from .assets import GraphAssets
from .metrics import WorkloadReport
from .processor import QueryProcessor
from .queries import Query
from .router import Router
from .routing import (
    AdaptiveRouting,
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingStrategy,
)

ROUTING_CHOICES = (
    "next_ready", "hash", "landmark", "embed", "no_cache", "adaptive",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment + algorithm knobs (defaults follow §4.1 Parameter Setting)."""

    num_processors: int = 7
    num_storage_servers: int = 4
    routing: str = "embed"
    cache_capacity_bytes: int = 16 << 20
    cache_policy: str = "lru"
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    load_factor: float = 20.0
    alpha: float = 0.5
    dim: int = 10
    num_landmarks: int = 96
    min_separation: int = 3
    embed_method: str = "simplex"
    steal: bool = True
    seed: int = 0
    materialize_storage: bool = False  # actually load records into the KV log
    # -- adaptive-routing knobs ----------------------------------------------
    #: Static arms the adaptive strategy can pick per query class.
    adaptive_arms: Tuple[str, ...] = ("hash", "landmark", "embed")
    #: Base exploration rate of the per-class epsilon-greedy policy.
    epsilon: float = 0.1
    #: Per-class decay applied to epsilon as decisions accumulate.
    epsilon_decay: float = 0.05
    #: Queries per audition epoch (each arm owns all traffic for one epoch).
    adaptive_epoch: int = 32
    #: EWMA smoothing for the latency / hit-rate / queue-depth feedback.
    feedback_alpha: float = 0.2
    #: Queries routed per submission wave. None = auto: everything at once
    #: for static strategies (decisions don't depend on feedback), small
    #: waves for adaptive so routing feedback informs later decisions.
    submit_batch: Optional[int] = None

    def with_routing(self, routing: str) -> "ClusterConfig":
        return replace(self, routing=routing)


class GRoutingCluster:
    """A decoupled graph-querying cluster (Figure 2 of the paper)."""

    def __init__(
        self,
        graph: Graph,
        config: Optional[ClusterConfig] = None,
        assets: Optional[GraphAssets] = None,
        landmark_index=None,
        embedding=None,
    ) -> None:
        """``landmark_index`` / ``embedding`` override the assets-built
        artifacts — used by the graph-update experiments, where routing
        must run on *stale* preprocessing (Fig 10)."""
        self._landmark_index_override = landmark_index
        self._embedding_override = embedding
        self.config = config or ClusterConfig()
        if self.config.routing not in ROUTING_CHOICES:
            raise ValueError(
                f"unknown routing {self.config.routing!r}; "
                f"choose from {ROUTING_CHOICES}"
            )
        if self.config.num_processors < 1:
            raise ValueError("need at least one query processor")
        self.assets = assets if assets is not None else GraphAssets(graph)
        self.env = Environment()
        self.tier = StorageTier(
            self.env,
            num_servers=self.config.num_storage_servers,
            service_model=self.config.costs.storage,
        )
        if self.config.materialize_storage:
            self.tier.load_graph(self.assets.graph)
        use_cache = self.config.routing != "no_cache"
        self.processors: List[QueryProcessor] = [
            QueryProcessor(
                self.env,
                processor_id=i,
                tier=self.tier,
                assets=self.assets,
                costs=self.config.costs,
                cache_capacity_bytes=self.config.cache_capacity_bytes,
                cache_policy=self.config.cache_policy,
                use_cache=use_cache,
            )
            for i in range(self.config.num_processors)
        ]
        self.strategy = self._build_strategy()
        self.router = Router(
            self.env, self.strategy, self.processors, steal=self.config.steal
        )
        for processor in self.processors:
            processor.start(self.router)
        self._ran = False

    def _build_strategy(self, routing: Optional[str] = None) -> RoutingStrategy:
        cfg = self.config
        routing = cfg.routing if routing is None else routing
        if routing in ("next_ready", "no_cache"):
            return NextReadyRouting()
        if routing == "hash":
            return HashRouting(cfg.num_processors)
        if routing == "landmark":
            index = self._landmark_index_override
            if index is None:
                index = self.assets.landmark_index(
                    cfg.num_processors, cfg.num_landmarks, cfg.min_separation
                )
            return LandmarkRouting(index, load_factor=cfg.load_factor)
        if routing == "adaptive":
            if not cfg.adaptive_arms:
                raise ValueError("adaptive routing needs at least one arm")
            for arm in cfg.adaptive_arms:
                # "no_cache" is not a routing decision but a cluster mode
                # (caches off), which the adaptive wrapper can't honour —
                # allowing it would mislabel cached next-ready dispatch.
                if arm in ("adaptive", "no_cache") or arm not in ROUTING_CHOICES:
                    raise ValueError(f"invalid adaptive arm {arm!r}")
            return AdaptiveRouting(
                {arm: self._build_strategy(arm) for arm in cfg.adaptive_arms},
                epoch=cfg.adaptive_epoch,
                epsilon=cfg.epsilon,
                epsilon_decay=cfg.epsilon_decay,
                feedback_alpha=cfg.feedback_alpha,
                seed=cfg.seed,
            )
        # embed
        embedding = self._embedding_override
        if embedding is None:
            embedding = self.assets.embedding(
                dim=cfg.dim,
                num_landmarks=cfg.num_landmarks,
                min_separation=cfg.min_separation,
                method=cfg.embed_method,
            )
        return EmbedRouting(
            embedding,
            num_processors=cfg.num_processors,
            alpha=cfg.alpha,
            load_factor=cfg.load_factor,
            seed=cfg.seed,
        )

    #: Default wave size for adaptive routing (see ClusterConfig.submit_batch).
    #: Deep enough that the Eq. 3/7 load term still sees real queue depths,
    #: shallow enough that feedback reaches the strategy while it matters.
    ADAPTIVE_BATCH = 128

    def _batch_size(self, num_queries: int) -> int:
        batch = self.config.submit_batch
        if batch is None:
            batch = (
                self.ADAPTIVE_BATCH
                if self.config.routing == "adaptive"
                else num_queries
            )
        if batch < 1:
            raise ValueError("submit_batch must be >= 1")
        return batch

    # -- running a workload --------------------------------------------------
    def run(self, queries: Sequence[Query]) -> WorkloadReport:
        """Execute ``queries``, submitted in waves of ``submit_batch``.

        Static strategies take everything in one wave (the paper's closed
        batch at t=0). Adaptive routing defaults to small waves so the
        feedback from completed queries informs the next wave's decisions.
        """
        if self._ran:
            raise RuntimeError(
                "a cluster instance runs one workload; build a fresh one "
                "(caches must start cold per run)"
            )
        self._ran = True
        if queries:
            queries = list(queries)
            batch = self._batch_size(len(queries))
            refill = max(1, batch // 2)
            self.router.submit(queries[:batch])
            position = batch
            while position < len(queries):
                # Pipelined refill: top the router up when the backlog
                # drains below the watermark, so processors never idle at
                # a wave boundary (no barrier, no stealing churn).
                self.env.run(until=self.router.when_backlog_at_most(refill))
                self.router.submit(queries[position : position + batch])
                position += batch
            self.env.run(until=self.router.done)
        report = WorkloadReport(
            records=sorted(self.router.records, key=lambda r: r.query_id),
            makespan=self.env.now,
            num_processors=self.config.num_processors,
            num_storage_servers=self.config.num_storage_servers,
            routing=self.config.routing,
        )
        return report

    # -- diagnostics -------------------------------------------------------------
    def processor_utilizations(self) -> List[float]:
        return [p.utilization(self.env.now) for p in self.processors]

    def storage_utilizations(self) -> List[float]:
        return [s.utilization(self.env.now) for s in self.tier.servers]


def run_workload(
    graph: Graph,
    queries: Sequence[Query],
    config: Optional[ClusterConfig] = None,
    assets: Optional[GraphAssets] = None,
) -> WorkloadReport:
    """One-shot convenience: build a cluster, run, return the report."""
    cluster = GRoutingCluster(graph, config=config, assets=assets)
    return cluster.run(queries)
