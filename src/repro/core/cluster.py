"""One-shot experiment harness over the long-lived service facade.

:class:`GRoutingCluster` is the original public entry point of the
reproduction — the piece that corresponds to "gRouting" in the paper.
Build it from a graph and a :class:`~repro.core.service.ClusterConfig`,
call :meth:`run` with a list of queries, and read the
:class:`~repro.core.metrics.WorkloadReport`.

One cluster instance corresponds to one experiment run: caches start cold
(§4.1) and simulated time starts at zero. Since the session API redesign
it is a thin compatibility wrapper — one :class:`~repro.core.service.GraphService`
plus one :class:`~repro.core.service.QuerySession` per :meth:`run` — kept
because the paper's figures are defined over cold-cache runs. Anything
serving continuous traffic should use :class:`GraphService` directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph.digraph import Graph
from .assets import GraphAssets
from .metrics import WorkloadReport
from .queries import Query
from .service import ROUTING_CHOICES, ClusterConfig, GraphService

__all__ = [
    "ClusterConfig",
    "GRoutingCluster",
    "ROUTING_CHOICES",
    "run_workload",
]


class GRoutingCluster:
    """A decoupled graph-querying cluster (Figure 2 of the paper)."""

    #: Compat re-export; the authoritative knob lives on GraphService.
    ADAPTIVE_BATCH = GraphService.ADAPTIVE_BATCH

    def __init__(
        self,
        graph: Graph,
        config: Optional[ClusterConfig] = None,
        assets: Optional[GraphAssets] = None,
        landmark_index=None,
        embedding=None,
    ) -> None:
        """``landmark_index`` / ``embedding`` override the assets-built
        artifacts — used by the graph-update experiments, where routing
        must run on *stale* preprocessing (Fig 10)."""
        self.service = GraphService(
            graph,
            config,
            assets=assets,
            landmark_index=landmark_index,
            embedding=embedding,
        )
        self._ran = False

    # -- delegation to the underlying service --------------------------------
    @property
    def config(self) -> ClusterConfig:
        return self.service.config

    @property
    def assets(self) -> GraphAssets:
        return self.service.assets

    @property
    def env(self):
        return self.service.env

    @property
    def tier(self):
        return self.service.tier

    @property
    def processors(self):
        return self.service.processors

    @property
    def strategy(self):
        return self.service.strategy

    @property
    def router(self):
        return self.service.router

    # -- running a workload --------------------------------------------------
    def run(self, queries: Sequence[Query]) -> WorkloadReport:
        """Execute ``queries`` as one cold-cache session and report.

        Static strategies take everything in one wave (the paper's closed
        batch at t=0). Adaptive routing defaults to small waves so the
        feedback from completed queries informs the next wave's decisions.
        """
        if self._ran:
            raise RuntimeError(
                "a cluster instance runs one workload; build a fresh one "
                "(caches must start cold per run)"
            )
        self._ran = True
        with self.service.session() as session:
            session.stream(queries)
            return session.report()

    # -- diagnostics -------------------------------------------------------------
    def processor_utilizations(self) -> List[float]:
        return self.service.processor_utilizations()

    def storage_utilizations(self) -> List[float]:
        return self.service.storage_utilizations()


def run_workload(
    graph: Graph,
    queries: Sequence[Query],
    config: Optional[ClusterConfig] = None,
    assets: Optional[GraphAssets] = None,
) -> WorkloadReport:
    """One-shot convenience: build a cluster, run, return the report."""
    cluster = GRoutingCluster(graph, config=config, assets=assets)
    return cluster.run(queries)
