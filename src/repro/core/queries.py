"""The three h-hop traversal query types (§2.2).

Every query carries the node it starts from (``node``), which is the value
routing strategies operate on, plus per-type parameters. Queries are frozen
dataclasses so they can be hashed, logged and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_query_counter = count()


def _next_query_id() -> int:
    return next(_query_counter)


@dataclass(frozen=True)
class Query:
    """Base class: an online query anchored at ``node``."""

    node: int
    query_id: int = field(default_factory=_next_query_id)


@dataclass(frozen=True)
class NeighborAggregationQuery(Query):
    """h-hop Neighbor Aggregation: count h-hop neighbors (optionally
    only those carrying ``label``)."""

    hops: int = 2
    label: Optional[str] = None


@dataclass(frozen=True)
class RandomWalkQuery(Query):
    """h-step Random Walk with Restart from ``node``."""

    steps: int = 2
    restart_prob: float = 0.15
    seed: int = 0


@dataclass(frozen=True)
class ReachabilityQuery(Query):
    """h-hop Reachability: is ``target`` reachable from ``node``
    within ``hops`` directed hops?"""

    target: int = 0
    hops: int = 2
