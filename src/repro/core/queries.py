"""The built-in query families: the paper's three h-hop traversal types
(§2.2) plus the multi-walk / multi-anchor / sampling extensions.

Every query carries the anchor node it starts from (``node``) plus
per-type parameters; multi-anchor queries expose further anchors through
their operator's routing-key extractor (see
:mod:`repro.core.operators.registry`). Queries are frozen dataclasses so
they can be hashed, logged and replayed. This module only *defines* the
dataclasses — execution, classification and routing-key extraction are
registered per type in :mod:`repro.core.operators`, which is what keeps
the operator set open to new families.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple


class QueryIdAllocator:
    """Deterministic query-id source.

    Query ids must be unique *within a router's lifetime* (they key the
    router's in-flight bookkeeping) and deterministic across replays so
    recorded workloads compare record-for-record. A module-global counter
    gives neither: ids depend on everything constructed earlier in the
    process, and two parallel sessions generating queries interleave
    unpredictably. Instead, each stream of queries can own an allocator —
    ``start``/``stride`` carve out disjoint id lattices for parallel
    generators (e.g. session *k* of *n* uses ``start=k, stride=n``).
    """

    def __init__(self, start: int = 0, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if start < 0:
            raise ValueError("start must be >= 0")
        self._start = start
        self._next = start
        self._stride = stride

    def allocate(self) -> int:
        value = self._next
        self._next += self._stride
        return value

    def reset(self, start: Optional[int] = None) -> None:
        """Rewind the allocator (deterministic workload replays).

        Defaults to the construction-time ``start``, so a strided
        allocator rewinds onto its own lattice, not someone else's.
        """
        if start is None:
            start = self._start
        elif start < 0:
            raise ValueError("start must be >= 0")
        self._next = start


#: Process-default allocator, used when no scoped allocator is active.
_default_allocator = QueryIdAllocator()
_active_allocator = _default_allocator


def _next_query_id() -> int:
    return _active_allocator.allocate()


def reset_query_ids(start: Optional[int] = None) -> None:
    """Reset the *active* allocator — fresh ids for a workload replay.

    Defaults to the allocator's own construction-time start.
    """
    _active_allocator.reset(start)


def current_query_id_allocator() -> QueryIdAllocator:
    """The allocator active right now (for capture at creation time).

    Lazy workload generators snapshot this when they are *created*, so a
    ``*_stream`` built inside a :func:`query_ids_from` scope keeps drawing
    from that scope's allocator even when consumed after the scope exits.
    """
    return _active_allocator


@contextmanager
def query_ids_from(allocator: QueryIdAllocator) -> Iterator[QueryIdAllocator]:
    """Scope query-id allocation to ``allocator`` within the block.

    Queries constructed inside the ``with`` draw their default ids from
    ``allocator`` instead of the process-wide counter, so parallel
    workload generators get non-colliding, replay-deterministic ids::

        with query_ids_from(QueryIdAllocator(start=1, stride=2)):
            queries = zipfian_workload(graph, num_queries=100)  # odd ids
    """
    global _active_allocator
    previous = _active_allocator
    _active_allocator = allocator
    try:
        yield allocator
    finally:
        _active_allocator = previous


@dataclass(frozen=True)
class Query:
    """Base class: an online query anchored at ``node``."""

    node: int
    query_id: int = field(default_factory=_next_query_id)


@dataclass(frozen=True)
class NeighborAggregationQuery(Query):
    """h-hop Neighbor Aggregation: count h-hop neighbors (optionally
    only those carrying ``label``)."""

    hops: int = 2
    label: Optional[str] = None


@dataclass(frozen=True)
class RandomWalkQuery(Query):
    """h-step Random Walk with Restart from ``node``."""

    steps: int = 2
    restart_prob: float = 0.15
    seed: int = 0


@dataclass(frozen=True)
class ReachabilityQuery(Query):
    """h-hop Reachability: is ``target`` reachable from ``node``
    within ``hops`` directed hops?"""

    target: int = 0
    hops: int = 2


@dataclass(frozen=True)
class PersonalizedPageRankQuery(Query):
    """Personalized PageRank support estimate for seed ``node``.

    Monte-Carlo estimator: ``walks`` independent ``steps``-step random
    walks with restart from the seed; the visit support approximates the
    node's PPR mass distribution (the multi-walk sibling of
    :class:`RandomWalkQuery`)."""

    walks: int = 8
    steps: int = 4
    restart_prob: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.walks < 1 or self.steps < 1:
            raise ValueError("walks and steps must be >= 1")


@dataclass(frozen=True)
class KSourceReachabilityQuery(Query):
    """Batched k-source reachability: how many of the k sources —
    ``node`` plus ``sources`` — reach ``target`` within ``hops`` directed
    hops? One label-propagating BFS answers the whole batch, and the
    batch's routing key exposes *all* k anchors to the router."""

    sources: Tuple[int, ...] = ()
    target: int = 0
    hops: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        if len(self.all_sources()) > 64:
            raise ValueError(
                "at most 64 distinct sources per batch "
                "(one uint64 label bit each)"
            )

    def all_sources(self) -> Tuple[int, ...]:
        """The full deduplicated anchor set, primary anchor first."""
        seen = {self.node}
        anchors = [self.node]
        for source in self.sources:
            if source not in seen:
                seen.add(source)
                anchors.append(source)
        return tuple(anchors)


@dataclass(frozen=True)
class NeighborhoodSampleQuery(Query):
    """GNN-style layered neighborhood sample around ``node``: per layer
    ``i``, up to ``fanouts[i]`` sampled neighbors of each frontier node
    (the GraphSAGE minibatch access pattern)."""

    fanouts: Tuple[int, ...] = (10, 5)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fanouts", tuple(self.fanouts))
        if not self.fanouts or any(f < 1 for f in self.fanouts):
            raise ValueError("fanouts must be a non-empty tuple of >= 1")


#: The query-class "traffic light" tiers used by adaptive routing and the
#: per-class metrics: cheap single-record probes, step-bounded walks, and
#: frontier-expanding traversals.
QUERY_CLASSES = ("point", "walk", "traversal")


def query_class(query: Query) -> str:
    """Coarse cost class of a query, resolved through the operator registry.

    * ``point`` — touches O(degree) records at most: 0/1-hop aggregations
      (and any unregistered query type).
    * ``walk`` — one record per step, locality limited to the walk path.
    * ``traversal`` — frontier expansion over h hops (multi-hop
      aggregations, reachability probes, neighborhood samples), the
      cache-hungry class.

    Each operator registers its class (or a callable deriving it from the
    query's parameters) — see :mod:`repro.core.operators`.
    """
    # Imported lazily: the operators package imports this module for the
    # query dataclasses, so a top-level import here would be circular.
    from .operators.registry import default_registry

    return default_registry.classify(query)
