"""The three h-hop traversal query types (§2.2).

Every query carries the node it starts from (``node``), which is the value
routing strategies operate on, plus per-type parameters. Queries are frozen
dataclasses so they can be hashed, logged and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_query_counter = count()


def _next_query_id() -> int:
    return next(_query_counter)


@dataclass(frozen=True)
class Query:
    """Base class: an online query anchored at ``node``."""

    node: int
    query_id: int = field(default_factory=_next_query_id)


@dataclass(frozen=True)
class NeighborAggregationQuery(Query):
    """h-hop Neighbor Aggregation: count h-hop neighbors (optionally
    only those carrying ``label``)."""

    hops: int = 2
    label: Optional[str] = None


@dataclass(frozen=True)
class RandomWalkQuery(Query):
    """h-step Random Walk with Restart from ``node``."""

    steps: int = 2
    restart_prob: float = 0.15
    seed: int = 0


@dataclass(frozen=True)
class ReachabilityQuery(Query):
    """h-hop Reachability: is ``target`` reachable from ``node``
    within ``hops`` directed hops?"""

    target: int = 0
    hops: int = 2


#: The query-class "traffic light" tiers used by adaptive routing and the
#: per-class metrics: cheap single-record probes, step-bounded walks, and
#: frontier-expanding traversals.
QUERY_CLASSES = ("point", "walk", "traversal")


def query_class(query: Query) -> str:
    """Coarse cost class of a query, derived from its type and depth.

    * ``point`` — touches O(degree) records at most: 0/1-hop aggregations.
    * ``walk`` — one record per step, locality limited to the walk path.
    * ``traversal`` — frontier expansion over h hops (multi-hop
      aggregations and reachability probes), the cache-hungry class.
    """
    if isinstance(query, RandomWalkQuery):
        return "walk"
    if isinstance(query, NeighborAggregationQuery):
        return "point" if query.hops <= 1 else "traversal"
    if isinstance(query, ReachabilityQuery):
        return "traversal"
    return "point"
