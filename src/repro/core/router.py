"""The query router: per-processor queues, ack-driven dispatch, stealing.

Mechanics follow §2.3/§3.2 of the paper: the router keeps one connection
(and one FIFO queue) per processor, sends a processor its next query only
after receiving the acknowledgement for the previous one, and lets an idle
processor *steal* a queued query intended for another processor, so no
processor idles while work remains. Queue lengths double as the load
estimate in the load-balanced distances (Eq. 3/7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..sim import Environment, Event
from .metrics import QueryRecord, QueryStats
from .operators.registry import default_registry, operator_name
from .processor import QueryProcessor
from .queries import Query, query_class
from .routing.base import RoutingFeedback, RoutingStrategy


@dataclass
class _PendingInfo:
    intended: Optional[int]
    decision_time: float
    enqueued_at: float
    routed_via: str
    tenant: str


class Router:
    """Routes a workload across the processing tier."""

    def __init__(
        self,
        env: Environment,
        strategy: RoutingStrategy,
        processors: Sequence[QueryProcessor],
        steal: bool = True,
    ) -> None:
        if not processors:
            raise ValueError("router needs at least one processor")
        self.env = env
        self.strategy = strategy
        self.processors = list(processors)
        self.steal = steal
        num = len(self.processors)
        self.queues: List[Deque[Query]] = [deque() for _ in range(num)]
        self.pool: Deque[Query] = deque()
        self.outstanding: List[Optional[Tuple[Query, bool]]] = [None] * num
        self.records: List[QueryRecord] = []
        self.done: Event = env.event()
        self._pending: Dict[int, _PendingInfo] = {}
        self._submitted = 0
        self._completed = 0
        self._backlog_waits: List[Tuple[int, Event]] = []
        self._completion_callbacks: List = []
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self) -> None:
        """Refuse all further submissions (the owning service is closing).

        Idempotent. In-flight queries are unaffected — the caller drains
        them first if it wants a clean completion count.
        """
        self._closed = True

    def set_strategy(self, strategy: RoutingStrategy) -> None:
        """Swap the routing strategy between decisions (mid-session reconfig).

        Already-routed queries keep their recorded decisions; feedback for
        them flows to the *new* strategy, which must tolerate queries it
        never chose (every strategy here does — static ones ignore
        feedback, adaptive ones skip unknown query ids).
        """
        if self._closed:
            raise RuntimeError("router is shut down; open a new GraphService")
        if strategy is None:
            raise ValueError("strategy must not be None")
        self.strategy = strategy

    # -- submission ---------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return len(self.processors)

    def loads(self) -> List[int]:
        """Queued + in-flight queries per processor (the Eq. 3/7 load)."""
        return [
            len(queue) + (1 if busy is not None else 0)
            for queue, busy in zip(self.queues, self.outstanding, strict=True)
        ]

    def backlog(self) -> int:
        """Submitted-but-incomplete queries across the cluster."""
        return self._submitted - self._completed

    def when_backlog_at_most(self, threshold: int) -> Event:
        """Event triggered once the backlog drains to ``threshold``.

        Drives pipelined (wave-based) submission: the caller refills the
        router when the outstanding work drops below a watermark, instead
        of waiting for a full barrier.
        """
        event = self.env.event()
        if self.backlog() <= threshold:
            event.succeed(self.backlog())
        else:
            self._backlog_waits.append((threshold, event))
        return event

    def add_completion_callback(self, callback) -> None:
        """Call ``callback()`` after every query completion (ack).

        This is how the admission layer learns that capacity freed: each
        completion pulls the next queued query in fair-queueing order.
        Callbacks run after the router's own dispatch bookkeeping, so they
        observe the post-ack backlog and may themselves ``submit``.
        """
        self._completion_callbacks.append(callback)

    def remove_completion_callback(self, callback) -> None:
        """Detach a completion callback (missing callbacks are ignored)."""
        try:
            self._completion_callbacks.remove(callback)
        except ValueError:
            pass

    def submit(self, queries: Sequence[Query], tenant: str = "") -> None:
        """Route a batch of queries and kick every idle processor.

        May be called repeatedly (wave-based submission): the ``done`` event
        is re-armed whenever new work arrives after a completed batch.
        ``tenant`` labels every query of the batch on its eventual
        :class:`~repro.core.metrics.QueryRecord` (multi-tenant serving);
        the default empty label keeps single-tenant submission unchanged.

        Raises ``RuntimeError`` (rather than hanging silently) when the
        router has been shut down or no alive processor remains to execute
        anything — both used to strand queries in queues forever.
        """
        if self._closed:
            raise RuntimeError(
                "cannot submit: router is shut down "
                "(the owning GraphService was closed; open a new one)"
            )
        if not any(processor.alive for processor in self.processors):
            raise RuntimeError(
                "cannot submit: no alive processors remain "
                "(all were removed or killed); queries would queue forever"
            )
        # Validate the whole batch before routing any of it: a mid-batch
        # failure would leave submit() partially applied, and the caller's
        # natural recovery (re-id and resubmit) would then run the already
        # routed prefix twice.
        queries = list(queries)
        batch_ids = set()
        for query in queries:
            if query.query_id in self._pending or query.query_id in batch_ids:
                raise ValueError(
                    f"query id {query.query_id} is already in flight; "
                    "replays need fresh ids (see QueryIdAllocator / "
                    "reset_query_ids)"
                )
            batch_ids.add(query.query_id)
            # Unregistered query types fail *here*, synchronously, with the
            # operator catalog in the message — inside a processor they
            # would kill the worker process and surface as an opaque
            # simulation deadlock.
            default_registry.for_query(query)
        if self.done.triggered:
            self.done = self.env.event()
        for query in queries:
            self._submitted += 1
            target = self.strategy.choose(query, self.loads())
            self._pending[query.query_id] = _PendingInfo(
                intended=target,
                decision_time=self.strategy.decision_time(self.num_processors),
                enqueued_at=self.env.now,
                routed_via=self.strategy.decision_label(query),
                tenant=tenant,
            )
            if target is not None and not 0 <= target < self.num_processors:
                raise ValueError(
                    f"strategy chose invalid processor {target}"
                )
            if target is not None and not self.processors[target].alive:
                # A drained/dead processor takes no new work; decoupling
                # lets the shared pool serve it (the same redistribution
                # remove_processor applies to already-queued work).
                # Without this, steal=False would strand the query in a
                # queue nothing ever dispatches from.
                target = None
            if target is None:
                self.pool.append(query)
            else:
                self.strategy.on_dispatch(query, target)
                self.queues[target].append(query)
        for processor_id in range(self.num_processors):
            if self.outstanding[processor_id] is None:
                self._dispatch(processor_id)

    # -- dispatch & stealing ------------------------------------------------
    def _take_next(self, processor_id: int) -> Optional[Tuple[Query, bool]]:
        own = self.queues[processor_id]
        if own:
            return own.popleft(), False
        if self.pool:
            return self.pool.popleft(), False
        if self.steal:
            victim = max(
                (p for p in range(self.num_processors) if p != processor_id),
                key=lambda p: len(self.queues[p]),
                default=None,
            )
            if victim is not None and self.queues[victim]:
                # Steal the most recently enqueued query: the victim keeps
                # the head entries, which fit its cache best.
                return self.queues[victim].pop(), True
        return None

    def _dispatch(self, processor_id: int) -> None:
        processor = self.processors[processor_id]
        if not processor.alive:
            return
        item = self._take_next(processor_id)
        if item is None:
            return
        query, stolen = item
        self.outstanding[processor_id] = (query, stolen)
        processor.inbox.put(query)

    # -- completion ----------------------------------------------------------
    def on_ack(
        self,
        processor_id: int,
        query: Query,
        stats: QueryStats,
        started: float,
        finished: float,
    ) -> None:
        """Completion callback from a processor; triggers the next dispatch."""
        entry = self.outstanding[processor_id]
        if entry is None or entry[0].query_id != query.query_id:
            raise RuntimeError("ack for a query that was not outstanding")
        _, stolen = entry
        self.outstanding[processor_id] = None
        info = self._pending.pop(query.query_id)
        record = QueryRecord(
            query_id=query.query_id,
            kind=type(query).__name__,
            node=query.node,
            intended_processor=info.intended,
            processor=processor_id,
            stolen=stolen,
            decision_time=info.decision_time,
            enqueued_at=info.enqueued_at,
            started_at=started,
            finished_at=finished,
            stats=stats,
            routed_via=info.routed_via,
            query_class=query_class(query),
            operator=operator_name(query),
            tenant=info.tenant,
        )
        self.records.append(record)
        self.strategy.on_feedback(
            RoutingFeedback(
                query=query,
                processor=processor_id,
                response_time=record.response_time,
                sojourn_time=record.sojourn_time,
                stolen=stolen,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
                processor_hit_rate=self.processors[processor_id].cache_hit_rate(),
                loads=tuple(self.loads()),
            )
        )
        self._completed += 1
        if self._backlog_waits:
            backlog = self.backlog()
            matured = [e for t, e in self._backlog_waits if backlog <= t]
            if matured:
                self._backlog_waits = [
                    (t, e) for t, e in self._backlog_waits if backlog > t
                ]
                for event in matured:
                    event.succeed(backlog)
        if self._completed == self._submitted and not self.done.triggered:
            self.done.succeed(self._completed)
        else:
            self._dispatch(processor_id)
        # Completion callbacks run last (on *every* ack, including the one
        # completing a batch): they see the settled backlog and may submit
        # further work, which re-arms ``done`` as usual.
        for callback in self._completion_callbacks:
            callback()

    def on_requeue(self, processor_id: int, query: Query) -> None:
        """A dead processor returned a query it never started executing."""
        entry = self.outstanding[processor_id]
        if entry is None or entry[0].query_id != query.query_id:
            raise RuntimeError("requeue for a query that was not outstanding")
        self.outstanding[processor_id] = None
        self.pool.appendleft(query)
        for other in range(self.num_processors):
            if self.outstanding[other] is None:
                self._dispatch(other)

    # -- fault tolerance & elasticity ------------------------------------------
    def alive_mask(self) -> List[bool]:
        """Per-processor liveness, indexed like :attr:`processors`."""
        return [processor.alive for processor in self.processors]

    def add_processor(self, processor: QueryProcessor) -> int:
        """Join a new processor: grow the queue/outstanding tables, start
        its worker loop, and put it to work immediately.

        The mechanical mirror of :meth:`remove_processor` — ids are
        assigned densely and never reused, so the joiner must carry the
        next id. Routing-table rebalance (bounded key movement) is the
        *strategy's* job, driven by the topology layer via
        :meth:`RoutingStrategy.on_membership_change`; without it the
        joiner still drains the shared pool and steals, it just owns no
        keys. Returns the joiner's processor id.
        """
        if self._closed:
            raise RuntimeError(
                "cannot add a processor: router is shut down"
            )
        if processor.processor_id != self.num_processors:
            raise ValueError(
                f"joining processor must take the next id "
                f"{self.num_processors}, got {processor.processor_id}"
            )
        self.processors.append(processor)
        self.queues.append(deque())
        self.outstanding.append(None)
        processor.start(self)
        # A joiner is idle by construction: give it queued work now.
        self._dispatch(processor.processor_id)
        return processor.processor_id

    def remove_processor(self, processor_id: int) -> int:
        """Drain a processor: no new dispatches; its queue redistributes.

        Decoupling makes this safe — any processor can serve any query — so
        the queued work simply moves to the shared pool. Returns how many
        queries were redistributed. An in-flight query finishes normally
        (graceful removal).

        Removing the *last alive* processor while work is still pending
        is refused loudly: the queued and pooled queries would otherwise
        strand forever behind the submit-time liveness guard, with
        nothing left to dispatch them.
        """
        processor = self.processors[processor_id]
        if processor.alive and self.backlog() > 0 and not any(
            other.alive
            for other in self.processors
            if other.processor_id != processor_id
        ):
            raise RuntimeError(
                f"refusing to remove processor {processor_id}: it is the "
                f"last alive processor and {self.backlog()} queries are "
                "still pending; drain first or add a replacement"
            )
        processor.alive = False
        moved = len(self.queues[processor_id])
        while self.queues[processor_id]:
            self.pool.append(self.queues[processor_id].popleft())
        for other in range(self.num_processors):
            if other != processor_id and self.outstanding[other] is None:
                self._dispatch(other)
        return moved
