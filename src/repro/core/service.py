"""Long-lived service facade: one decoupled cluster, many query sessions.

The paper's architecture exists to serve *online* queries arriving
continuously, but a :class:`~repro.core.cluster.GRoutingCluster` is a
one-shot experiment harness: every ``run()`` starts from cold caches
(§4.1), which is right for regenerating figures and wrong for studying
steady state. :class:`GraphService` is the serving-side entry point:

* **build once** — graph assets, storage tier, processors (and their
  caches), routing strategy and router are constructed when the service
  opens and live until it closes;
* **sessions** — a :class:`QuerySession` scopes one stream of queries:
  incremental :meth:`~QuerySession.submit`, batched
  :meth:`~QuerySession.submit_many`, or a generator-driven
  :meth:`~QuerySession.stream` that feeds the router's pipelined
  wave/backlog machinery; results come back as an iterator of
  :class:`~repro.core.metrics.QueryRecord`;
* **warm continuation** — closing a session leaves caches (and any
  adaptive routing state) warm; the next session starts where traffic
  left off, which is what lets benchmarks separate warm-up from steady
  state via windowed :meth:`~QuerySession.report`;
* **live reconfiguration** — :meth:`~QuerySession.set_routing` swaps the
  routing strategy mid-session without touching storage or caches,
  carrying learned adaptive state across the swap;
* **live graph updates** — :meth:`~QuerySession.apply_updates` mutates the
  served graph in place: dirty records are rewritten through the storage
  tier, invalidated from every processor cache, and routed by hash
  fallback until the incremental refresh re-indexes the dirty region
  (see :mod:`repro.core.updates`); :meth:`~QuerySession.stream` accepts
  workloads that interleave :class:`~repro.graph.updates.GraphUpdate`
  items with queries.

One service admits one active session at a time: the simulated router is
a single dispatch loop, and interleaving two id-spaces through it would
make every record ambiguous. Parallel sessions belong to parallel
services (one simulated cluster each), with
:class:`~repro.core.queries.QueryIdAllocator` strides keeping their query
ids disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import islice
from math import inf, nextafter
from typing import Iterable, Iterator, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..costs import DEFAULT_COSTS, CostModel, SpeedProfiles
from ..graph.digraph import Graph
from ..graph.updates import GraphUpdate
from ..sim import Environment, SimulationError
from ..storage.tier import StorageTier
from .admission import AdmissionConfig, AdmissionController, AdmissionStats
from .assets import GraphAssets
from .metrics import QueryRecord, WorkloadReport
from .placement import PlacementConfig, PlacementManager
from .topology import ClusterTopology, TopologyConfig

if TYPE_CHECKING:  # annotation only: workloads imports core, not vice versa
    from ..workloads.open_loop import Arrival
from .processor import QueryProcessor
from .queries import Query, QueryIdAllocator
from .router import Router
from .updates import LiveUpdateManager, UpdateReport
from .routing import (
    AdaptiveRouting,
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingStrategy,
)

ROUTING_CHOICES = (
    "next_ready", "hash", "landmark", "embed", "no_cache", "adaptive",
)

#: Config fields that shape the deployed hardware/caches. They cannot be
#: changed by a live ``set_routing`` — altering them means a new service.
STRUCTURAL_FIELDS = frozenset({
    "num_processors", "num_storage_servers", "cache_capacity_bytes",
    "cache_policy", "costs", "steal", "materialize_storage", "placement",
    "speed_profiles", "topology",
})


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment + algorithm knobs (defaults follow §4.1 Parameter Setting)."""

    num_processors: int = 7
    num_storage_servers: int = 4
    routing: str = "embed"
    cache_capacity_bytes: int = 16 << 20
    cache_policy: str = "lru"
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)
    load_factor: float = 20.0
    alpha: float = 0.5
    dim: int = 10
    num_landmarks: int = 96
    min_separation: int = 3
    embed_method: str = "simplex"
    steal: bool = True
    seed: int = 0
    materialize_storage: bool = False  # actually load records into the KV log
    # -- adaptive-routing knobs ----------------------------------------------
    #: Static arms the adaptive strategy can pick per query class.
    adaptive_arms: Tuple[str, ...] = ("hash", "landmark", "embed")
    #: Base exploration rate of the per-class epsilon-greedy policy.
    epsilon: float = 0.1
    #: Per-class decay applied to epsilon as decisions accumulate.
    epsilon_decay: float = 0.05
    #: Queries per audition epoch (each arm owns all traffic for one epoch).
    adaptive_epoch: int = 32
    #: EWMA smoothing for the latency / hit-rate / queue-depth feedback.
    feedback_alpha: float = 0.2
    #: Queries routed per submission wave. None = auto: everything at once
    #: for static strategies (decisions don't depend on feedback), small
    #: waves for adaptive so routing feedback informs later decisions.
    submit_batch: Optional[int] = None
    # -- live graph-update knobs ----------------------------------------------
    #: Automatically run the incremental routing refresh after this many
    #: applied updates (None = manual: staleness accumulates until
    #: ``refresh_routing()`` is called). See :mod:`repro.core.updates`.
    update_refresh_interval: Optional[int] = None
    # -- dynamic-placement knobs -----------------------------------------------
    #: Enable the dynamic-placement subsystem (heat tracking + periodic
    #: hot-record migration/replication — see :mod:`repro.core.placement`).
    #: None (the default) builds none of it: the storage tier behaves
    #: exactly as plain MurmurHash partitioning, bit-for-bit.
    placement: Optional[PlacementConfig] = None
    # -- elastic-topology knobs --------------------------------------------------
    #: Enable the elastic-topology layer (live join/leave, storage
    #: failover + repair, chaos schedules — see :mod:`repro.core.topology`).
    #: None builds none of it; an attached-but-idle topology is inert
    #: (bit-identical to a service without one).
    topology: Optional[TopologyConfig] = None
    #: Heterogeneous hardware: per-processor / per-server relative speed
    #: multipliers (see :class:`~repro.costs.SpeedProfiles`). None = the
    #: paper's homogeneous testbed, bit-for-bit.
    speed_profiles: Optional[SpeedProfiles] = None

    def with_routing(self, routing: str) -> "ClusterConfig":
        return replace(self, routing=routing)


class GraphService:
    """A long-lived decoupled graph-querying cluster serving sessions."""

    #: Default wave size for adaptive routing (see ClusterConfig.submit_batch):
    #: deep enough that the Eq. 3/7 load term still sees real queue depths,
    #: shallow enough that feedback reaches the strategy while it matters.
    ADAPTIVE_BATCH = 128
    #: Default wave size when streaming a workload of unknown length.
    STREAM_BATCH = 256

    def __init__(
        self,
        graph: Graph,
        config: Optional[ClusterConfig] = None,
        assets: Optional[GraphAssets] = None,
        landmark_index=None,
        embedding=None,
        sanitize: Optional[bool] = None,
    ) -> None:
        """``landmark_index`` / ``embedding`` override the assets-built
        artifacts — used by the graph-update experiments, where routing
        must run on *stale* preprocessing (Fig 10). ``sanitize`` arms the
        runtime sanitizer on the service's environment (default: the
        ``REPRO_SANITIZE`` environment variable)."""
        self._landmark_index_override = landmark_index
        self._embedding_override = embedding
        self.config = config or ClusterConfig()
        if self.config.routing not in ROUTING_CHOICES:
            raise ValueError(
                f"unknown routing {self.config.routing!r}; "
                f"choose from {ROUTING_CHOICES}"
            )
        if self.config.num_processors < 1:
            raise ValueError("need at least one query processor")
        self.assets = assets if assets is not None else GraphAssets(graph)
        # Shared staleness set: nodes whose routing info predates a graph
        # update. Created before the strategies so they can hold it by
        # reference; owned (and cleared) by the LiveUpdateManager.
        self._stale: set = set()
        self.env = Environment(sanitize=sanitize)
        self.tier = StorageTier(
            self.env,
            num_servers=self.config.num_storage_servers,
            service_model=self.config.costs.storage,
        )
        if self.config.speed_profiles is not None:
            # Heterogeneous storage hardware: scale each server's service
            # model in place (speed 2.0 = every cost halved). Processors
            # get theirs via _processor_costs below.
            for server in self.tier.servers:
                speed = self.config.speed_profiles.storage_speed(
                    server.server_id
                )
                if speed != 1.0:
                    server.service = server.service.scaled(speed)
        if self.config.materialize_storage:
            self.tier.load_graph(self.assets.graph)
        use_cache = self.config.routing != "no_cache"
        self.processors: List[QueryProcessor] = [
            QueryProcessor(
                self.env,
                processor_id=i,
                tier=self.tier,
                assets=self.assets,
                costs=self._processor_costs(i),
                cache_capacity_bytes=self.config.cache_capacity_bytes,
                cache_policy=self.config.cache_policy,
                use_cache=use_cache,
            )
            for i in range(self.config.num_processors)
        ]
        self.strategy = self._build_strategy(self.config)
        self.router = Router(
            self.env, self.strategy, self.processors, steal=self.config.steal
        )
        for processor in self.processors:
            processor.start(self.router)
        self.updates = LiveUpdateManager(self, self._stale)
        # Dynamic placement: heat tracking + periodic migration/replication.
        # Constructed (and its periodic process started) only when the
        # config opts in — a None config leaves the tier's directory/heat
        # hooks None, i.e. the exact pre-placement behaviour.
        self.placement: Optional[PlacementManager] = None
        if self.config.placement is not None:
            self.placement = PlacementManager(self, self.config.placement)
            self.placement.start()
        # Elastic topology: membership epochs, failover + repair, chaos
        # schedules. Built after placement so it can share the directory;
        # an attached-but-idle topology is inert (the parity tests pin
        # bit-identical replay against a service without one).
        self.topology: Optional[ClusterTopology] = None
        if self.config.topology is not None:
            self.topology = ClusterTopology(self, self.config.topology)
        self._active_session: Optional["QuerySession"] = None
        self._closed = False

    def _processor_costs(self, processor_id: int) -> CostModel:
        """Per-processor cost model under heterogeneous speed profiles."""
        cfg = self.config
        if cfg.speed_profiles is None:
            return cfg.costs
        speed = cfg.speed_profiles.processor_speed(processor_id)
        if speed == 1.0:
            return cfg.costs
        return replace(cfg.costs, compute=cfg.costs.compute.scaled(speed))

    @classmethod
    def open(
        cls,
        graph: Graph,
        config: Optional[ClusterConfig] = None,
        assets: Optional[GraphAssets] = None,
        **overrides,
    ) -> "GraphService":
        """Build assets and tiers once; serve sessions until :meth:`close`."""
        return cls(graph, config, assets=assets, **overrides)

    # -- strategy construction ----------------------------------------------
    def _build_strategy(
        self, cfg: ClusterConfig, routing: Optional[str] = None
    ) -> RoutingStrategy:
        routing = cfg.routing if routing is None else routing
        if routing in ("next_ready", "no_cache"):
            return NextReadyRouting()
        if routing == "hash":
            return HashRouting(cfg.num_processors)
        if routing == "landmark":
            index = self._landmark_index_override
            if index is None:
                index = self.assets.landmark_index(
                    cfg.num_processors, cfg.num_landmarks, cfg.min_separation
                )
            return LandmarkRouting(
                index, load_factor=cfg.load_factor, staleness=self._stale
            )
        if routing == "adaptive":
            if not cfg.adaptive_arms:
                raise ValueError("adaptive routing needs at least one arm")
            for arm in cfg.adaptive_arms:
                # "no_cache" is not a routing decision but a cluster mode
                # (caches off), which the adaptive wrapper can't honour —
                # allowing it would mislabel cached next-ready dispatch.
                if arm in ("adaptive", "no_cache") or arm not in ROUTING_CHOICES:
                    raise ValueError(f"invalid adaptive arm {arm!r}")
            return AdaptiveRouting(
                {arm: self._build_strategy(cfg, arm) for arm in cfg.adaptive_arms},
                epoch=cfg.adaptive_epoch,
                epsilon=cfg.epsilon,
                epsilon_decay=cfg.epsilon_decay,
                feedback_alpha=cfg.feedback_alpha,
                seed=cfg.seed,
            )
        # embed
        embedding = self._embedding_override
        if embedding is None:
            embedding = self.assets.embedding(
                dim=cfg.dim,
                num_landmarks=cfg.num_landmarks,
                min_separation=cfg.min_separation,
                method=cfg.embed_method,
            )
        return EmbedRouting(
            embedding,
            num_processors=cfg.num_processors,
            alpha=cfg.alpha,
            load_factor=cfg.load_factor,
            seed=cfg.seed,
            staleness=self._stale,
        )

    # -- sessions ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def session(
        self, id_allocator: Optional[QueryIdAllocator] = None
    ) -> "QuerySession":
        """Open a query session (one active per service).

        ``id_allocator``, when given, re-ids every submitted query from a
        session-owned allocator — deterministic, collision-free ids for
        replays and for parallel services sharing one query log.
        """
        if self._closed:
            raise RuntimeError(
                "GraphService is closed; open a new one to serve queries"
            )
        if self._active_session is not None and not self._active_session.closed:
            raise RuntimeError(
                "a session is already active on this service; close it "
                "first (one router serves one query stream at a time)"
            )
        if self.router.backlog() > 0:
            # An abandoned session (exception unwind seals without
            # draining) left queries in flight. Finish them now,
            # unattributed, so their completions can't land inside the new
            # session's record range.
            self.drain()
        session = QuerySession(self, id_allocator=id_allocator)
        self._active_session = session
        return session

    def _session_closed(self, session: "QuerySession") -> None:
        if self._active_session is session:
            self._active_session = None

    # -- live reconfiguration -------------------------------------------------
    def set_routing(
        self,
        routing: Optional[str] = None,
        carry_state: bool = True,
        **knobs,
    ) -> RoutingStrategy:
        """Swap the routing strategy without rebuilding storage or caches.

        ``routing`` picks a new scheme (default: keep the current one);
        ``knobs`` override algorithm fields of the config (load factors,
        adaptive knobs, ...). Structural fields — processors, storage,
        caches — are refused: changing them means deploying a new
        service. Caches keep whatever the previous strategy organised
        into them; that is the point.

        When both the old and new strategies are adaptive and
        ``carry_state`` is true, the learned arm state transfers, so the
        new instance continues committed instead of re-auditioning warm
        caches.
        """
        if self._closed:
            raise RuntimeError("GraphService is closed")
        structural = STRUCTURAL_FIELDS.intersection(knobs)
        if structural:
            raise ValueError(
                f"cannot change structural fields {sorted(structural)} on a "
                "live service; open a new GraphService instead"
            )
        new_routing = self.config.routing if routing is None else routing
        if new_routing not in ROUTING_CHOICES:
            raise ValueError(
                f"unknown routing {new_routing!r}; choose from {ROUTING_CHOICES}"
            )
        if "no_cache" in (new_routing, self.config.routing) and (
            new_routing != self.config.routing
        ):
            raise ValueError(
                "cache mode is structural: cannot switch to or from "
                "'no_cache' on a live service"
            )
        new_config = replace(self.config, routing=new_routing, **knobs)
        new_strategy = self._build_strategy(new_config)
        if (
            carry_state
            and isinstance(self.strategy, AdaptiveRouting)
            and isinstance(new_strategy, AdaptiveRouting)
        ):
            new_strategy.import_state(self.strategy.export_state())
        self.router.set_strategy(new_strategy)
        self.config = new_config
        self.strategy = new_strategy
        return new_strategy

    # -- live graph updates -----------------------------------------------------
    def apply_updates(self, updates: Iterable[GraphUpdate]) -> UpdateReport:
        """Apply a batch of graph mutations through every layer.

        The deltas land in the graph and assets, the dirty adjacency
        records are rewritten through the storage tier (advancing
        simulated time; concurrent queries contend with the writes), the
        dirty keys are invalidated in every processor cache, and the
        dirty nodes are marked routing-stale until the next incremental
        refresh (automatic every ``config.update_refresh_interval``
        applied updates, or on :meth:`refresh_routing`). See
        :mod:`repro.core.updates` for the full model.
        """
        if self._closed:
            raise RuntimeError("GraphService is closed")
        return self.updates.apply(list(updates))

    def refresh_routing(self) -> int:
        """Incrementally refresh routing info for the stale region.

        Re-assigns dirty nodes in any landmark index and re-embeds them
        in any embedding the current strategy (or its adaptive arms)
        routes with, then clears the staleness set; returns how many
        nodes were refreshed.
        """
        if self._closed:
            raise RuntimeError("GraphService is closed")
        return self.updates.refresh()

    # -- lifecycle -------------------------------------------------------------
    def drain(self) -> None:
        """Run the simulation until no submitted query remains in flight."""
        while self.router.backlog() > 0:
            try:
                self.env.run(until=self.router.done)
            except SimulationError as exc:
                self._raise_worker_crash(exc)

    def _raise_worker_crash(self, cause: SimulationError) -> None:
        """Re-raise a crashed worker's root cause instead of a deadlock.

        A processor worker that dies (e.g. :class:`StorageServerDown`
        with failover off) has no waiter, so its exception is stored on
        the process and the event loop simply runs dry. Surface the real
        error; if no worker crashed, the stall is genuine — re-raise it.
        """
        for processor in self.processors:
            failure = processor.failure
            if failure is not None:
                raise failure from cause
        raise cause

    def close(self, drain: bool = True) -> None:
        """Drain outstanding work, then refuse all further submissions.

        ``drain=False`` abandons in-flight work instead (used when
        unwinding an exception — finishing a workload the caller gave up
        on would be wrong, and a deadlocked drain would mask the original
        error).
        """
        if self._closed:
            return
        if self._active_session is not None and not self._active_session.closed:
            self._active_session.close(drain=drain)
        if drain:
            self.drain()
        self.router.shutdown()
        self._closed = True

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.close(drain=exc_type is None)

    # -- submission defaults ---------------------------------------------------
    def _default_batch(self, workload) -> int:
        batch = self.config.submit_batch
        if batch is None:
            if self.config.routing == "adaptive":
                return self.ADAPTIVE_BATCH
            try:
                return max(1, len(workload))
            except TypeError:  # a generator: stream in bounded waves
                return self.STREAM_BATCH
        if batch < 1:
            raise ValueError("submit_batch must be >= 1")
        return batch

    # -- diagnostics -----------------------------------------------------------
    def processor_utilizations(self) -> List[float]:
        return [p.utilization(self.env.now) for p in self.processors]

    def storage_utilizations(self) -> List[float]:
        return [s.utilization(self.env.now) for s in self.tier.servers]

    def server_stats(self, top_heat: int = 5) -> List[dict]:
        """Per-storage-server counters + top-k record heat (one dict per
        server, cumulative over the service lifetime).

        This is what makes placement decisions explainable from any
        run's report: which servers served/wrote how much, how busy
        their pipelines were, and — when the placement subsystem is on —
        which records are currently hottest on each. Heat pairs are
        ``(node_id, decayed_heat)``; the list is empty when placement is
        disabled.

        Servers that failed at any point additionally report their
        downtime windows and recovery state (keys present only when a
        transition happened, so fault-free runs keep their historical
        dict shape bit-for-bit).
        """
        elapsed = self.env.now
        heat = (
            self.placement.top_heat_by_server(top_heat)
            if self.placement is not None
            else [[] for _ in self.tier.servers]
        )
        stats = []
        for server in self.tier.servers:
            row = {
                "server": server.server_id,
                "requests_served": server.requests_served,
                "keys_served": server.keys_served,
                "bytes_served": server.bytes_served,
                "writes_served": server.writes_served,
                "records_written": server.records_written,
                "bytes_written": server.bytes_written,
                "records_held": len(server.store),
                "utilization": server.utilization(elapsed),
                "top_heat": heat[server.server_id],
            }
            if server.alive_transitions:
                windows = server.downtime_windows()
                row["downtime_windows"] = [
                    [down, up] for down, up in windows
                ]
                row["downtime_s"] = sum(
                    (elapsed if up is None else up) - down
                    for down, up in windows
                )
                row["recovered"] = bool(
                    windows and windows[-1][1] is not None
                ) or not windows
            stats.append(row)
        return stats


class QuerySession:
    """One scoped stream of queries through a :class:`GraphService`.

    Sessions delimit reporting windows, not cluster state: caches and
    routing state deliberately survive session boundaries (warm
    continuation). Obtain one via :meth:`GraphService.session`, preferably
    as a context manager; :meth:`close` drains in-flight work so the next
    session starts from an idle, warm cluster.
    """

    def __init__(
        self,
        service: GraphService,
        id_allocator: Optional[QueryIdAllocator] = None,
    ) -> None:
        self.service = service
        self.env = service.env
        self.router = service.router
        self._ids = id_allocator
        self.started_at = self.env.now
        self._start_index = len(self.router.records)
        self._end_index: Optional[int] = None
        self._cursor = self._start_index
        self.submitted = 0
        self._admission_stats: Optional[AdmissionStats] = None

    # -- state ----------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._end_index is not None

    def _end(self) -> int:
        """End of this session's slice of the router's record log."""
        if self._end_index is not None:
            return self._end_index
        return len(self.router.records)

    def backlog(self) -> int:
        """This session's submitted-but-incomplete query count."""
        return 0 if self.closed else self.router.backlog()

    @property
    def completed(self) -> int:
        """How many of this session's queries have completed (O(1) —
        safe to poll from simulation processes)."""
        return self._end() - self._start_index

    @property
    def records(self) -> List[QueryRecord]:
        """Records completed so far, in completion order (non-blocking).

        Copies the session's slice of the record log; poll
        :attr:`completed` instead when only the count is needed.
        """
        return self.router.records[self._start_index:self._end()]

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(
                "session is closed; open a new one on the service"
            )

    def _tag(self, query: Query) -> Query:
        if self._ids is None:
            return query
        return replace(query, query_id=self._ids.allocate())

    # -- submission ------------------------------------------------------------
    def submit(self, query: Query) -> Query:
        """Route one query immediately; returns the (possibly re-id'd) query.

        Submission alone does not advance simulated time — interleave with
        :meth:`results`, :meth:`drain` or :meth:`report` to execute.
        """
        self._check_open()
        query = self._tag(query)
        self.router.submit([query])
        self.submitted += 1
        return query

    def submit_many(self, queries: Iterable[Query]) -> List[Query]:
        """Route a batch in one wave; returns the submitted queries."""
        self._check_open()
        batch = [self._tag(q) for q in queries]
        self.router.submit(batch)
        self.submitted += len(batch)
        return batch

    def stream(
        self,
        workload: Iterable[Query],
        batch: Optional[int] = None,
        refill: Optional[int] = None,
    ) -> int:
        """Feed a workload — any iterable, generators included — through
        the router's pipelined wave/backlog machinery.

        Waves of ``batch`` queries are topped up whenever the cluster
        backlog drains below ``refill`` (default ``batch // 2``), so
        processors never idle at a wave boundary and feedback-driven
        strategies decide later waves with earlier acks already absorbed.
        Returns the number of queries submitted; completion is awaited by
        :meth:`drain` / :meth:`report` / :meth:`results`.

        The workload may interleave :class:`~repro.graph.updates.GraphUpdate`
        items with queries (e.g. :func:`repro.workloads.churn_stream`):
        each contiguous run of updates is applied — in stream order, so a
        query behind an update sees the mutated graph — via
        :meth:`apply_updates`, while queries already submitted keep
        executing concurrently with the update's storage writes. Updates
        do not count toward the returned submission total.
        """
        self._check_open()
        if batch is None:
            batch = self.service._default_batch(workload)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if refill is None:
            refill = max(1, batch // 2)
        iterator = iter(workload)
        submitted = 0
        wave = list(islice(iterator, batch))
        while wave:
            if submitted:
                self.env.run(until=self.router.when_backlog_at_most(refill))
            if any(isinstance(item, GraphUpdate) for item in wave):
                submitted += self._mixed_wave(wave)
            else:
                self.submit_many(wave)
                submitted += len(wave)
            wave = list(islice(iterator, batch))
        return submitted

    def _mixed_wave(self, wave: List[object]) -> int:
        """Submit one wave containing both queries and graph updates.

        Stream order is preserved: queries ahead of an update are
        submitted (and may execute) first, then the update batch is
        applied, then the remainder follows. Consecutive updates coalesce
        into one applied batch (one storage write round per burst).
        """
        submitted = 0
        queries: List[Query] = []
        updates: List[GraphUpdate] = []
        for item in wave:
            if isinstance(item, GraphUpdate):
                if queries:
                    self.submit_many(queries)
                    submitted += len(queries)
                    queries = []
                updates.append(item)
            else:
                if updates:
                    self.apply_updates(updates)
                    updates = []
                queries.append(item)
        if updates:
            self.apply_updates(updates)
        if queries:
            self.submit_many(queries)
            submitted += len(queries)
        return submitted

    # -- open-loop serving --------------------------------------------------------
    def serve(
        self,
        arrivals: Iterable["Arrival"],
        admission: Optional[AdmissionConfig] = None,
    ) -> AdmissionStats:
        """Serve an open-loop arrival stream to completion.

        ``arrivals`` is any time-ordered iterable of
        :class:`~repro.workloads.open_loop.Arrival` items (use
        :func:`~repro.workloads.open_loop.merge_arrivals` to multiplex
        tenants); each query is *injected at its absolute simulated
        timestamp* (offset from the moment this call starts), whether or
        not earlier queries have completed — the opposite of
        :meth:`stream`'s closed-loop waves, and the regime where offered
        load can exceed capacity.

        ``admission`` enables the per-tenant admission-control /
        fair-queueing layer (see :mod:`repro.core.admission`): bounded
        tenant queues whose overflow *rejects* (per-tenant backpressure),
        DRR release into the router, and load shedding that drops heavy
        operators first under overload. ``None`` serves naively — every
        arrival goes straight to the router FIFO, so past saturation the
        backlog (and every sojourn time) grows without bound; that is the
        baseline the SLO benchmark collapses.

        Runs until every arrival has been offered and every admitted
        query completed; returns the :class:`AdmissionStats` (also
        attached to this session's :meth:`report` as ``report.admission``,
        lighting up the per-tenant p99/p999 and goodput-vs-offered SLO
        metrics). Shed and rejected queries produce no records.
        """
        self._check_open()
        env = self.env
        router = self.router
        controller = AdmissionController(router, admission).attach()
        origin = env.now
        tag = self._tag

        updates = self.service.updates

        def drive():
            last = None
            for arrival in arrivals:
                at = arrival.at
                if last is not None and at < last:
                    raise ValueError(
                        "arrival stream is not time-ordered "
                        f"({at} after {last}); merge per-tenant streams "
                        "with repro.workloads.merge_arrivals"
                    )
                last = at
                delay = origin + at - env.now
                if delay > 0:
                    yield env.timeout(delay)
                if isinstance(arrival.query, GraphUpdate):
                    # Mixed open-loop streams (e.g. churn_stream through
                    # poisson_arrivals) carry graph mutations between
                    # queries. Updates bypass admission — they are not
                    # sheddable work — and apply inline, so the driver
                    # back-pressures on the write path exactly as stream()
                    # does in closed loop.
                    yield from updates.apply_process([arrival.query])
                    continue
                controller.offer(tag(arrival.query), arrival.tenant)

        try:
            driver = env.process(drive())
            env.run(until=driver)
            controller.pump()
            while router.backlog() > 0 or controller.queued() > 0:
                if router.backlog() == 0 and controller.pump() == 0:
                    break  # defensive: nothing in flight, nothing releasable
                env.run(until=router.done)
        except SimulationError as exc:
            self.service._raise_worker_crash(exc)
        finally:
            controller.detach()
        stats = controller.stats()
        self._admission_stats = stats
        self.submitted += stats.admitted
        return stats

    # -- completion --------------------------------------------------------------
    def results(self) -> Iterator[QueryRecord]:
        """Yield this session's records in completion order, advancing the
        simulation as needed until the session's backlog is drained.

        Safe to interleave with further :meth:`submit` calls: newly
        submitted queries extend the iteration.
        """
        while True:
            end = self._end()
            while self._cursor < end:
                record = self.router.records[self._cursor]
                self._cursor += 1
                yield record
            if self.closed or self.router.backlog() == 0:
                return
            self.env.run(
                until=self.router.when_backlog_at_most(self.router.backlog() - 1)
            )

    def drain(self) -> None:
        """Run the simulation until every submitted query has completed."""
        if not self.closed:
            self.service.drain()

    # -- live graph updates -------------------------------------------------------
    def apply_updates(self, updates: Iterable[GraphUpdate]) -> UpdateReport:
        """Apply graph mutations mid-session (see
        :meth:`GraphService.apply_updates`). Advances simulated time while
        the storage writes are in flight; this session's submitted queries
        keep executing (and completing) concurrently."""
        self._check_open()
        return self.service.apply_updates(updates)

    def refresh_routing(self) -> int:
        """Run the incremental routing refresh now (see
        :meth:`GraphService.refresh_routing`)."""
        self._check_open()
        return self.service.refresh_routing()

    # -- reconfiguration ---------------------------------------------------------
    def set_routing(
        self,
        routing: Optional[str] = None,
        carry_state: bool = True,
        **knobs,
    ) -> RoutingStrategy:
        """Swap routing strategies mid-session (see
        :meth:`GraphService.set_routing`); storage and caches stay put."""
        self._check_open()
        return self.service.set_routing(
            routing, carry_state=carry_state, **knobs
        )

    # -- reporting ---------------------------------------------------------------
    def report(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> WorkloadReport:
        """Workload report over this session's queries (drains first).

        ``since``/``until`` (simulated seconds) clip the report to the
        queries completing in ``[since, until)`` — e.g.
        ``report(since=warmup_end)`` measures steady state only. Defaults
        cover the whole session. Finer segmentation is on the report
        itself: :meth:`WorkloadReport.window`, :meth:`WorkloadReport.windows`
        and :meth:`WorkloadReport.per_window_stats`.
        """
        if not self.closed:
            self.drain()
        records = sorted(
            self.router.records[self._start_index:self._end()],
            key=lambda r: r.query_id,
        )
        ended_at = max(
            (r.finished_at for r in records), default=self.started_at
        )
        config = self.service.config
        placement = self.service.placement
        report = WorkloadReport(
            records=records,
            makespan=ended_at - self.started_at,
            # The router's live count, not the config's: join/leave can
            # change membership mid-session (identical when it didn't).
            num_processors=self.router.num_processors,
            num_storage_servers=config.num_storage_servers,
            routing=config.routing,
            # Admission outcome of this session's open-loop serve, if any
            # (the latest serve's — one serve per session is the intended
            # shape). Enables the per-tenant / goodput SLO metrics.
            admission=self._admission_stats,
            # Per-server observability + placement itemization, snapshotted
            # at report time (cumulative over the service lifetime).
            per_server=self.service.server_stats(),
            placement=placement.stats() if placement is not None else None,
        )
        if since is not None or until is not None:
            t0 = self.started_at if since is None else since
            t1 = nextafter(ended_at, inf) if until is None else until
            report = report.window(t0, t1)
        return report

    # -- lifecycle ----------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Drain in-flight work and seal the session's record range.

        ``drain=False`` seals immediately, abandoning in-flight work
        (exception unwind — see :meth:`GraphService.close`).
        """
        if self.closed:
            return
        if drain:
            self.drain()
        self._end_index = len(self.router.records)
        self.service._session_closed(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.close(drain=exc_type is None)
