"""GNN-style neighborhood sampling operator.

``sample`` draws a layered fanout sample around a seed node — the access
pattern of GraphSAGE-style minibatch training: per layer *i*, up to
``fanouts[i]`` neighbors of every frontier node. It expands a frontier
like an aggregation but touches a bounded, randomized subset of it, so
its cost sits between a walk and a full traversal (classified
``traversal``: the frontier still compounds across layers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..metrics import QueryStats
from ..queries import NeighborhoodSampleQuery
from .gather import gather_nodes

if TYPE_CHECKING:  # pragma: no cover
    from ..processor import QueryProcessor


def execute_neighborhood_sample(processor: "QueryProcessor",
                                query: NeighborhoodSampleQuery):
    """Layered fanout sampling: gather each layer's newly-sampled records."""
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]
    rng = np.random.default_rng((query.seed, query.node))

    sampled = np.zeros(csr.num_nodes, dtype=bool)
    sampled[source] = True
    frontier = np.array([source], dtype=np.int64)
    yield from gather_nodes(processor, frontier, stats,
                            count_in_stats=False)

    total = 0
    for fanout in query.fanouts:
        picks = []
        for u in frontier:
            row = csr.neighbors_of(int(u))
            if row.size == 0:
                continue
            if row.size <= fanout:
                picks.append(row)
            else:
                picks.append(rng.choice(row, size=fanout, replace=False))
        if not picks:
            break
        layer = np.unique(np.concatenate(picks))
        fresh = layer[~sampled[layer]]
        if fresh.size:
            sampled[fresh] = True
            total += int(fresh.size)
            yield from gather_nodes(processor, fresh, stats)
            compute = processor.costs.compute.per_node * fresh.size
            if compute > 0:
                yield env.timeout(compute)
        frontier = layer

    stats.result = total
    return stats


# -- workload factory ---------------------------------------------------------
#: Fanout of the first sampled layer; deeper layers halve it (min 2).
SAMPLE_BASE_FANOUT = 8


def make_neighborhood_sample(node: int, query_id: int, hops: int,
                             ball: np.ndarray, rng: np.random.Generator) -> NeighborhoodSampleQuery:
    del ball
    fanouts = tuple(
        max(2, SAMPLE_BASE_FANOUT >> layer) for layer in range(max(1, hops))
    )
    return NeighborhoodSampleQuery(
        node=node, query_id=query_id, fanouts=fanouts,
        seed=int(rng.integers(0, 2**31)),
    )
