"""Shared record-gathering machinery every operator executor builds on.

An executor is a simulation process combining:

1. **cache probes** over the nodes the traversal touches (lookup cost),
2. **storage fetches** for misses — one multiget per owning storage server,
   issued in parallel, each paying network round-trip + server queueing,
3. **cache admission** of fetched records (insert cost),
4. **compute** proportional to the records scanned.

Topology comes from the shared read-only CSR views in
:class:`~repro.core.assets.GraphAssets`; which records are cached, and all
timing, is per-processor simulated state. :func:`gather_nodes` is the one
primitive custom operators need — everything else is plain numpy over the
CSR views.

Hot-path design
---------------

The per-server round trip used to be a generator chain (request-transfer
timeout, a spawned ``serve_process``, response-transfer timeout) nested in
its own :class:`~repro.sim.events.Process`. :class:`_ServerFetch` fuses it
into a callback chain over precomputed latencies: request arrival →
pipeline grant → service end (release) → response arrival → completion.
Queueing still goes through the server's FIFO pipeline ``Resource``, so
contention, utilisation accounting and failure injection are identical to
the generator version — the simulated times and their ordering are
bit-for-bit the same, with two generator trampolines, two ``Process``
objects and an ``Initialize`` event per fetch gone from the hot path.

``gather_nodes`` itself is array-native end-to-end: the frontier ndarray
flows into :meth:`ProcessorCache.get_many`, the missed keys come back as
an ``int64`` ndarray used directly for owner lookup, per-server bincounts
and admission — no ``tolist()``/``asarray`` round-trips at the interfaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...sim import Event
from ...storage.placement import pick_read_replica
from ...storage.server import StorageServerDown
from ..metrics import QueryStats

if TYPE_CHECKING:  # pragma: no cover
    from ..processor import QueryProcessor

_REQUEST_HEADER_BYTES = 24
_PER_KEY_REQUEST_BYTES = 8
_RESPONSE_HEADER_BYTES = 16


class _ServerFetch(Event):
    """One in-flight multiget round trip to a single storage server.

    The fetch *is* its own completion event: it subclasses
    :class:`~repro.sim.events.Event` and succeeds when the response
    payload has fully arrived (or fails with
    :class:`StorageServerDown`), so a gather wave allocates one object
    per touched server instead of a fetch-plus-event pair. The chain is
    driven entirely by event callbacks on the simulation kernel. Keep
    the stage order in lockstep with ``StorageServer.serve_process``,
    which is the generator twin used by the storage-tier tests.
    """

    __slots__ = ("processor", "server", "num_keys", "nbytes", "request")

    def __init__(self, processor: "QueryProcessor", server_id: int,
                 num_keys: int, nbytes: int) -> None:
        env = processor.env
        super().__init__(env)
        self.processor = processor
        self.server = processor.tier.servers[server_id]
        self.num_keys = num_keys
        self.nbytes = nbytes
        request_bytes = _REQUEST_HEADER_BYTES + _PER_KEY_REQUEST_BYTES * num_keys
        arrival = env.timeout(
            processor.costs.network.transfer_time(request_bytes)
        )
        arrival.callbacks.append(self._on_arrival)

    def _on_arrival(self, _event: Event) -> None:
        """Request reached the server: join the FIFO service pipeline."""
        request = self.server.pipeline.request()
        self.request = request
        request.callbacks.append(self._on_grant)

    def _on_grant(self, _event: Event) -> None:
        server = self.server
        if not server.alive:
            server.pipeline.release(self.request)
            self.fail(
                StorageServerDown(f"storage server {server.server_id} is down")
            )
            return
        service = server.env.timeout(
            server.service.service_time(self.num_keys, self.nbytes)
        )
        service.callbacks.append(self._on_service_end)

    def _on_service_end(self, _event: Event) -> None:
        server = self.server
        server.requests_served += 1
        server.keys_served += self.num_keys
        server.bytes_served += self.nbytes
        server.pipeline.release(self.request)
        response = self.env.timeout(
            self.processor.costs.network.transfer_time(
                _RESPONSE_HEADER_BYTES + self.nbytes
            )
        )
        response.callbacks.append(self._on_response)

    def _on_response(self, _event: Event) -> None:
        self.succeed(None)


def gather_nodes(processor: "QueryProcessor", nodes: np.ndarray,
                 stats: QueryStats, count_in_stats: bool = True):
    """Make the records of ``nodes`` (compact indices) locally available.

    Probes the processor cache, fetches misses from the storage tier
    (grouped per owning server, in parallel) and admits them. Updates
    ``stats`` unless ``count_in_stats`` is False (used for the query node
    itself, which Eq. 8 excludes from hit/miss accounting).

    ``nodes`` is expected deduplicated (every built-in executor passes
    ``np.unique`` output or a single node). The cache itself probes per
    distinct key, so a duplicated frontier entry costs one fetch, not
    two — but the ``len(nodes) - len(missed)`` hit accounting here would
    overstate hits for it.

    Executors consume it with ``yield from`` — it runs inline in the
    calling process, so a sequential gather costs no extra ``Process``.
    Wrap it in ``env.process(...)`` only to overlap several gathers.
    """
    env = processor.env
    costs = processor.costs
    cache = processor.cache
    sizes = processor.assets.record_sizes

    if processor.use_cache:
        missed = cache.get_many(nodes)
        lookup_time = costs.cache.lookup * len(nodes)
        if lookup_time > 0:
            yield env.timeout(lookup_time)
    else:
        missed = nodes

    num_hits = len(nodes) - len(missed)
    if count_in_stats:
        stats.cache_hits += num_hits
        stats.cache_misses += len(missed)
        stats.nodes_touched += len(nodes)

    if missed.size:
        tier = processor.tier
        if tier.heat is not None:
            # Decayed access-frequency tracking for dynamic placement.
            # Pure bookkeeping — no simulated time passes, so runs with
            # heat tracking on but no directory exceptions stay
            # bit-identical to runs without the subsystem.
            tier.heat.touch(missed, env.now)
        directory = tier.directory
        overlay = (
            directory.by_cache_key
            if directory is not None and directory else None
        )
        if missed.size == 1:
            # Walk steps and point probes miss one record at a time; skip
            # the per-server grouping machinery for the single fetch.
            node = missed[0]
            miss_sizes = sizes[node:node + 1]
            total_bytes = int(miss_sizes[0])
            sid = int(processor.owner_of[node])
            if overlay is not None:
                entry = overlay.get(int(node))
                if entry is not None:
                    sid = pick_read_replica(entry.replicas, tier.servers)
            if tier.on_read_failure is not None \
                    and not tier.servers[sid].alive:
                # Demand repair: tell the topology layer which key this
                # (about-to-fail) probe is blocked on.
                tier.on_read_failure([int(node)])
            fetches = [_ServerFetch(processor, sid, 1, total_bytes)]
        else:
            owners = processor.owner_of[missed]
            if overlay is not None:
                # Read-any: migrated/replicated misses go to the
                # least-loaded live replica instead of the hash owner.
                owners = owners.copy()
                servers = tier.servers
                for pos, cache_key in enumerate(missed.tolist()):
                    entry = overlay.get(cache_key)
                    if entry is not None:
                        owners[pos] = pick_read_replica(
                            entry.replicas, servers
                        )
            miss_sizes = sizes[missed]
            num_servers = tier.num_servers
            counts = np.bincount(owners, minlength=num_servers)
            byte_sums = np.bincount(owners, weights=miss_sizes,
                                    minlength=num_servers)
            touched = np.nonzero(counts)[0]
            if tier.on_read_failure is not None:
                for sid in touched.tolist():
                    if not tier.servers[sid].alive:
                        tier.on_read_failure(
                            missed[owners == sid].tolist()
                        )
            fetches = [
                _ServerFetch(processor, int(sid), int(counts[sid]),
                             int(byte_sums[sid]))
                for sid in touched
            ]
            total_bytes = int(byte_sums.sum())
        if count_in_stats:
            stats.bytes_fetched += total_bytes
            stats.storage_requests += len(fetches)
        if len(fetches) == 1:
            # One touched server (every point probe and walk step, plus
            # any frontier that happens to land on a single owner): wait
            # on the fetch itself. An AllOf wrapper here would add a
            # condition allocation *and* an extra same-instant event
            # dispatch per wave for nothing — the fetch is already the
            # completion event.
            yield fetches[0]
        else:
            yield env.all_of(fetches)

        if processor.use_cache:
            cache.put_many(missed, miss_sizes)
            insert_time = costs.cache.insert * len(missed)
            if insert_time > 0:
                yield env.timeout(insert_time)
