"""Shared record-gathering machinery every operator executor builds on.

An executor is a simulation process combining:

1. **cache probes** over the nodes the traversal touches (lookup cost),
2. **storage fetches** for misses — one multiget per owning storage server,
   issued in parallel, each paying network round-trip + server queueing,
3. **cache admission** of fetched records (insert cost),
4. **compute** proportional to the records scanned.

Topology comes from the shared read-only CSR views in
:class:`~repro.core.assets.GraphAssets`; which records are cached, and all
timing, is per-processor simulated state. :func:`gather_nodes` is the one
primitive custom operators need — everything else is plain numpy over the
CSR views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..metrics import QueryStats

if TYPE_CHECKING:  # pragma: no cover
    from ..processor import QueryProcessor

_REQUEST_HEADER_BYTES = 24
_PER_KEY_REQUEST_BYTES = 8
_RESPONSE_HEADER_BYTES = 16


def _server_fetch(processor: "QueryProcessor", server_id: int, num_keys: int,
                  nbytes: int):
    """Round trip to one storage server: request out, service, payload back."""
    env = processor.env
    network = processor.costs.network
    request_bytes = _REQUEST_HEADER_BYTES + _PER_KEY_REQUEST_BYTES * num_keys
    yield env.timeout(network.transfer_time(request_bytes))
    server = processor.tier.servers[server_id]
    yield env.process(server.serve_process(num_keys, nbytes))
    yield env.timeout(network.transfer_time(_RESPONSE_HEADER_BYTES + nbytes))


def gather_nodes(processor: "QueryProcessor", nodes: np.ndarray,
                 stats: QueryStats, count_in_stats: bool = True):
    """Make the records of ``nodes`` (compact indices) locally available.

    Probes the processor cache, fetches misses from the storage tier
    (grouped per owning server, in parallel) and admits them. Updates
    ``stats`` unless ``count_in_stats`` is False (used for the query node
    itself, which Eq. 8 excludes from hit/miss accounting).
    """
    env = processor.env
    costs = processor.costs
    cache = processor.cache
    sizes = processor.assets.record_sizes

    if processor.use_cache:
        missed = cache.get_many(nodes.tolist())
        lookup_time = costs.cache.lookup * len(nodes)
        if lookup_time > 0:
            yield env.timeout(lookup_time)
    else:
        missed = nodes.tolist()

    num_hits = len(nodes) - len(missed)
    if count_in_stats:
        stats.cache_hits += num_hits
        stats.cache_misses += len(missed)
        stats.nodes_touched += len(nodes)

    if missed:
        missed_arr = np.asarray(missed, dtype=np.int64)
        owners = processor.owner_of[missed_arr]
        miss_sizes = sizes[missed_arr]
        num_servers = processor.tier.num_servers
        counts = np.bincount(owners, minlength=num_servers)
        byte_sums = np.bincount(owners, weights=miss_sizes, minlength=num_servers)
        fetches = [
            env.process(
                _server_fetch(processor, int(sid), int(counts[sid]),
                              int(byte_sums[sid]))
            )
            for sid in np.nonzero(counts)[0]
        ]
        total_bytes = int(byte_sums.sum())
        if count_in_stats:
            stats.bytes_fetched += total_bytes
            stats.storage_requests += len(fetches)
        yield env.all_of(fetches)

        if processor.use_cache:
            cache.put_many(zip(missed, miss_sizes.tolist(), strict=True))
            insert_time = costs.cache.insert * len(missed)
            if insert_time > 0:
                yield env.timeout(insert_time)
