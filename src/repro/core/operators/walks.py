"""Step-bounded walk operators.

``walk`` is the paper's h-step random walk with restart (§2.2), moved here
verbatim from the old monolithic ``engine.py``. ``ppr`` is the multi-walk
personalized-PageRank estimator built on the same step mechanics: many
short restarting walks from one seed node, whose visit support
approximates the node's PPR mass — the classic random-surfer Monte Carlo.
Both touch one record per step, so their cache locality is the walk path
itself (the ``walk`` cost class).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from ..metrics import QueryStats
from ..queries import PersonalizedPageRankQuery, RandomWalkQuery
from .gather import gather_nodes

if TYPE_CHECKING:  # pragma: no cover
    from ..processor import QueryProcessor


def execute_random_walk(processor: "QueryProcessor", query: RandomWalkQuery):
    """h-step random walk with restart; touches one record per step."""
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]
    rng = np.random.default_rng((query.seed, query.node))

    current = source
    path_length = 0
    yield from gather_nodes(
        processor, np.array([source], dtype=np.int64), stats,
        count_in_stats=False,
    )
    for _step in range(query.steps):
        row = csr.neighbors_of(current)
        if row.size == 0 or rng.random() < query.restart_prob:
            current = source
        else:
            current = int(row[rng.integers(0, row.size)])
            yield from gather_nodes(
                processor, np.array([current], dtype=np.int64), stats,
            )
        path_length += 1
        walk_cost = processor.costs.compute.per_walk_step
        if walk_cost > 0:
            yield env.timeout(walk_cost)

    stats.result = path_length
    return stats


def execute_ppr(processor: "QueryProcessor",
                query: PersonalizedPageRankQuery):
    """Monte-Carlo personalized PageRank: ``walks`` restarting walks.

    Result is the support size of the visit-count estimate (how many
    distinct nodes carry PPR mass for this seed). Each step pays the
    per-step compute cost and gathers the stepped-to record, exactly like
    a single random walk — the multi-walk structure is what concentrates
    repeat visits (and therefore cache hits) around the seed.
    """
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]
    rng = np.random.default_rng((query.seed, query.node))

    yield from gather_nodes(
        processor, np.array([source], dtype=np.int64), stats,
        count_in_stats=False,
    )
    visits: Dict[int, int] = {}
    for _walk in range(query.walks):
        current = source
        for _step in range(query.steps):
            row = csr.neighbors_of(current)
            if row.size == 0 or rng.random() < query.restart_prob:
                current = source
            else:
                current = int(row[rng.integers(0, row.size)])
                visits[current] = visits.get(current, 0) + 1
                yield from gather_nodes(
                    processor, np.array([current], dtype=np.int64), stats,
                )
            walk_cost = processor.costs.compute.per_walk_step
            if walk_cost > 0:
                yield env.timeout(walk_cost)

    stats.result = len(visits)
    return stats


# -- workload factories -------------------------------------------------------
def make_walk(node: int, query_id: int, hops: int,
              ball: np.ndarray, rng: np.random.Generator) -> RandomWalkQuery:
    del ball  # walks wander; no second anchor to draw
    return RandomWalkQuery(node=node, query_id=query_id, steps=hops,
                           seed=int(rng.integers(0, 2**31)))


#: Walks per PPR query materialised by the workload factory.
PPR_FACTORY_WALKS = 4


def make_ppr(node: int, query_id: int, hops: int,
             ball: np.ndarray, rng: np.random.Generator) -> PersonalizedPageRankQuery:
    del ball
    return PersonalizedPageRankQuery(
        node=node, query_id=query_id, walks=PPR_FACTORY_WALKS,
        steps=max(1, hops), seed=int(rng.integers(0, 2**31)),
    )
