"""First-class query-operator registry: the open operator set.

The paper hardwires three h-hop traversal types (§2.2) into its engine;
related systems treat the operator set as *open* — PHD-Store adapts its
engine per query pattern, and batched multi-source reachability work
(Fan et al.) needs queries our single-anchor API could not express. This
module makes every query type a registered :class:`QueryOperator` bundling

* an **executor** — the simulation process the engine runs per query;
* a **cost class** — ``point`` / ``walk`` / ``traversal`` (or a callable
  deriving one from the query's parameters), feeding the per-class
  metrics and adaptive routing's per-class arms;
* a **routing-key extractor** — the anchor node(s) routing strategies
  operate on; multi-anchor queries expose several and strategies
  aggregate them (plurality vote, distance mean, coordinate centroid);
* an optional **workload factory** — how the ``*_stream`` workload
  generators materialise this operator from a sampled node.

Registering an operator is the *complete* integration surface: engine
dispatch, router bookkeeping, query classification and workload
generation all resolve through registry lookups, so a new query type
needs zero edits under ``repro/core`` (see ``examples/custom_operator.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Optional,
    Tuple,
    Type,
    Union,
)

import numpy as np

from ..queries import QUERY_CLASSES, Query


class UnknownQueryTypeError(TypeError):
    """A query reached the engine without a registered operator."""


class UnknownOperatorError(ValueError):
    """An operator name (e.g. a workload ``mix`` entry) is not registered."""


#: Executor signature: a simulation process (generator) returning QueryStats.
Executor = Callable[[object, Query], object]
#: Workload factory signature: build one query of this operator around
#: ``node``. ``ball`` is the sampling pool (hotspot ball or eligible set)
#: targets/extra anchors are drawn from; ``rng`` the stream's generator.
WorkloadFactory = Callable[..., Query]


@dataclass(frozen=True)
class QueryOperator:
    """One pluggable query type: executor + cost class + routing keys.

    ``cost_class`` is either one of :data:`~repro.core.queries.QUERY_CLASSES`
    or a callable deriving the class from a query instance (e.g. 0/1-hop
    aggregations are ``point``, deeper ones ``traversal``).

    ``routing_keys`` maps a query to the tuple of anchor node ids routing
    strategies should consider; ``None`` means the default single anchor
    ``(query.node,)``.
    """

    name: str
    query_type: Type[Query]
    executor: Executor
    cost_class: Union[str, Callable[[Query], str]]
    routing_keys: Optional[Callable[[Query], Tuple[int, ...]]] = None
    workload_factory: Optional[WorkloadFactory] = None


class OperatorRegistry:
    """Name- and type-keyed registry of :class:`QueryOperator` entries."""

    def __init__(self) -> None:
        self._by_name: Dict[str, QueryOperator] = {}
        self._by_type: Dict[type, QueryOperator] = {}

    # -- registration --------------------------------------------------------
    def register(
        self, operator: QueryOperator, replace: bool = False
    ) -> QueryOperator:
        """Add an operator; refuses name/type collisions unless ``replace``."""
        if not operator.name:
            raise ValueError("operator name must be non-empty")
        if isinstance(operator.cost_class, str) and (
            operator.cost_class not in QUERY_CLASSES
        ):
            raise ValueError(
                f"cost_class {operator.cost_class!r} is not one of "
                f"{QUERY_CLASSES} (pass a callable for derived classes)"
            )
        if not isinstance(operator.query_type, type) or not issubclass(
            operator.query_type, Query
        ):
            raise ValueError("query_type must be a Query subclass")
        if not replace:
            if operator.name in self._by_name:
                raise ValueError(
                    f"operator name {operator.name!r} is already registered; "
                    "pass replace=True to override"
                )
            if operator.query_type in self._by_type:
                existing = self._by_type[operator.query_type].name
                raise ValueError(
                    f"query type {operator.query_type.__name__} is already "
                    f"registered as operator {existing!r}; pass replace=True "
                    "to override"
                )
        else:
            # Drop whatever previously owned this name or type, so the
            # registry never holds dangling cross-references.
            previous = self._by_name.pop(operator.name, None)
            if previous is not None:
                self._by_type.pop(previous.query_type, None)
            previous = self._by_type.pop(operator.query_type, None)
            if previous is not None:
                self._by_name.pop(previous.name, None)
        self._by_name[operator.name] = operator
        self._by_type[operator.query_type] = operator
        return operator

    def unregister(self, name: str) -> QueryOperator:
        """Remove and return the operator registered under ``name``."""
        operator = self._by_name.pop(name, None)
        if operator is None:
            raise UnknownOperatorError(
                f"no operator named {name!r}; registered: {self.describe()}"
            )
        self._by_type.pop(operator.query_type, None)
        return operator

    # -- lookups -------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Registered operator names, in registration order."""
        return tuple(self._by_name)

    def describe(self) -> str:
        """Human-readable ``name (QueryType)`` listing for error messages."""
        if not self._by_name:
            return "(none)"
        return ", ".join(
            f"{name} ({op.query_type.__name__})"
            for name, op in self._by_name.items()
        )

    def get(self, name: str) -> QueryOperator:
        operator = self._by_name.get(name)
        if operator is None:
            raise UnknownOperatorError(
                f"no operator named {name!r}; registered: {self.describe()}"
            )
        return operator

    def for_query_type(self, query_type: type) -> Optional[QueryOperator]:
        """Operator for a query type, honouring subclassing via the MRO."""
        operator = self._by_type.get(query_type)
        if operator is not None:
            return operator
        for base in query_type.__mro__[1:]:
            operator = self._by_type.get(base)
            if operator is not None:
                return operator
        return None

    def for_query(self, query: Query) -> QueryOperator:
        """Operator for a query instance; raises a registry-driven error.

        The error names every registered operator, so a typo'd or
        unregistered query type fails with the catalog in hand instead of
        an opaque ``TypeError``.
        """
        operator = self.for_query_type(type(query))
        if operator is None:
            raise UnknownQueryTypeError(
                f"no registered operator for query type "
                f"{type(query).__name__}; registered operators: "
                f"{self.describe()}. Register one via "
                "repro.core.operators.register(QueryOperator(...))"
            )
        return operator

    # -- per-query services ---------------------------------------------------
    def classify(self, query: Query) -> str:
        """Cost class of ``query`` (``point`` for unregistered types)."""
        operator = self.for_query_type(type(query))
        if operator is None:
            return "point"
        if callable(operator.cost_class):
            return operator.cost_class(query)
        return operator.cost_class

    def routing_keys(self, query: Query) -> Tuple[int, ...]:
        """Anchor node ids for routing; always non-empty.

        Unregistered types and operators without an extractor fall back to
        the single classic anchor ``(query.node,)``.
        """
        operator = self.for_query_type(type(query))
        if operator is None or operator.routing_keys is None:
            return (query.node,)
        keys = tuple(operator.routing_keys(query))
        return keys if keys else (query.node,)

    def operator_name(self, query: Query) -> str:
        """Registered name of a query's operator (type name if unknown)."""
        operator = self.for_query_type(type(query))
        return operator.name if operator is not None else type(query).__name__

    def execute(self, processor, query: Query):
        """Dispatch ``query`` to its registered executor."""
        return self.for_query(query).executor(processor, query)

    def make(
        self,
        kind: str,
        node: int,
        query_id: int,
        hops: int,
        ball: np.ndarray,
        rng: np.random.Generator,
    ) -> Query:
        """Build one ``kind`` query via its workload factory."""
        operator = self._by_name.get(kind)
        if operator is None or operator.workload_factory is None:
            with_factories = ", ".join(
                name for name, op in self._by_name.items()
                if op.workload_factory is not None
            ) or "(none)"
            raise UnknownOperatorError(
                f"unknown query kind: {kind!r}; operators with workload "
                f"factories: {with_factories}"
            )
        return operator.workload_factory(
            node=node, query_id=query_id, hops=hops, ball=ball, rng=rng,
        )


#: Process-wide registry the engine, router and workload generators consult.
default_registry = OperatorRegistry()


# -- module-level conveniences over the default registry ----------------------
def register(operator: QueryOperator, replace: bool = False) -> QueryOperator:
    """Register ``operator`` on the default registry."""
    return default_registry.register(operator, replace=replace)


def unregister(name: str) -> QueryOperator:
    """Remove ``name`` from the default registry."""
    return default_registry.unregister(name)


def registered_names() -> Tuple[str, ...]:
    return default_registry.names()


def routing_keys(query: Query) -> Tuple[int, ...]:
    """Anchor node ids of ``query`` per the default registry."""
    return default_registry.routing_keys(query)


def operator_name(query: Query) -> str:
    """Registered operator name of ``query`` per the default registry."""
    return default_registry.operator_name(query)


def execute_query(processor, query: Query):
    """Registry-dispatched engine entry point (was the isinstance chain)."""
    return default_registry.execute(processor, query)
