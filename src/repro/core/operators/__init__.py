"""The query-operator package: registry + the six built-in operators.

Importing this package registers the built-in operator catalog on the
:data:`~repro.core.operators.registry.default_registry`:

================  ============================  ==========  ================
name              query type                    cost class  routing keys
================  ============================  ==========  ================
``aggregation``   NeighborAggregationQuery      point/trav  ``(node,)``
``walk``          RandomWalkQuery               walk        ``(node,)``
``reachability``  ReachabilityQuery             traversal   ``(node,)``
``ppr``           PersonalizedPageRankQuery     walk        ``(node,)``
``k_reach``       KSourceReachabilityQuery      traversal   all k sources
``sample``        NeighborhoodSampleQuery       traversal   ``(node,)``
================  ============================  ==========  ================

(``aggregation`` derives its class from depth: 0/1-hop probes are
``point``, deeper ones ``traversal``.)

Custom operators register through the same door — see
``examples/custom_operator.py`` for an end-to-end registration that never
touches ``repro/core``.
"""

from ..queries import (
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    RandomWalkQuery,
    ReachabilityQuery,
)
from .gather import gather_nodes
from .registry import (
    OperatorRegistry,
    QueryOperator,
    UnknownOperatorError,
    UnknownQueryTypeError,
    default_registry,
    execute_query,
    operator_name,
    register,
    registered_names,
    routing_keys,
    unregister,
)
from .sampling import execute_neighborhood_sample, make_neighborhood_sample
from .traversals import (
    execute_aggregation,
    execute_k_source_reachability,
    execute_reachability,
    make_aggregation,
    make_k_source_reachability,
    make_reachability,
)
from .walks import execute_ppr, execute_random_walk, make_ppr, make_walk

__all__ = [
    "OperatorRegistry",
    "QueryOperator",
    "UnknownOperatorError",
    "UnknownQueryTypeError",
    "default_registry",
    "execute_aggregation",
    "execute_k_source_reachability",
    "execute_neighborhood_sample",
    "execute_ppr",
    "execute_query",
    "execute_random_walk",
    "execute_reachability",
    "gather_nodes",
    "operator_name",
    "register",
    "registered_names",
    "routing_keys",
    "unregister",
]


def _aggregation_class(query: NeighborAggregationQuery) -> str:
    # 0/1-hop aggregations touch O(degree) records at most; deeper ones
    # expand a frontier (the cache-hungry regime).
    return "point" if query.hops <= 1 else "traversal"


def _register_builtins() -> None:
    register(QueryOperator(
        name="aggregation",
        query_type=NeighborAggregationQuery,
        executor=execute_aggregation,
        cost_class=_aggregation_class,
        workload_factory=make_aggregation,
    ))
    register(QueryOperator(
        name="walk",
        query_type=RandomWalkQuery,
        executor=execute_random_walk,
        cost_class="walk",
        workload_factory=make_walk,
    ))
    register(QueryOperator(
        name="reachability",
        query_type=ReachabilityQuery,
        executor=execute_reachability,
        cost_class="traversal",
        workload_factory=make_reachability,
    ))
    register(QueryOperator(
        name="ppr",
        query_type=PersonalizedPageRankQuery,
        executor=execute_ppr,
        cost_class="walk",
        workload_factory=make_ppr,
    ))
    register(QueryOperator(
        name="k_reach",
        query_type=KSourceReachabilityQuery,
        executor=execute_k_source_reachability,
        cost_class="traversal",
        routing_keys=lambda query: query.all_sources(),
        workload_factory=make_k_source_reachability,
    ))
    register(QueryOperator(
        name="sample",
        query_type=NeighborhoodSampleQuery,
        executor=execute_neighborhood_sample,
        cost_class="traversal",
        workload_factory=make_neighborhood_sample,
    ))


_register_builtins()
