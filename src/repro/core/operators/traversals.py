"""Frontier-expanding traversal operators.

``aggregation`` and ``reachability`` are the paper's h-hop traversal types
(§2.2), moved here verbatim from the old monolithic ``engine.py``.
``k_reach`` is the batched multi-source variant motivated by distributed
reachability work (Fan et al.): one label-propagating BFS answers "which
of these k sources reach the target?" for the whole batch, touching the
union of the k neighborhoods once instead of k times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..metrics import QueryStats
from ..queries import (
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    ReachabilityQuery,
)
from .gather import gather_nodes

if TYPE_CHECKING:  # pragma: no cover
    from ..processor import QueryProcessor


def execute_aggregation(processor: "QueryProcessor",
                        query: NeighborAggregationQuery):
    """h-hop neighbor aggregation: fetch every record within h hops."""
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]

    visited = np.zeros(csr.num_nodes, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    yield from gather_nodes(processor, frontier, stats,
                            count_in_stats=False)

    total = 0
    for _hop in range(query.hops):
        neighbors = csr.gather_neighbors(frontier)
        if neighbors.size == 0:
            break
        fresh = np.unique(neighbors[~visited[neighbors]])
        if fresh.size == 0:
            break
        visited[fresh] = True
        total += int(fresh.size)
        yield from gather_nodes(processor, fresh, stats)
        compute = processor.costs.compute.per_node * fresh.size
        if compute > 0:
            yield env.timeout(compute)
        frontier = fresh

    stats.result = total
    return stats


def execute_reachability(processor: "QueryProcessor",
                         query: ReachabilityQuery):
    """h-hop reachability via bidirectional BFS (forward out / backward in)."""
    env = processor.env
    assets = processor.assets
    stats = QueryStats()
    source = assets.compact[query.node]
    target = assets.compact.get(query.target)
    if target is None:
        stats.result = False
        return stats
    if source == target:
        stats.result = True
        return stats

    csr_out, csr_in = assets.csr_out, assets.csr_in
    n = csr_out.num_nodes
    fwd_visited = np.zeros(n, dtype=bool)
    bwd_visited = np.zeros(n, dtype=bool)
    fwd_visited[source] = True
    bwd_visited[target] = True
    fwd_frontier = np.array([source], dtype=np.int64)
    bwd_frontier = np.array([target], dtype=np.int64)

    forward_budget = (query.hops + 1) // 2
    backward_budget = query.hops // 2
    found = False

    yield from gather_nodes(processor, fwd_frontier, stats,
                            count_in_stats=False)
    yield from gather_nodes(processor, bwd_frontier, stats)

    while (forward_budget or backward_budget) and not found:
        # Expand the cheaper side first (classic bidirectional heuristic).
        expand_forward = forward_budget > 0 and (
            backward_budget == 0 or fwd_frontier.size <= bwd_frontier.size
        )
        if expand_forward:
            csr, frontier, visited, other = (
                csr_out, fwd_frontier, fwd_visited, bwd_visited,
            )
            forward_budget -= 1
        else:
            csr, frontier, visited, other = (
                csr_in, bwd_frontier, bwd_visited, fwd_visited,
            )
            backward_budget -= 1

        neighbors = csr.gather_neighbors(frontier)
        fresh = (
            np.unique(neighbors[~visited[neighbors]])
            if neighbors.size
            else np.empty(0, dtype=np.int64)
        )
        if fresh.size:
            visited[fresh] = True
            if other[fresh].any():
                found = True
            yield from gather_nodes(processor, fresh, stats)
            compute = processor.costs.compute.per_node * fresh.size
            if compute > 0:
                yield env.timeout(compute)
        if expand_forward:
            fwd_frontier = fresh
        else:
            bwd_frontier = fresh
        if fresh.size == 0 and (
            (expand_forward and backward_budget == 0)
            or (not expand_forward and forward_budget == 0)
        ):
            break

    stats.result = found
    return stats


def execute_k_source_reachability(processor: "QueryProcessor",
                                  query: KSourceReachabilityQuery):
    """Batched k-source reachability via uint64 label propagation.

    Every source owns one label bit; a forward BFS over the out-adjacency
    ORs labels along edges for ``hops`` levels. Each node's record is
    fetched once — when the traversal first reaches it — so the batch
    shares the overlapping parts of the k neighborhoods instead of
    re-fetching them per source. The result is how many of the k sources
    reach ``target`` within ``hops`` directed hops.
    """
    env = processor.env
    assets = processor.assets
    stats = QueryStats()
    csr = assets.csr_out
    sources = [
        idx for idx in (
            assets.compact.get(node) for node in query.all_sources()
        ) if idx is not None
    ]
    target = assets.compact.get(query.target)
    if not sources or target is None:
        stats.result = 0
        return stats

    labels = np.zeros(csr.num_nodes, dtype=np.uint64)
    for bit, src in enumerate(sources):
        labels[src] |= np.uint64(1 << bit)
    full = np.uint64((1 << len(sources)) - 1)
    visited = np.zeros(csr.num_nodes, dtype=bool)
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    visited[frontier] = True
    yield from gather_nodes(processor, frontier, stats,
                            count_in_stats=False)

    for _hop in range(query.hops):
        if labels[target] == full:
            break  # every source already reaches the target
        # Propagate from a snapshot of the hop-start labels: updating in
        # place would let a bit travel two edges in one hop (a frontier
        # node enriched earlier in the same sweep re-propagates the new
        # bits), overstating reachability.
        hop_labels = labels[frontier].copy()
        changed = []
        for u, u_labels in zip(frontier, hop_labels, strict=True):
            row = csr.neighbors_of(int(u))
            if row.size == 0:
                continue
            merged = labels[row] | u_labels
            updates = merged != labels[row]
            if updates.any():
                touched = row[updates]
                labels[touched] = merged[updates]
                changed.append(touched)
        if not changed:
            break
        frontier = np.unique(np.concatenate(changed))
        fresh = frontier[~visited[frontier]]
        if fresh.size:
            visited[fresh] = True
            yield from gather_nodes(processor, fresh, stats)
        compute = processor.costs.compute.per_node * frontier.size
        if compute > 0:
            yield env.timeout(compute)

    stats.result = int(bin(int(labels[target])).count("1"))
    return stats


# -- workload factories -------------------------------------------------------
def make_aggregation(node: int, query_id: int, hops: int,
                     ball: np.ndarray, rng: np.random.Generator) -> "NeighborAggregationQuery":
    del ball, rng  # single-anchor, parameter-free beyond depth
    return NeighborAggregationQuery(node=node, query_id=query_id, hops=hops)


def make_reachability(node: int, query_id: int, hops: int,
                      ball: np.ndarray, rng: np.random.Generator) -> "ReachabilityQuery":
    # Target drawn from the same hotspot ball: realistic "is my nearby
    # contact reachable" probes that keep the traversal local.
    target = int(ball[rng.integers(0, len(ball))])
    return ReachabilityQuery(node=node, query_id=query_id,
                             target=target, hops=hops)


#: Additional sources batched with ``node`` by the k_reach factory.
K_REACH_EXTRA_SOURCES = 3


def make_k_source_reachability(node: int, query_id: int, hops: int,
                               ball: np.ndarray, rng: np.random.Generator) -> "KSourceReachabilityQuery":
    # Batch nearby anchors (same ball) so the k traversals overlap — the
    # regime where batching beats k independent probes.
    extras = tuple(
        int(ball[rng.integers(0, len(ball))])
        for _ in range(K_REACH_EXTRA_SOURCES)
    )
    target = int(ball[rng.integers(0, len(ball))])
    return KSourceReachabilityQuery(node=node, query_id=query_id,
                                    sources=extras, target=target, hops=hops)
