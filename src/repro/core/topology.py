"""Elastic cluster topology: membership epochs, failover and repair.

The paper's experiments fix the deployment before any query runs (§4.1:
7 query processors, 4 storage servers) and every earlier layer of this
reproduction inherited that static-membership assumption. Real decoupled
deployments are elastic — the *point* of separating compute from storage
(§2.3) is that either tier can grow, shrink or fail independently of the
other. This module is the one place that knows how to change membership
on a **live** service, and what every other layer must do when it does:

* **processing tier** — :meth:`ClusterTopology.add_processor` builds a
  cold-cache worker (optionally on heterogeneous hardware via
  :class:`~repro.costs.SpeedProfiles`), registers it with the router
  (:meth:`~repro.core.router.Router.add_processor`) and drives the
  routing strategy's :meth:`~repro.core.routing.base.RoutingStrategy.on_membership_change`
  hook, which rebalances ownership tables with *bounded key movement* —
  only entries whose owner actually changed move (hash slots shed to the
  joiner, landmark groups re-pooled, embed means grown).
  :meth:`remove_processor` is the mirror: the router re-queues the
  departed worker's backlog and the strategy stops routing to it.

* **storage tier** — :meth:`fail_server` / :meth:`recover_server` flip a
  server's liveness (recorded as downtime windows for the reports) and,
  when ``failover`` is on, run a **repair loop** in simulated time:
  records whose every copy is on dead servers are re-written from the
  authoritative graph onto live servers through the same write pipelines
  queries fetch from, with directory entries flipping at the landing
  instant exactly like dynamic placement's migrations. Reads meanwhile
  serve from any live replica (:func:`~repro.storage.placement.pick_read_replica`)
  and in-flight queries that hit a dead server back off and retry
  (:class:`~repro.core.processor.QueryProcessor` retry knobs, armed by
  this layer). When the failed server returns, repair **fails back**:
  fresh bytes are written home and the directory exceptions drop, so a
  healed cluster converges to plain hash placement.

Every membership operation bumps :attr:`ClusterTopology.epoch` and logs
an event — the chaos benchmark's provenance trail. A topology that never
changes is inert by construction: the directory it attaches is empty
(every tier lookup guards on emptiness), the repair loop is never
spawned, and an empty :meth:`schedule` starts no process, so a service
with an idle topology replays **bit-identically** to one without.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.placement import PlacementDirectory
from ..storage.records import record_for_node
from ..storage.server import StorageServerDown
from .processor import QueryProcessor

if TYPE_CHECKING:  # pragma: no cover
    from .service import GraphService

#: Chaos-schedule actions understood by :meth:`ClusterTopology.schedule`.
CHAOS_ACTIONS = (
    "add_processor", "remove_processor", "fail_server", "recover_server",
)


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs of the elastic-topology layer.

    Attaching a ``TopologyConfig`` to a :class:`ClusterConfig` builds the
    topology manager but changes nothing until a membership operation
    runs — the defaults are calibrated to the storage service times (µs
    scale), like every other simulated cost in the repo.
    """

    #: Re-replicate lost records and fail back after recovery. Off = the
    #: ablation: failures surface as errors and nothing heals.
    failover: bool = True
    #: Live copies the repair loop restores per lost record.
    replication: int = 1
    #: Simulated seconds between repair rounds.
    repair_interval_s: float = 0.002
    #: Copied bytes allowed per repair round (bounded, like placement's
    #: round budget — repair traffic queues behind live queries).
    repair_byte_budget: int = 256 << 10
    #: Storage retries per query before StorageServerDown surfaces
    #: (armed on every processor when ``failover`` is on; 0 = fail fast).
    retry_limit: int = 8
    #: Initial retry backoff (doubles per attempt, simulated seconds).
    retry_backoff_s: float = 20.0e-6
    #: Backoff ceiling.
    retry_backoff_cap_s: float = 500.0e-6


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled membership change at an absolute simulated instant.

    ``target`` is a server id for ``fail_server`` / ``recover_server``, a
    processor id for ``remove_processor``, and ignored for
    ``add_processor`` (ids are dense — the joiner takes the next one).
    """

    at: float
    action: str
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"choose from {CHAOS_ACTIONS}"
            )
        if self.at < 0:
            raise ValueError("chaos events need a non-negative time")
        if self.action != "add_processor" and self.target is None:
            raise ValueError(f"{self.action} needs a target id")


class ClusterTopology:
    """Membership-epoch manager for one live :class:`GraphService`."""

    def __init__(
        self, service: "GraphService", config: Optional[TopologyConfig] = None
    ) -> None:
        self.service = service
        self.config = config or TopologyConfig()
        self.env = service.env
        self.tier = service.tier
        #: Monotonic membership epoch; bumped by every join/leave/fail/
        #: recover. Strategies rebalance against the epoch's alive set.
        self.epoch = 0
        #: Event log: one dict per membership change (provenance for the
        #: chaos benchmark's artifacts).
        self.events: List[Dict[str, object]] = []
        # Cumulative counters.
        self.moved_entries = 0
        self.write_failures = 0
        self.repair_rounds = 0
        self.repair_records = 0
        self.repair_bytes = 0
        self.failbacks = 0
        #: Keys the repair loop placed onto substitutes because their hash
        #: home died: ``key -> home``. Failed back (and removed) once the
        #: home recovers. Placement-directory entries that predate the
        #: failure stay owned by the placement loop.
        self._failover_keys: Dict[int, int] = {}
        #: Join-time baselines for cold-cache warmup accounting.
        self._joined: Dict[int, float] = {}
        #: Keys whose update write may have lost every copy to a dead
        #: server (``key -> cache_key``): re-written from the
        #: authoritative graph by the next repair rounds.
        self._suspect_writes: Dict[int, int] = {}
        #: Demand-repair queue (cache keys, insertion-ordered): what live
        #: reads are blocked on *right now*, fed by the gather path via
        #: :attr:`StorageTier.on_read_failure`. Serviced ahead of the
        #: linear lost-key scan — at full scale a dead server holds far
        #: more records than one outage's repair bandwidth, and repairing
        #: them in index order would leave hot keys stalled for the whole
        #: outage.
        self._demand: Dict[int, bool] = {}
        self.demand_repairs = 0
        self._repair_process = None
        # The directory is the shared source of truth for "where does a
        # key live right now"; reuse dynamic placement's when it exists so
        # repair and placement never disagree, else attach a fresh (empty
        # ⇒ zero-cost) one. The heat hook is left as-is: repair does not
        # need it, placement owns it.
        if service.placement is not None:
            self.directory = service.placement.directory
        else:
            self.directory = PlacementDirectory()
            self.tier.directory = self.directory
        for processor in service.processors:
            self._arm_retries(processor)
        if self.config.failover:
            self.tier.on_read_failure = self._note_read_failure

    def _note_read_failure(self, cache_keys: List[int]) -> None:
        """A read wave is about to hit a dead server: queue its keys for
        priority repair (the reader meanwhile backs off and retries)."""
        demand = self._demand
        before = len(demand)
        for idx in cache_keys:
            demand[int(idx)] = True
        if len(demand) != before:
            self._ensure_repair()

    # -- retry arming ---------------------------------------------------------
    def _arm_retries(self, processor: QueryProcessor) -> None:
        """Apply the config's retry knobs (topology present = armed).

        Retries are orthogonal to ``failover``: the no-failover ablation
        still backs off and re-attempts — it just never gets a repaired
        replica to land on, so it stalls until the server itself returns
        (or exhausts ``retry_limit`` and surfaces the error).
        """
        cfg = self.config
        processor.storage_retry_limit = cfg.retry_limit
        processor.storage_retry_backoff_s = cfg.retry_backoff_s
        processor.storage_retry_backoff_cap_s = cfg.retry_backoff_cap_s

    # -- processing-tier membership ------------------------------------------
    def add_processor(self, speed: Optional[float] = None) -> int:
        """Join a cold-cache processor at the next dense id; returns the id.

        ``speed`` overrides the config's
        :class:`~repro.costs.SpeedProfiles` entry for the new id (1.0 =
        baseline hardware). The routing strategy rebalances immediately —
        bounded movement, so only the joiner's share of keys moves — but
        the joiner earns traffic with an empty cache: the warmup cost is
        visible in :meth:`warmup_stats` and in the chaos benchmark's
        post-join window.
        """
        service = self.service
        cfg = service.config
        router = service.router
        pid = router.num_processors
        if speed is None:
            profiles = cfg.speed_profiles
            speed = (
                profiles.processor_speed(pid) if profiles is not None else 1.0
            )
        costs = cfg.costs
        if speed != 1.0:
            costs = replace(costs, compute=costs.compute.scaled(speed))
        processor = QueryProcessor(
            self.env,
            processor_id=pid,
            tier=self.tier,
            assets=service.assets,
            costs=costs,
            cache_capacity_bytes=cfg.cache_capacity_bytes,
            cache_policy=cfg.cache_policy,
            use_cache=cfg.routing != "no_cache",
        )
        # Live updates re-point this array on every applied batch; a
        # processor built later must start from the current one.
        processor.owner_of = service.assets.owner_array(self.tier.num_servers)
        self._arm_retries(processor)
        service.processors.append(processor)
        router.add_processor(processor)
        moved = service.strategy.on_membership_change(
            router.num_processors, router.alive_mask()
        )
        self._joined[pid] = self.env.now
        self._record("add_processor", pid, moved)
        return pid

    def remove_processor(self, processor_id: int) -> int:
        """Leave/kill a processor; its backlog re-queues to the survivors.

        Returns how many queued queries moved to the shared pool (the
        router's count). Refuses to strand work: removing the last alive
        processor with a backlog raises (see
        :meth:`~repro.core.router.Router.remove_processor`).
        """
        service = self.service
        router = service.router
        requeued = router.remove_processor(processor_id)
        moved = service.strategy.on_membership_change(
            router.num_processors, router.alive_mask()
        )
        self._record("remove_processor", processor_id, moved, requeued=requeued)
        return requeued

    # -- storage-tier membership ----------------------------------------------
    def fail_server(self, server_id: int) -> None:
        """Kill a storage server; with failover on, start repairing."""
        server = self.tier.servers[server_id]
        if not server.alive:
            return
        server.fail()
        self._record("fail_server", server_id, 0)
        if self.config.failover:
            self._ensure_repair()

    def recover_server(self, server_id: int) -> None:
        """Revive a storage server; with failover on, fail back to it."""
        server = self.tier.servers[server_id]
        if server.alive:
            return
        server.recover()
        self._record("recover_server", server_id, 0)
        if self.config.failover:
            self._ensure_repair()

    # -- chaos schedules -------------------------------------------------------
    def schedule(self, events: Sequence[ChaosEvent]) -> None:
        """Run a deterministic fault/join schedule at absolute sim times.

        An **empty** schedule starts no process and leaves the simulation
        event stream untouched — the bit-identical baseline the parity
        tests pin. Events at equal instants apply in the given order.
        """
        pending = sorted(events, key=lambda event: event.at)
        if not pending:
            return
        self.env.process(self._run_schedule(pending))

    def _run_schedule(self, events: List[ChaosEvent]):
        for event in events:
            delay = event.at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.apply_event(event)

    def apply_event(self, event: ChaosEvent) -> None:
        """Apply one chaos event now (the schedule runner's dispatcher)."""
        if event.action == "add_processor":
            self.add_processor()
        elif event.action == "remove_processor":
            self.remove_processor(int(event.target))  # type: ignore[arg-type]
        elif event.action == "fail_server":
            self.fail_server(int(event.target))  # type: ignore[arg-type]
        else:  # recover_server (validated in ChaosEvent)
            self.recover_server(int(event.target))  # type: ignore[arg-type]

    # -- repair / re-replication ----------------------------------------------
    def _ensure_repair(self) -> None:
        if self._repair_process is None:
            self._repair_process = self.env.process(self._repair_loop())

    def _repair_loop(self):
        """Periodic repair rounds until a round finds nothing to do.

        New work only arises from fail/recover events, and those re-spawn
        the loop — so exiting on an idle round never strands work.
        """
        while True:
            yield self.env.timeout(self.config.repair_interval_s)
            self.repair_rounds += 1
            worked = yield from self._repair_round()
            if not worked:
                break
        self._repair_process = None

    def _repair_round(self):
        """One bounded round: prune dead replicas, re-replicate lost
        records, fail back recovered homes. Returns whether any work was
        done or remains (budget exhaustion keeps the loop alive)."""
        service = self.service
        tier = self.tier
        cfg = self.config
        alive = [server.alive for server in tier.servers]
        live_sids = [sid for sid, up in enumerate(alive) if up]
        if not live_sids:
            return True  # nowhere to write yet; keep waiting for a recover
        assets = service.assets
        sizes = assets.record_sizes
        node_ids = assets.node_ids
        owner_of = assets.owner_array(tier.num_servers)
        copies = max(1, min(cfg.replication, len(live_sids)))
        budget = cfg.repair_byte_budget
        exhausted = False

        # (key, cache_key, home, targets) records to (re-)write.
        plan: List[Tuple[int, int, int, Tuple[int, ...]]] = []
        failbacks: List[Tuple[int, int, int]] = []
        # (key, cache_key, live holders) suspect-update re-writes.
        rewrites: List[Tuple[int, int, Tuple[int, ...]]] = []

        # 0. Re-write suspect update casualties wherever they live now:
        # a tolerated write failure may have left a (now-recovered)
        # holder with pre-update bytes; the graph is authoritative.
        for key in sorted(self._suspect_writes):
            idx = self._suspect_writes[key]
            holders = tuple(
                sid for sid in tier.replica_sids(key) if alive[sid]
            )
            if not holders:
                continue  # still homeless; the lost-key pass covers it
            size = int(sizes[idx])
            # The first item of a round is always admitted (even over
            # budget) so a budget below one record still makes progress.
            if budget < size * len(holders) and rewrites:
                exhausted = True
                break
            budget -= size * len(holders)
            rewrites.append((key, idx, holders))

        # 1. Fail back repair-placed keys whose hash home returned.
        for key in sorted(self._failover_keys):
            entry = self.directory.by_key.get(key)
            if entry is None:
                del self._failover_keys[key]  # released elsewhere meanwhile
                continue
            if not alive[entry.home]:
                continue
            size = int(sizes[entry.cache_key])
            if budget < size and (rewrites or failbacks):
                exhausted = True
                break
            budget -= size
            failbacks.append((key, entry.cache_key, entry.home))

        # 2. Demand repairs: the cache keys live reads are blocked on
        # *right now* (fed by the gather path). Serviced before the
        # directory sweep and the linear scan — a dead server can hold
        # far more records than one outage's repair bandwidth, and
        # index-order repair would leave exactly the hot ones stalled.
        planned_keys = {key for key, _c, _h in failbacks}
        demand_planned: set = set()
        for idx in list(self._demand):
            if idx >= len(node_ids):
                del self._demand[idx]  # node vanished from the asset map
                continue
            key = int(node_ids[idx])
            entry = self.directory.by_key.get(key)
            if entry is not None:
                if any(alive[sid] for sid in entry.replicas):
                    del self._demand[idx]  # a live replica surfaced
                    continue
                home = entry.home
            else:
                home = int(owner_of[idx])
                if alive[home]:
                    del self._demand[idx]  # its server recovered
                    continue
            if key in planned_keys:
                del self._demand[idx]
                continue
            size = int(sizes[idx])
            if budget < size * copies and (rewrites or failbacks or plan):
                exhausted = True  # key stays queued for the next round
                break
            budget -= size * copies
            del self._demand[idx]
            targets = self._pick_targets(live_sids, copies, len(plan))
            plan.append((key, idx, home, targets))
            planned_keys.add(key)
            demand_planned.add(key)
            self.demand_repairs += 1

        # 3. Directory entries: prune dead replicas; fully-lost entries
        # get fresh copies (placement-made entries stay placement-owned
        # afterwards — only their liveness is restored here).
        for entry in self.directory.entries():
            live = tuple(sid for sid in entry.replicas if alive[sid])
            if live:
                for sid in entry.replicas:
                    if not alive[sid]:
                        self.directory.drop_replica(entry.key, sid)
                continue
            if entry.key in planned_keys:
                continue
            size = int(sizes[entry.cache_key])
            want = max(0, copies)
            if budget < size * want and (rewrites or failbacks or plan):
                exhausted = True
                continue
            budget -= size * want
            targets = self._pick_targets(live_sids, want, len(plan))
            plan.append((entry.key, entry.cache_key, entry.home, targets))
            planned_keys.add(entry.key)

        # 4. Hash-homed records on dead servers with no directory entry:
        # every copy is lost; re-write onto substitutes. Ascending compact
        # index — deterministic, and the budget bounds each round.
        alive_arr = np.asarray(alive, dtype=bool)
        if not alive_arr.all():
            homeless = np.flatnonzero(~alive_arr[owner_of])
            covered = self.directory.by_key
            for idx in homeless.tolist():
                key = int(node_ids[idx])
                if key in covered or key in planned_keys:
                    continue
                size = int(sizes[idx])
                if budget < size * copies and (rewrites or failbacks or plan):
                    exhausted = True
                    break
                budget -= size * copies
                targets = self._pick_targets(live_sids, copies, len(plan))
                plan.append((key, idx, int(owner_of[idx]), targets))

        if not plan and not failbacks and not rewrites:
            return exhausted or bool(self._suspect_writes)

        # Execute: batched per-server legs through the shared write
        # pipelines (repair traffic contends with queries), directory
        # flips at the landing instant. Two waves: demand-planned keys
        # first in their own (small) legs — readers are actively blocked
        # on them, and batching them into the round's bulk legs would
        # delay their flip by the whole leg's service time.
        materialize = service.config.materialize_storage
        network = service.config.costs.network
        graph = assets.graph
        plan_priority = [p for p in plan if p[0] in demand_planned]
        plan_bulk = [p for p in plan if p[0] not in demand_planned]

        def build_legs(targeted):
            legs: Dict[int, List[Tuple[int, Optional[bytes]]]] = {}
            leg_bytes: Dict[int, int] = {}
            for sid, key, idx in targeted:
                payload = (
                    record_for_node(graph, key).encode()
                    if materialize else None
                )
                legs.setdefault(sid, []).append((key, payload))
                leg_bytes[sid] = leg_bytes.get(sid, 0) + int(sizes[idx])
            return legs, leg_bytes

        def plan_targets(entries):
            for key, idx, _home, targets in entries:
                for sid in targets:
                    yield sid, key, idx

        def flip_plan(entries, failed):
            for key, idx, home, targets in entries:
                if any(sid in failed for sid in targets):
                    continue
                had_entry = key in self.directory.by_key
                self.directory.place(key, idx, home, targets)
                self._suspect_writes.pop(key, None)  # fresh bytes landed
                self.repair_records += len(targets)
                self.repair_bytes += int(sizes[idx]) * len(targets)
                if not had_entry:
                    self._failover_keys[key] = home

        failed: List[int] = []
        bulk_targeted = list(plan_targets(plan_bulk))
        bulk_targeted.extend(
            (home, key, idx) for key, idx, home in failbacks
        )
        bulk_targeted.extend(
            (sid, key, idx)
            for key, idx, holders in rewrites
            for sid in holders
        )
        for wave_targeted, wave_plan in (
            (list(plan_targets(plan_priority)), plan_priority),
            (bulk_targeted, plan_bulk),
        ):
            if not wave_targeted:
                continue
            legs, leg_bytes = build_legs(wave_targeted)
            pending = [
                (sid, self.env.process(tier._server_write_process(
                    tier.servers[sid], entries, leg_bytes[sid], network,
                )))
                for sid, entries in legs.items()
            ]
            for sid, process in pending:
                try:
                    yield process
                except StorageServerDown:
                    failed.append(sid)  # died mid-round; next round retries
            flip_plan(wave_plan, failed)

        for key, idx, holders in rewrites:
            if any(sid in failed for sid in holders):
                continue
            del self._suspect_writes[key]
            self.repair_records += len(holders)
            self.repair_bytes += int(sizes[idx]) * len(holders)
        for key, idx, home in failbacks:
            if home in failed:
                continue
            previous = tier.replica_sids(key)
            self.directory.drop(key)
            self._failover_keys.pop(key, None)
            self._suspect_writes.pop(key, None)  # fresh bytes went home
            self.failbacks += 1
            self.repair_records += 1
            self.repair_bytes += int(sizes[idx])
            if materialize:
                for sid in sorted(set(previous) - {home}):
                    store = tier.servers[sid].store
                    if key in store:
                        store.delete(key)
        return True

    def _pick_targets(
        self, live_sids: List[int], copies: int, offset: int
    ) -> Tuple[int, ...]:
        """``copies`` live servers, rotated by plan position — spreads one
        round's repair writes across the survivors deterministically."""
        start = offset % len(live_sids)
        rotated = live_sids[start:] + live_sids[:start]
        return tuple(rotated[:copies])

    # -- write-failure accounting ----------------------------------------------
    @property
    def tolerates_write_failures(self) -> bool:
        """Update batches may lose copies to a dead server without raising.

        Any topology-managed cluster absorbs the loss (a static cluster
        — ``topology=None`` — still raises); only ``failover`` *heals*
        it: the lost copies become suspects the repair loop re-writes
        from the authoritative graph. Without failover the write is
        simply gone — the recovered server serves stale bytes, counted
        in ``write_failures``."""
        return True

    def note_write_failure(
        self, dirty: Optional[Dict[int, int]] = None
    ) -> None:
        """Record a tolerated update-write failure. ``dirty`` maps the
        batch's storage keys to cache keys; all of them become *suspects*
        (some lost every copy — the error does not say which), re-written
        from the authoritative graph by the repair loop when ``failover``
        is on."""
        self.write_failures += 1
        if self.config.failover:
            if dirty:
                self._suspect_writes.update(dirty)
            self._ensure_repair()

    # -- observability ----------------------------------------------------------
    def _record(
        self, action: str, target: int, moved: int, **extra: object
    ) -> None:
        self.epoch += 1
        self.moved_entries += moved
        event: Dict[str, object] = {
            "at": self.env.now,
            "epoch": self.epoch,
            "action": action,
            "target": target,
            "moved_entries": moved,
        }
        event.update(extra)
        self.events.append(event)

    def warmup_stats(self) -> List[Dict[str, object]]:
        """Cold-cache warmup accounting per joined processor: how much
        traffic the joiner absorbed and how warm it got since joining."""
        processors = self.service.processors
        return [
            {
                "processor": pid,
                "joined_at": joined_at,
                "queries_executed": processors[pid].queries_executed,
                "cache_hit_rate": processors[pid].cache_hit_rate(),
                "busy_time": processors[pid].busy_time,
            }
            for pid, joined_at in sorted(self._joined.items())
        ]

    def snapshot(self) -> Dict[str, object]:
        """Topology state + counters for reports/artifacts."""
        router = self.service.router
        return {
            "epoch": self.epoch,
            "num_processors": router.num_processors,
            "alive_processors": sum(router.alive_mask()),
            "num_storage_servers": self.tier.num_servers,
            "alive_servers": sum(
                1 for server in self.tier.servers if server.alive
            ),
            "moved_entries": self.moved_entries,
            "repair_rounds": self.repair_rounds,
            "repair_records": self.repair_records,
            "repair_bytes": self.repair_bytes,
            "failbacks": self.failbacks,
            "demand_repairs": self.demand_repairs,
            "demand_pending": len(self._demand),
            "failover_keys": len(self._failover_keys),
            "suspect_writes": len(self._suspect_writes),
            "write_failures": self.write_failures,
            "storage_retries": sum(
                processor.storage_retries
                for processor in self.service.processors
            ),
            "events": list(self.events),
            "warmup": self.warmup_stats(),
        }
