"""Compatibility shim over the :mod:`repro.core.operators` package.

The query engine used to live here as one module with an ``isinstance``
dispatch chain; it is now split into the operator package, where every
query type registers its executor, cost class, routing-key extractor and
workload factory (see :mod:`repro.core.operators.registry`). This module
keeps the historical import surface working:

* :func:`execute_query` — now registry dispatch; unknown query types
  raise :class:`~repro.core.operators.registry.UnknownQueryTypeError`
  (a ``TypeError``) naming every registered operator;
* :func:`gather_nodes` — the shared record-gathering primitive
  (``operators/gather.py``);
* the per-type executors — ``operators/traversals.py``,
  ``operators/walks.py`` and ``operators/sampling.py``.

New code should import from :mod:`repro.core.operators` directly.
"""

from __future__ import annotations

from .operators import (
    execute_aggregation,
    execute_k_source_reachability,
    execute_neighborhood_sample,
    execute_ppr,
    execute_query,
    execute_random_walk,
    execute_reachability,
    gather_nodes,
)

__all__ = [
    "execute_aggregation",
    "execute_k_source_reachability",
    "execute_neighborhood_sample",
    "execute_ppr",
    "execute_query",
    "execute_random_walk",
    "execute_reachability",
    "gather_nodes",
]
