"""Query execution engine: the work a query processor does per query.

Each executor is a simulation process combining:

1. **cache probes** over the nodes the traversal touches (lookup cost),
2. **storage fetches** for misses — one multiget per owning storage server,
   issued in parallel, each paying network round-trip + server queueing,
3. **cache admission** of fetched records (insert cost),
4. **compute** proportional to the records scanned.

Topology comes from the shared read-only CSR views in
:class:`~repro.core.assets.GraphAssets`; which records are cached, and all
timing, is per-processor simulated state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .metrics import QueryStats
from .queries import (
    NeighborAggregationQuery,
    Query,
    RandomWalkQuery,
    ReachabilityQuery,
)

if TYPE_CHECKING:  # pragma: no cover
    from .processor import QueryProcessor

_REQUEST_HEADER_BYTES = 24
_PER_KEY_REQUEST_BYTES = 8
_RESPONSE_HEADER_BYTES = 16


def _server_fetch(processor: "QueryProcessor", server_id: int, num_keys: int,
                  nbytes: int):
    """Round trip to one storage server: request out, service, payload back."""
    env = processor.env
    network = processor.costs.network
    request_bytes = _REQUEST_HEADER_BYTES + _PER_KEY_REQUEST_BYTES * num_keys
    yield env.timeout(network.transfer_time(request_bytes))
    server = processor.tier.servers[server_id]
    yield env.process(server.serve_process(num_keys, nbytes))
    yield env.timeout(network.transfer_time(_RESPONSE_HEADER_BYTES + nbytes))


def gather_nodes(processor: "QueryProcessor", nodes: np.ndarray,
                 stats: QueryStats, count_in_stats: bool = True):
    """Make the records of ``nodes`` (compact indices) locally available.

    Probes the processor cache, fetches misses from the storage tier
    (grouped per owning server, in parallel) and admits them. Updates
    ``stats`` unless ``count_in_stats`` is False (used for the query node
    itself, which Eq. 8 excludes from hit/miss accounting).
    """
    env = processor.env
    costs = processor.costs
    cache = processor.cache
    sizes = processor.assets.record_sizes

    if processor.use_cache:
        missed = cache.get_many(nodes.tolist())
        lookup_time = costs.cache.lookup * len(nodes)
        if lookup_time > 0:
            yield env.timeout(lookup_time)
    else:
        missed = nodes.tolist()

    num_hits = len(nodes) - len(missed)
    if count_in_stats:
        stats.cache_hits += num_hits
        stats.cache_misses += len(missed)
        stats.nodes_touched += len(nodes)

    if missed:
        missed_arr = np.asarray(missed, dtype=np.int64)
        owners = processor.owner_of[missed_arr]
        miss_sizes = sizes[missed_arr]
        num_servers = processor.tier.num_servers
        counts = np.bincount(owners, minlength=num_servers)
        byte_sums = np.bincount(owners, weights=miss_sizes, minlength=num_servers)
        fetches = [
            env.process(
                _server_fetch(processor, int(sid), int(counts[sid]),
                              int(byte_sums[sid]))
            )
            for sid in np.nonzero(counts)[0]
        ]
        total_bytes = int(byte_sums.sum())
        if count_in_stats:
            stats.bytes_fetched += total_bytes
            stats.storage_requests += len(fetches)
        yield env.all_of(fetches)

        if processor.use_cache:
            cache.put_many(zip(missed, miss_sizes.tolist()))
            insert_time = costs.cache.insert * len(missed)
            if insert_time > 0:
                yield env.timeout(insert_time)


def execute_aggregation(processor: "QueryProcessor",
                        query: NeighborAggregationQuery):
    """h-hop neighbor aggregation: fetch every record within h hops."""
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]

    visited = np.zeros(csr.num_nodes, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    yield env.process(gather_nodes(processor, frontier, stats,
                                   count_in_stats=False))

    total = 0
    for _hop in range(query.hops):
        neighbors = csr.gather_neighbors(frontier)
        if neighbors.size == 0:
            break
        fresh = np.unique(neighbors[~visited[neighbors]])
        if fresh.size == 0:
            break
        visited[fresh] = True
        total += int(fresh.size)
        yield env.process(gather_nodes(processor, fresh, stats))
        compute = processor.costs.compute.per_node * fresh.size
        if compute > 0:
            yield env.timeout(compute)
        frontier = fresh

    stats.result = total
    return stats


def execute_random_walk(processor: "QueryProcessor", query: RandomWalkQuery):
    """h-step random walk with restart; touches one record per step."""
    env = processor.env
    csr = processor.assets.csr_both
    stats = QueryStats()
    source = processor.assets.compact[query.node]
    rng = np.random.default_rng((query.seed, query.node))

    current = source
    path_length = 0
    yield env.process(gather_nodes(
        processor, np.array([source], dtype=np.int64), stats,
        count_in_stats=False,
    ))
    for _step in range(query.steps):
        row = csr.neighbors_of(current)
        if row.size == 0 or rng.random() < query.restart_prob:
            current = source
        else:
            current = int(row[rng.integers(0, row.size)])
            yield env.process(gather_nodes(
                processor, np.array([current], dtype=np.int64), stats,
            ))
        path_length += 1
        walk_cost = processor.costs.compute.per_walk_step
        if walk_cost > 0:
            yield env.timeout(walk_cost)

    stats.result = path_length
    return stats


def execute_reachability(processor: "QueryProcessor",
                         query: ReachabilityQuery):
    """h-hop reachability via bidirectional BFS (forward out / backward in)."""
    env = processor.env
    assets = processor.assets
    stats = QueryStats()
    source = assets.compact[query.node]
    target = assets.compact.get(query.target)
    if target is None:
        stats.result = False
        return stats
    if source == target:
        stats.result = True
        return stats

    csr_out, csr_in = assets.csr_out, assets.csr_in
    n = csr_out.num_nodes
    fwd_visited = np.zeros(n, dtype=bool)
    bwd_visited = np.zeros(n, dtype=bool)
    fwd_visited[source] = True
    bwd_visited[target] = True
    fwd_frontier = np.array([source], dtype=np.int64)
    bwd_frontier = np.array([target], dtype=np.int64)

    forward_budget = (query.hops + 1) // 2
    backward_budget = query.hops // 2
    found = False

    yield env.process(gather_nodes(processor, fwd_frontier, stats,
                                   count_in_stats=False))
    yield env.process(gather_nodes(processor, bwd_frontier, stats))

    while (forward_budget or backward_budget) and not found:
        # Expand the cheaper side first (classic bidirectional heuristic).
        expand_forward = forward_budget > 0 and (
            backward_budget == 0 or fwd_frontier.size <= bwd_frontier.size
        )
        if expand_forward:
            csr, frontier, visited, other = (
                csr_out, fwd_frontier, fwd_visited, bwd_visited,
            )
            forward_budget -= 1
        else:
            csr, frontier, visited, other = (
                csr_in, bwd_frontier, bwd_visited, fwd_visited,
            )
            backward_budget -= 1

        neighbors = csr.gather_neighbors(frontier)
        fresh = (
            np.unique(neighbors[~visited[neighbors]])
            if neighbors.size
            else np.empty(0, dtype=np.int64)
        )
        if fresh.size:
            visited[fresh] = True
            if other[fresh].any():
                found = True
            yield env.process(gather_nodes(processor, fresh, stats))
            compute = processor.costs.compute.per_node * fresh.size
            if compute > 0:
                yield env.timeout(compute)
        if expand_forward:
            fwd_frontier = fresh
        else:
            bwd_frontier = fresh
        if fresh.size == 0 and (
            (expand_forward and backward_budget == 0)
            or (not expand_forward and forward_budget == 0)
        ):
            break

    stats.result = found
    return stats


def execute_query(processor: "QueryProcessor", query: Query):
    """Dispatch on query type; returns the engine process' stats."""
    if isinstance(query, NeighborAggregationQuery):
        return execute_aggregation(processor, query)
    if isinstance(query, RandomWalkQuery):
        return execute_random_walk(processor, query)
    if isinstance(query, ReachabilityQuery):
        return execute_reachability(processor, query)
    raise TypeError(f"unsupported query type: {type(query).__name__}")
