"""Per-query records and workload-level reports.

Metric definitions follow §4.1 of the paper:

* **response time** — time to answer one query (processing + routing
  decision; queueing delay is reported separately as ``sojourn``);
* **throughput** — completed queries per unit of simulated time;
* **cache hits / misses** — Eq. 8/9: per query, the number of result-set
  nodes found in (resp. fetched into) the processor's cache, summed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import for annotations only: admission is a consumer
    from .admission import AdmissionStats


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = int(round(q / 100 * (len(sorted_values) - 1)))
    return sorted_values[min(len(sorted_values) - 1, max(0, rank))]


@dataclass
class QueryStats:
    """Execution-side counters for one query (filled by the engine)."""

    nodes_touched: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_fetched: int = 0
    storage_requests: int = 0
    result: object = None


@dataclass
class QueryRecord:
    """One routed, executed query."""

    query_id: int
    kind: str
    node: int
    intended_processor: Optional[int]
    processor: int
    stolen: bool
    decision_time: float
    enqueued_at: float
    started_at: float
    finished_at: float
    stats: QueryStats
    #: Which concrete scheme decided this query — the strategy name, or
    #: ``"adaptive:<arm>"`` when the adaptive meta-strategy delegated.
    routed_via: str = ""
    #: Cost class of the query (see :func:`repro.core.queries.query_class`).
    query_class: str = ""
    #: Registered operator name (``kind`` keeps the raw query type name).
    operator: str = ""
    #: Tenant whose stream submitted this query ("" = untenanted,
    #: single-stream submission — every pre-multi-tenant record).
    tenant: str = ""

    @property
    def response_time(self) -> float:
        """Processing time plus the router's decision time."""
        return (self.finished_at - self.started_at) + self.decision_time

    @property
    def sojourn_time(self) -> float:
        """Time from arrival at the router to completion (includes queueing)."""
        return self.finished_at - self.enqueued_at


@dataclass
class WorkloadReport:
    """Aggregated outcome of one workload run on one cluster."""

    records: List[QueryRecord] = field(default_factory=list)
    makespan: float = 0.0
    num_processors: int = 0
    num_storage_servers: int = 0
    routing: str = ""
    #: Admission-layer outcome of an open-loop serve (None for closed-loop
    #: runs). Run-level, deliberately not clipped by :meth:`window`: shed
    #: and rejected queries never produce records to clip by.
    admission: Optional["AdmissionStats"] = None
    #: Per-storage-server counter snapshot (requests/bytes/writes,
    #: utilization, top-k record heat), taken at report time — see
    #: :meth:`repro.core.service.GraphService.server_stats`. Run-level
    #: (cumulative), so :meth:`window` carries it unclipped, like
    #: ``admission``. None for reports built before the snapshot existed.
    per_server: Optional[List[Dict[str, object]]] = None
    #: Dynamic-placement subsystem snapshot (migrations, replications,
    #: ``migration_bytes``, active directory size) — None when the
    #: subsystem is disabled. See
    #: :meth:`repro.core.placement.PlacementManager.stats`.
    placement: Optional[Dict[str, object]] = None

    # -- headline metrics ---------------------------------------------------
    def throughput(self) -> float:
        """Queries per second of simulated time."""
        if self.makespan <= 0:
            return 0.0
        return len(self.records) / self.makespan

    def mean_response_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.response_time for r in self.records) / len(self.records)

    def mean_sojourn_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.sojourn_time for r in self.records) / len(self.records)

    def percentile_response_time(self, q: float) -> float:
        """q-th percentile response time, q in [0, 100]."""
        if not self.records:
            return 0.0
        times = sorted(r.response_time for r in self.records)
        return _percentile(times, q)

    def percentile_sojourn_time(self, q: float) -> float:
        """q-th percentile sojourn (arrival-to-completion) time.

        The SLO metric: under open-loop overload the collapse shows up in
        queueing delay, which response time deliberately excludes.
        """
        if not self.records:
            return 0.0
        times = sorted(r.sojourn_time for r in self.records)
        return _percentile(times, q)

    # -- SLO metrics (open-loop serving) --------------------------------------
    def offered(self) -> int:
        """Queries offered to the admission layer (completed count when
        the run was closed-loop — nothing was ever dropped)."""
        if self.admission is None:
            return len(self.records)
        return self.admission.offered

    def offered_load(self) -> float:
        """Offered queries per second of simulated makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.offered() / self.makespan

    def goodput(self) -> float:
        """Successfully completed queries per second — the number that,
        compared against :meth:`offered_load`, shows what overload cost.
        Every record is a completed query, so this equals throughput; the
        gap to offered load is the shed + rejected (and still-queued)
        work."""
        return self.throughput()

    def time_in_overload(self) -> float:
        """Simulated seconds the admission layer spent in overload."""
        return (
            self.admission.time_in_overload()
            if self.admission is not None
            else 0.0
        )

    def per_tenant_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant SLO view: volume, sojourn p99/p999, drop counts.

        Sojourn percentiles are over *completed* queries; the admission
        counters alongside them say how many of the tenant's offers never
        completed (shed / rejected) — read them together: a tenant with a
        great p99 and half its traffic shed did not have a great day.
        """
        groups: Dict[str, List[QueryRecord]] = {}
        for record in self.records:
            groups.setdefault(record.tenant or "default", []).append(record)
        admission = self.admission.tenants if self.admission is not None else {}
        stats: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(set(groups) | set(admission)):
            records = groups.get(tenant, [])
            sojourns = sorted(r.sojourn_time for r in records)
            entry: Dict[str, float] = {
                "queries": len(records),
                "mean_response_ms": (
                    sum(r.response_time for r in records) / len(records) * 1e3
                    if records else 0.0
                ),
                "mean_sojourn_ms": (
                    sum(sojourns) / len(sojourns) * 1e3 if sojourns else 0.0
                ),
                "p99_sojourn_ms": _percentile(sojourns, 99) * 1e3,
                "p999_sojourn_ms": _percentile(sojourns, 99.9) * 1e3,
            }
            tenant_admission = admission.get(tenant)
            if tenant_admission is not None:
                entry["offered"] = tenant_admission.offered
                entry["admitted"] = tenant_admission.admitted
                entry["rejected"] = tenant_admission.rejected
                entry["shed"] = tenant_admission.shed
            stats[tenant] = entry
        return stats

    # -- cache metrics (Eq. 8 / 9) --------------------------------------------
    def total_cache_hits(self) -> int:
        return sum(r.stats.cache_hits for r in self.records)

    def total_cache_misses(self) -> int:
        return sum(r.stats.cache_misses for r in self.records)

    def cache_hit_rate(self) -> float:
        hits = self.total_cache_hits()
        total = hits + self.total_cache_misses()
        return hits / total if total else 0.0

    # -- windowed views ------------------------------------------------------
    def time_bounds(self) -> Tuple[float, float]:
        """(first arrival, last completion) across the report's records."""
        if not self.records:
            return (0.0, 0.0)
        return (
            min(r.enqueued_at for r in self.records),
            max(r.finished_at for r in self.records),
        )

    def window(self, t0: float, t1: float) -> "WorkloadReport":
        """Sub-report of the queries *completing* in ``[t0, t1)``.

        Half-open on the right, so adjacent windows partition a run with
        no record counted twice. Completion time is the binning key — a
        query belongs to the window in which its work (and cache effect)
        materialised. The sub-report's ``makespan`` is the window width,
        which keeps :meth:`throughput` meaningful per window.
        """
        if t1 < t0:
            raise ValueError("window requires t0 <= t1")
        return replace(
            self,
            records=[r for r in self.records if t0 <= r.finished_at < t1],
            makespan=t1 - t0,
        )

    def windows(self, count: int) -> List["WorkloadReport"]:
        """Partition the run into ``count`` equal-width windows.

        The windows tile ``[first arrival, last completion]``; the last
        window is closed on the right (via the next representable float),
        so every record lands in exactly one window and per-window counts
        and cache totals sum exactly to the full report's.
        """
        if count < 1:
            raise ValueError("need at least one window")
        t0, t1 = self.time_bounds()
        edges = [t0 + (t1 - t0) * i / count for i in range(count + 1)]
        edges[-1] = math.nextafter(t1, math.inf)
        return [self.window(a, b) for a, b in zip(edges, edges[1:], strict=False)]

    def per_window_stats(self, count: int) -> List[Dict[str, object]]:
        """Steady-state view: headline + per-class stats per time window.

        This is what separates warm-up from steady state in one run — the
        early windows carry the compulsory cache misses, the late ones
        show the regime the service sustains.
        """
        stats: List[Dict[str, object]] = []
        for index, win in enumerate(self.windows(count)):
            t0, t1 = win.time_bounds() if win.records else (0.0, 0.0)
            stats.append({
                "window": index,
                "first_arrival_s": t0,
                "last_completion_s": t1,
                "queries": len(win.records),
                "mean_response_ms": win.mean_response_time() * 1e3,
                "throughput_qps": win.throughput(),
                "cache_hit_rate": win.cache_hit_rate(),
                "per_class": win.per_class_stats(),
            })
        return stats

    # -- per-class / per-operator / per-arm stats ------------------------------
    def _grouped_response_stats(self, key) -> Dict[str, Dict[str, float]]:
        """Counts + mean/p95 response time grouped by ``key(record)``."""
        groups: Dict[str, List[float]] = {}
        for record in self.records:
            groups.setdefault(key(record), []).append(record.response_time)
        stats: Dict[str, Dict[str, float]] = {}
        for name, times in sorted(groups.items()):
            times.sort()
            rank = min(
                len(times) - 1,
                max(0, int(round(0.95 * (len(times) - 1)))),
            )
            stats[name] = {
                "queries": len(times),
                "mean_response_ms": sum(times) / len(times) * 1e3,
                "p95_response_ms": times[rank] * 1e3,
            }
        return stats

    def per_class_stats(self) -> Dict[str, Dict[str, float]]:
        """Response-time stats grouped by query class (point/walk/traversal)."""
        return self._grouped_response_stats(
            lambda record: record.query_class or "unknown"
        )

    def per_operator_stats(self) -> Dict[str, Dict[str, float]]:
        """Counts + response-time stats grouped by registered operator name.

        The per-query-type companion to :meth:`per_class_stats`: classes
        aggregate operators of similar cost, this breaks a mixed workload
        down to the individual operator (``aggregation``, ``walk``,
        ``ppr``, ...). Records from before the operator field existed (or
        from unregistered types) group under their raw query type name.
        """
        return self._grouped_response_stats(
            lambda record: record.operator or record.kind
        )

    def per_arm_counts(self) -> Dict[str, int]:
        """How many queries each routing decision label handled."""
        counts: Dict[str, int] = {}
        for record in self.records:
            label = record.routed_via or self.routing
            counts[label] = counts.get(label, 0) + 1
        return dict(sorted(counts.items()))

    # -- load-balance metrics -----------------------------------------------
    def per_processor_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {p: 0 for p in range(self.num_processors)}
        for record in self.records:
            counts[record.processor] = counts.get(record.processor, 0) + 1
        return counts

    def stolen_count(self) -> int:
        return sum(1 for r in self.records if r.stolen)

    def load_imbalance(self) -> float:
        """max/mean processor load; 1.0 is perfectly balanced."""
        counts = list(self.per_processor_counts().values())
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean else 0.0

    def total_bytes_fetched(self) -> int:
        return sum(r.stats.bytes_fetched for r in self.records)

    # -- storage-side observability -------------------------------------------
    def per_server_stats(self) -> List[Dict[str, object]]:
        """Per-storage-server requests/bytes/utilization + top-k record
        heat, snapshotted when the report was built (empty for reports
        predating the snapshot — e.g. hand-constructed ones)."""
        return list(self.per_server) if self.per_server else []

    def storage_request_imbalance(self) -> float:
        """max/mean storage-server requests served; 1.0 = balanced.

        The storage-tier twin of :meth:`load_imbalance` — the signal
        dynamic placement flattens on skewed workloads.
        """
        if not self.per_server:
            return 0.0
        counts = [s["requests_served"] for s in self.per_server]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def downtime_windows(self) -> Dict[int, List[List[float]]]:
        """Per-server outage windows ``[down_at, up_at]`` (``up_at`` None
        while still down), from the servers' alive-transition logs. Empty
        for fault-free runs — the keys exist only on servers that failed.
        """
        windows: Dict[int, List[List[float]]] = {}
        for stats in self.per_server or []:
            if "downtime_windows" in stats:
                windows[int(stats["server"])] = list(
                    stats["downtime_windows"]
                )
        return windows

    def total_downtime_s(self) -> float:
        """Summed simulated seconds any storage server spent down."""
        return float(sum(
            stats.get("downtime_s", 0.0) for stats in self.per_server or []
        ))

    def recovery_times_s(self) -> List[float]:
        """Outage durations (down→up) of *completed* outages, in event
        order across servers — the storage-side recovery metric the chaos
        benchmark reports next to the latency-based one."""
        durations: List[float] = []
        for _server, windows in sorted(self.downtime_windows().items()):
            for down, up in windows:
                if up is not None:
                    durations.append(up - down)
        return durations

    def migration_bytes(self) -> int:
        """Bytes the placement subsystem copied between servers (0 when
        disabled). Itemized separately from query ``bytes_fetched`` and
        update ``bytes_written`` — but *accounted* in the per-server
        ``records_written``/``bytes_written`` counters, because the
        copies really did occupy those write pipelines."""
        if self.placement is None:
            return 0
        return int(self.placement.get("migration_bytes", 0))

    def summary(self) -> Dict[str, float]:
        """Flat dict for table printing and JSON artifacts.

        Open-loop serves (``admission`` present) add the SLO block:
        offered/goodput, drop counters and time in overload. Reports
        carrying a per-server snapshot add the storage-balance block;
        placement-enabled runs itemize the subsystem's work.
        """
        summary = self._base_summary()
        if self.per_server:
            summary.update({
                "storage_request_imbalance": self.storage_request_imbalance(),
                "max_storage_utilization": max(
                    s["utilization"] for s in self.per_server
                ),
            })
            downtime = self.total_downtime_s()
            if any("downtime_s" in s for s in self.per_server):
                # Fault-injected runs only: fault-free summaries keep
                # their historical key set bit-for-bit.
                recoveries = self.recovery_times_s()
                summary.update({
                    "storage_downtime_s": downtime,
                    "storage_outages": sum(
                        len(w) for w in self.downtime_windows().values()
                    ),
                    "storage_recoveries": len(recoveries),
                    "mean_recovery_s": (
                        sum(recoveries) / len(recoveries)
                        if recoveries else 0.0
                    ),
                })
        if self.placement is not None:
            summary.update({
                "migration_bytes": self.placement.get("migration_bytes", 0),
                "migrations": self.placement.get("migrations", 0),
                "replications": self.placement.get("replications", 0),
                "active_placements": self.placement.get(
                    "active_placements", 0
                ),
            })
        if self.admission is not None:
            summary.update({
                "offered": self.admission.offered,
                "offered_qps": self.offered_load(),
                "goodput_qps": self.goodput(),
                "delivery_ratio": self.admission.delivery_ratio(),
                "shed": self.admission.shed,
                "rejected": self.admission.rejected,
                "p99_sojourn_ms": self.percentile_sojourn_time(99) * 1e3,
                "p999_sojourn_ms": self.percentile_sojourn_time(99.9) * 1e3,
                "time_in_overload_s": self.time_in_overload(),
            })
        return summary

    def _base_summary(self) -> Dict[str, float]:
        return {
            "queries": len(self.records),
            "routing": self.routing,
            "processors": self.num_processors,
            "storage_servers": self.num_storage_servers,
            "makespan_s": self.makespan,
            "throughput_qps": self.throughput(),
            "mean_response_ms": self.mean_response_time() * 1e3,
            "p95_response_ms": self.percentile_response_time(95) * 1e3,
            "cache_hits": self.total_cache_hits(),
            "cache_misses": self.total_cache_misses(),
            "cache_hit_rate": self.cache_hit_rate(),
            "stolen": self.stolen_count(),
            "load_imbalance": self.load_imbalance(),
            "bytes_fetched": self.total_bytes_fetched(),
        }
