"""Shared per-graph artifacts for cluster simulations.

Experiment sweeps run dozens of cluster configurations over the *same*
graph. Everything that depends only on the graph — CSR views, record
sizes, storage ownership, landmark tables, embeddings — is built once here
and memoized, so a sweep pays preprocessing once instead of per
configuration. All artifacts are read-only from the cluster's perspective.

Live graph updates (see :mod:`repro.core.updates`) are the one sanctioned
mutation path: :meth:`GraphAssets.apply_graph_updates` appends new nodes
at the *end* of the compact index space (so cache keys, record-size rows
and owner entries for existing nodes never move), re-sizes dirty records,
and splices only the dirty adjacency rows into the CSR views. The
memoized landmark/embedding artifacts are deliberately **not** refreshed
here — they are preprocessing snapshots, and keeping them stale (with
incremental refresh layered on top by the update manager) is exactly the
regime the paper's Fig 10 studies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from ..embedding import GraphEmbedding
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph
from ..landmarks import LandmarkDistances, LandmarkIndex, select_landmarks
from ..landmarks.assignment import (
    assign_landmarks_to_processors,
    node_processor_distances,
)
from ..storage.murmur import hash_node_id
from ..storage.records import record_for_node


class GraphAssets:
    """Memoized analysis-side artifacts for one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.csr_both = CSRGraph.from_graph(graph, direction="both")
        self.node_ids = self.csr_both.node_ids
        self.compact = {int(n): i for i, n in enumerate(self.node_ids)}
        self._csr_out: Optional[CSRGraph] = None
        self._csr_in: Optional[CSRGraph] = None
        self._record_sizes: Optional[np.ndarray] = None
        self._owners: Dict[int, np.ndarray] = {}
        self._landmark_distances: Dict[Tuple[int, int], LandmarkDistances] = {}
        self._landmark_indexes: Dict[Tuple[int, int, int], LandmarkIndex] = {}
        self._embeddings: Dict[Tuple[int, int, int, str], GraphEmbedding] = {}

    # -- topology views -----------------------------------------------------
    @property
    def csr_out(self) -> CSRGraph:
        if self._csr_out is None:
            # node_ids pins the compact order: identical to sorted order on
            # a fresh graph, and the append-stable order after live updates.
            self._csr_out = CSRGraph.from_graph(
                self.graph, direction="out", node_ids=self.node_ids
            )
        return self._csr_out

    @property
    def csr_in(self) -> CSRGraph:
        if self._csr_in is None:
            self._csr_in = CSRGraph.from_graph(
                self.graph, direction="in", node_ids=self.node_ids
            )
        return self._csr_in

    @property
    def num_nodes(self) -> int:
        return self.csr_both.num_nodes

    # -- storage-side metadata ---------------------------------------------
    @property
    def record_sizes(self) -> np.ndarray:
        """Encoded adjacency-record size (bytes) per compact node index."""
        if self._record_sizes is None:
            sizes = np.empty(self.num_nodes, dtype=np.int64)
            for node_id, idx in self.compact.items():
                sizes[idx] = record_for_node(self.graph, node_id).size_bytes()
            self._record_sizes = sizes
        return self._record_sizes

    def total_graph_bytes(self) -> int:
        """Size of the whole graph in record form (the '60.3 GB' analogue)."""
        return int(self.record_sizes.sum())

    def owner_array(self, num_servers: int) -> np.ndarray:
        """Storage server owning each compact node (MurmurHash3 mod M)."""
        owners = self._owners.get(num_servers)
        if owners is None:
            owners = np.array(
                [hash_node_id(int(n)) % num_servers for n in self.node_ids],
                dtype=np.int32,
            )
            self._owners[num_servers] = owners
        return owners

    # -- smart-routing preprocessing ------------------------------------------
    def landmark_distances(
        self, num_landmarks: int = 96, min_separation: int = 3
    ) -> LandmarkDistances:
        key = (num_landmarks, min_separation)
        if key not in self._landmark_distances:
            landmarks = select_landmarks(self.csr_both, num_landmarks, min_separation)
            self._landmark_distances[key] = LandmarkDistances.compute(
                self.csr_both, landmarks
            )
        return self._landmark_distances[key]

    def landmark_index(
        self,
        num_processors: int,
        num_landmarks: int = 96,
        min_separation: int = 3,
    ) -> LandmarkIndex:
        """Landmark routing table for a given processor count."""
        key = (num_processors, num_landmarks, min_separation)
        if key not in self._landmark_indexes:
            distances = self.landmark_distances(num_landmarks, min_separation)
            groups = assign_landmarks_to_processors(
                distances.pair_matrix(), num_processors
            )
            table = node_processor_distances(distances.matrix, groups)
            landmark_node_ids = [
                int(self.node_ids[l]) for l in distances.landmarks
            ]
            self._landmark_indexes[key] = LandmarkIndex(
                self.node_ids,
                landmark_node_ids,
                distances.matrix,
                groups,
                table,
            )
        return self._landmark_indexes[key]

    # -- live graph updates --------------------------------------------------
    def _compact_row(self, node: int, direction: str) -> list:
        graph = self.graph
        if direction == "out":
            adjacency: Iterable[int] = graph.out_neighbors(node)
        elif direction == "in":
            adjacency = graph.in_neighbors(node)
        else:
            adjacency = graph.neighbors(node)
        compact = self.compact
        return [compact[v] for v in adjacency]

    def _splice_csr(
        self, csr: CSRGraph, direction: str,
        dirty_existing: Iterable[int], new_ids: list,
    ) -> CSRGraph:
        new_rows = {
            self.compact[node]: self._compact_row(node, direction)
            for node in dirty_existing
        }
        appended = [self._compact_row(node, direction) for node in new_ids]
        return csr.with_updated_rows(
            new_rows,
            appended_rows=appended,
            appended_node_ids=np.asarray(new_ids, dtype=np.int64),
        )

    def apply_graph_updates(
        self, dirty_ids: Set[int], new_ids: Set[int]
    ) -> np.ndarray:
        """Refresh graph-derived artifacts after ``self.graph`` mutated.

        ``dirty_ids`` are the nodes whose adjacency changed (including the
        ``new_ids`` subset that did not exist before). New nodes are
        appended to the compact index space in sorted order — existing
        compact indices are stable for the lifetime of the assets, which
        is what lets processor caches keep their keys across updates.
        Returns the dirty nodes' compact indices (sorted), the keys whose
        cached/stored records must be rewritten and invalidated.
        """
        ordered_new = sorted(new_ids)
        dirty_existing = sorted(dirty_ids - new_ids)
        if ordered_new:
            start = len(self.node_ids)
            self.node_ids = np.concatenate([
                self.node_ids,
                np.asarray(ordered_new, dtype=np.int64),
            ])
            for offset, node in enumerate(ordered_new):
                self.compact[node] = start + offset
            if self._record_sizes is not None:
                self._record_sizes = np.concatenate([
                    self._record_sizes,
                    np.zeros(len(ordered_new), dtype=np.int64),
                ])
            for num_servers, owners in self._owners.items():
                extra = np.array(
                    [hash_node_id(n) % num_servers for n in ordered_new],
                    dtype=np.int32,
                )
                self._owners[num_servers] = np.concatenate([owners, extra])
        if self._record_sizes is not None:
            sizes = self._record_sizes
            for node in dirty_existing:
                sizes[self.compact[node]] = (
                    record_for_node(self.graph, node).size_bytes()
                )
            for node in ordered_new:
                sizes[self.compact[node]] = (
                    record_for_node(self.graph, node).size_bytes()
                )
        # Splice the materialised CSR views; lazily-built ones stay lazy
        # (their next build sees the updated graph and node order).
        self.csr_both = self._splice_csr(
            self.csr_both, "both", dirty_existing, ordered_new
        )
        if self._csr_out is not None:
            self._csr_out = self._splice_csr(
                self._csr_out, "out", dirty_existing, ordered_new
            )
        if self._csr_in is not None:
            self._csr_in = self._splice_csr(
                self._csr_in, "in", dirty_existing, ordered_new
            )
        return np.array(
            sorted(self.compact[node] for node in dirty_ids), dtype=np.int64
        )

    def embedding(
        self,
        dim: int = 10,
        num_landmarks: int = 96,
        min_separation: int = 3,
        method: str = "simplex",
        nm_iterations: int = 120,
    ) -> GraphEmbedding:
        key = (dim, num_landmarks, min_separation, method)
        if key not in self._embeddings:
            distances = self.landmark_distances(num_landmarks, min_separation)
            self._embeddings[key] = GraphEmbedding.embed(
                self.csr_both,
                dim=dim,
                method=method,
                landmark_distances=distances,
                nm_iterations=nm_iterations,
            )
        return self._embeddings[key]
