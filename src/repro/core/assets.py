"""Shared, immutable per-graph artifacts for cluster simulations.

Experiment sweeps run dozens of cluster configurations over the *same*
graph. Everything that depends only on the graph — CSR views, record
sizes, storage ownership, landmark tables, embeddings — is built once here
and memoized, so a sweep pays preprocessing once instead of per
configuration. All artifacts are read-only from the cluster's perspective.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..embedding import GraphEmbedding
from ..graph.csr import CSRGraph
from ..graph.digraph import Graph
from ..landmarks import LandmarkDistances, LandmarkIndex, select_landmarks
from ..landmarks.assignment import (
    assign_landmarks_to_processors,
    node_processor_distances,
)
from ..storage.murmur import hash_node_id
from ..storage.records import record_for_node


class GraphAssets:
    """Memoized analysis-side artifacts for one graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.csr_both = CSRGraph.from_graph(graph, direction="both")
        self.node_ids = self.csr_both.node_ids
        self.compact = {int(n): i for i, n in enumerate(self.node_ids)}
        self._csr_out: Optional[CSRGraph] = None
        self._csr_in: Optional[CSRGraph] = None
        self._record_sizes: Optional[np.ndarray] = None
        self._owners: Dict[int, np.ndarray] = {}
        self._landmark_distances: Dict[Tuple[int, int], LandmarkDistances] = {}
        self._landmark_indexes: Dict[Tuple[int, int, int], LandmarkIndex] = {}
        self._embeddings: Dict[Tuple[int, int, int, str], GraphEmbedding] = {}

    # -- topology views -----------------------------------------------------
    @property
    def csr_out(self) -> CSRGraph:
        if self._csr_out is None:
            self._csr_out = CSRGraph.from_graph(self.graph, direction="out")
        return self._csr_out

    @property
    def csr_in(self) -> CSRGraph:
        if self._csr_in is None:
            self._csr_in = CSRGraph.from_graph(self.graph, direction="in")
        return self._csr_in

    @property
    def num_nodes(self) -> int:
        return self.csr_both.num_nodes

    # -- storage-side metadata ---------------------------------------------
    @property
    def record_sizes(self) -> np.ndarray:
        """Encoded adjacency-record size (bytes) per compact node index."""
        if self._record_sizes is None:
            sizes = np.empty(self.num_nodes, dtype=np.int64)
            for node_id, idx in self.compact.items():
                sizes[idx] = record_for_node(self.graph, node_id).size_bytes()
            self._record_sizes = sizes
        return self._record_sizes

    def total_graph_bytes(self) -> int:
        """Size of the whole graph in record form (the '60.3 GB' analogue)."""
        return int(self.record_sizes.sum())

    def owner_array(self, num_servers: int) -> np.ndarray:
        """Storage server owning each compact node (MurmurHash3 mod M)."""
        owners = self._owners.get(num_servers)
        if owners is None:
            owners = np.array(
                [hash_node_id(int(n)) % num_servers for n in self.node_ids],
                dtype=np.int32,
            )
            self._owners[num_servers] = owners
        return owners

    # -- smart-routing preprocessing ------------------------------------------
    def landmark_distances(
        self, num_landmarks: int = 96, min_separation: int = 3
    ) -> LandmarkDistances:
        key = (num_landmarks, min_separation)
        if key not in self._landmark_distances:
            landmarks = select_landmarks(self.csr_both, num_landmarks, min_separation)
            self._landmark_distances[key] = LandmarkDistances.compute(
                self.csr_both, landmarks
            )
        return self._landmark_distances[key]

    def landmark_index(
        self,
        num_processors: int,
        num_landmarks: int = 96,
        min_separation: int = 3,
    ) -> LandmarkIndex:
        """Landmark routing table for a given processor count."""
        key = (num_processors, num_landmarks, min_separation)
        if key not in self._landmark_indexes:
            distances = self.landmark_distances(num_landmarks, min_separation)
            groups = assign_landmarks_to_processors(
                distances.pair_matrix(), num_processors
            )
            table = node_processor_distances(distances.matrix, groups)
            landmark_node_ids = [
                int(self.node_ids[l]) for l in distances.landmarks
            ]
            self._landmark_indexes[key] = LandmarkIndex(
                self.node_ids,
                landmark_node_ids,
                distances.matrix,
                groups,
                table,
            )
        return self._landmark_indexes[key]

    def embedding(
        self,
        dim: int = 10,
        num_landmarks: int = 96,
        min_separation: int = 3,
        method: str = "simplex",
        nm_iterations: int = 120,
    ) -> GraphEmbedding:
        key = (dim, num_landmarks, min_separation, method)
        if key not in self._embeddings:
            distances = self.landmark_distances(num_landmarks, min_separation)
            self._embeddings[key] = GraphEmbedding.embed(
                self.csr_both,
                dim=dim,
                method=method,
                landmark_distances=distances,
                nm_iterations=nm_iterations,
            )
        return self._embeddings[key]
