"""gRouting core: decoupled cluster, router, processors, smart routing."""

from .assets import GraphAssets
from .cache import CacheStats, ProcessorCache
from .cluster import ROUTING_CHOICES, ClusterConfig, GRoutingCluster, run_workload
from .metrics import QueryRecord, QueryStats, WorkloadReport
from .processor import QueryProcessor
from .queries import (
    NeighborAggregationQuery,
    Query,
    RandomWalkQuery,
    ReachabilityQuery,
)
from .router import Router
from .routing import (
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingStrategy,
)

__all__ = [
    "CacheStats",
    "ClusterConfig",
    "EmbedRouting",
    "GRoutingCluster",
    "GraphAssets",
    "HashRouting",
    "LandmarkRouting",
    "NeighborAggregationQuery",
    "NextReadyRouting",
    "ProcessorCache",
    "Query",
    "QueryProcessor",
    "QueryRecord",
    "QueryStats",
    "ROUTING_CHOICES",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "Router",
    "RoutingStrategy",
    "WorkloadReport",
    "run_workload",
]
