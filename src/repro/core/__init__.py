"""gRouting core: decoupled cluster, router, processors, smart routing,
and the open query-operator registry."""

from .admission import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    TenantAdmissionStats,
)
from .assets import GraphAssets
from .cache import CacheStats, ProcessorCache
from .cluster import GRoutingCluster, run_workload
from .metrics import QueryRecord, QueryStats, WorkloadReport
from .operators import (
    OperatorRegistry,
    QueryOperator,
    UnknownOperatorError,
    UnknownQueryTypeError,
    default_registry,
    gather_nodes,
)
from .placement import PlacementConfig, PlacementManager
from .processor import QueryProcessor
from .topology import ChaosEvent, ClusterTopology, TopologyConfig
from .queries import (
    QUERY_CLASSES,
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    Query,
    QueryIdAllocator,
    RandomWalkQuery,
    ReachabilityQuery,
    query_class,
    query_ids_from,
    reset_query_ids,
)
from .router import Router
from .service import (
    ROUTING_CHOICES,
    ClusterConfig,
    GraphService,
    QuerySession,
)
from .updates import LiveUpdateManager, UpdateReport
from .routing import (
    AdaptiveRouting,
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingFeedback,
    RoutingStrategy,
)

__all__ = [
    "ADMITTED",
    "REJECTED",
    "SHED",
    "AdaptiveRouting",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "CacheStats",
    "ChaosEvent",
    "ClusterConfig",
    "ClusterTopology",
    "EmbedRouting",
    "GRoutingCluster",
    "GraphAssets",
    "GraphService",
    "HashRouting",
    "KSourceReachabilityQuery",
    "LandmarkRouting",
    "LiveUpdateManager",
    "NeighborAggregationQuery",
    "NeighborhoodSampleQuery",
    "NextReadyRouting",
    "OperatorRegistry",
    "PersonalizedPageRankQuery",
    "PlacementConfig",
    "PlacementManager",
    "ProcessorCache",
    "QUERY_CLASSES",
    "Query",
    "QueryIdAllocator",
    "QueryOperator",
    "QueryProcessor",
    "QueryRecord",
    "QuerySession",
    "QueryStats",
    "ROUTING_CHOICES",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "Router",
    "RoutingFeedback",
    "RoutingStrategy",
    "TenantAdmissionStats",
    "TopologyConfig",
    "UnknownOperatorError",
    "UpdateReport",
    "UnknownQueryTypeError",
    "WorkloadReport",
    "default_registry",
    "gather_nodes",
    "query_class",
    "query_ids_from",
    "reset_query_ids",
    "run_workload",
]
