"""gRouting core: decoupled cluster, router, processors, smart routing."""

from .assets import GraphAssets
from .cache import CacheStats, ProcessorCache
from .cluster import ROUTING_CHOICES, ClusterConfig, GRoutingCluster, run_workload
from .metrics import QueryRecord, QueryStats, WorkloadReport
from .processor import QueryProcessor
from .queries import (
    QUERY_CLASSES,
    NeighborAggregationQuery,
    Query,
    RandomWalkQuery,
    ReachabilityQuery,
    query_class,
)
from .router import Router
from .routing import (
    AdaptiveRouting,
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingFeedback,
    RoutingStrategy,
)

__all__ = [
    "AdaptiveRouting",
    "CacheStats",
    "ClusterConfig",
    "EmbedRouting",
    "GRoutingCluster",
    "GraphAssets",
    "HashRouting",
    "LandmarkRouting",
    "NeighborAggregationQuery",
    "NextReadyRouting",
    "ProcessorCache",
    "QUERY_CLASSES",
    "Query",
    "QueryProcessor",
    "QueryRecord",
    "QueryStats",
    "ROUTING_CHOICES",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "Router",
    "RoutingFeedback",
    "RoutingStrategy",
    "WorkloadReport",
    "query_class",
    "run_workload",
]
