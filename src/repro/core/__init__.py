"""gRouting core: decoupled cluster, router, processors, smart routing."""

from .assets import GraphAssets
from .cache import CacheStats, ProcessorCache
from .cluster import GRoutingCluster, run_workload
from .metrics import QueryRecord, QueryStats, WorkloadReport
from .processor import QueryProcessor
from .queries import (
    QUERY_CLASSES,
    NeighborAggregationQuery,
    Query,
    QueryIdAllocator,
    RandomWalkQuery,
    ReachabilityQuery,
    query_class,
    query_ids_from,
    reset_query_ids,
)
from .router import Router
from .service import (
    ROUTING_CHOICES,
    ClusterConfig,
    GraphService,
    QuerySession,
)
from .routing import (
    AdaptiveRouting,
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NextReadyRouting,
    RoutingFeedback,
    RoutingStrategy,
)

__all__ = [
    "AdaptiveRouting",
    "CacheStats",
    "ClusterConfig",
    "EmbedRouting",
    "GRoutingCluster",
    "GraphAssets",
    "GraphService",
    "HashRouting",
    "LandmarkRouting",
    "NeighborAggregationQuery",
    "NextReadyRouting",
    "ProcessorCache",
    "QUERY_CLASSES",
    "Query",
    "QueryIdAllocator",
    "QueryProcessor",
    "QueryRecord",
    "QuerySession",
    "QueryStats",
    "ROUTING_CHOICES",
    "RandomWalkQuery",
    "ReachabilityQuery",
    "Router",
    "RoutingFeedback",
    "RoutingStrategy",
    "WorkloadReport",
    "query_class",
    "query_ids_from",
    "reset_query_ids",
    "run_workload",
]
