"""Live graph updates through every layer of a running service.

The paper's Fig 10 studies how smart routing degrades when preprocessing
saw only part of the graph; dynamic distributed stores (PHD-Store's
incremental placement, Peng et al.'s workload-driven re-fragmentation)
show the production version of the problem: graphs churn *while serving
queries*, and every auxiliary structure must adapt incrementally. This
module is that adaptation loop for the reproduction. One
:class:`LiveUpdateManager` per :class:`~repro.core.service.GraphService`
drives each applied :class:`~repro.graph.updates.GraphUpdate` batch
through four layers, in simulated time where time is owed:

1. **graph + assets** — the mutation lands in the
   :class:`~repro.graph.digraph.Graph`; compact indices stay append-stable
   and only dirty adjacency rows are respliced into the CSR views
   (:meth:`~repro.core.assets.GraphAssets.apply_graph_updates`);
2. **storage** — every dirty node's re-encoded, re-sized
   :class:`~repro.storage.records.AdjacencyRecord` is rewritten through
   the storage tier's write path (one multiput per owning server, paying
   :meth:`~repro.costs.StorageServiceModel.write_time` on the same FIFO
   pipeline queries fetch from — churn contends with traffic);
3. **caches** — once the writes land, the dirty keys are invalidated in
   every processor cache (:meth:`~repro.core.cache.ProcessorCache.invalidate_many`),
   so the next query re-fetches current bytes instead of serving stale
   adjacency;
4. **routing** — dirty nodes join the shared *staleness set*: landmark and
   embed routing treat them as unknown (hash fallback) until
   :meth:`LiveUpdateManager.refresh` re-assigns/re-embeds just the dirty
   region — neighbor relaxation on the landmark index, neighbor-centroid
   placement in the embedding — instead of re-running preprocessing.

Refresh runs on demand or automatically every
``ClusterConfig.update_refresh_interval`` applied updates. The trade-off
it controls is the live-update benchmark's subject: never refreshing
drives an ever-growing share of traffic onto hash fallback, erasing smart
routing's advantage; refreshing each batch pays incremental work the
moment churn happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.updates import GraphUpdate, apply_updates, validate_updates
from ..storage.records import record_for_node
from .routing import AdaptiveRouting, EmbedRouting, LandmarkRouting
from .routing.base import RoutingStrategy

if TYPE_CHECKING:  # pragma: no cover
    from .service import GraphService


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one applied update batch."""

    updates_applied: int
    nodes_added: int
    records_written: int
    bytes_written: int
    cache_entries_invalidated: int
    stale_nodes: int  # staleness-set size after this batch
    refreshed: bool  # whether this batch triggered an automatic refresh
    elapsed_s: float  # simulated seconds the write path took


class LiveUpdateManager:
    """Applies update batches to a live service and tracks staleness."""

    def __init__(self, service: "GraphService", staleness: Set[int]) -> None:
        self.service = service
        #: Node ids with stale routing info; shared by reference with the
        #: landmark/embed strategies, so membership changes are visible to
        #: routing immediately. refresh() must clear() it, never rebind it.
        self.stale = staleness
        #: How far an already-embedded stale node moves toward its
        #: neighbors' centroid on refresh (0 = keep coordinates, only
        #: clear staleness). Edge churn barely moves true hop distances,
        #: so re-placement is conservative by default; new nodes always
        #: take the full centroid placement.
        self.refresh_blend = 0.0
        self._since_refresh = 0
        # Cumulative totals across the service lifetime.
        self.updates_applied = 0
        self.nodes_added = 0
        self.records_written = 0
        self.bytes_written = 0
        self.cache_entries_invalidated = 0
        self.refreshes = 0
        self.nodes_refreshed = 0

    # -- applying batches ----------------------------------------------------
    def apply(self, updates: Sequence[GraphUpdate]) -> UpdateReport:
        """Apply a batch through graph, storage, caches and routing.

        Advances simulated time while the storage writes are in flight
        (in-flight queries keep executing concurrently and contend for
        the same storage pipelines). Validates the whole batch first —
        an inapplicable batch changes nothing anywhere.
        """
        prepared = self._prepare(updates)
        if prepared is None:
            return self._report(0, 0, 0, 0, 0, False, 0.0)
        updates, dirty_ids, dirty_idx, new_ids = prepared
        # Timed write path + cache invalidation, then bookkeeping.
        env = self.service.env
        started = env.now
        records, nbytes, invalidated, write_error = env.run(
            until=env.process(self._write_and_invalidate(dirty_ids, dirty_idx))
        )
        return self._finish(
            updates, dirty_ids, new_ids, records, nbytes, invalidated,
            write_error, env.now - started,
        )

    def apply_process(self, updates: Sequence[GraphUpdate]):
        """Generator twin of :meth:`apply` for callers already *inside* a
        simulation process (the open-loop arrival driver): :meth:`apply`
        must own the event loop via ``env.run`` and would deadlock there.
        Yields through the same write/invalidate path; returns the same
        :class:`UpdateReport`."""
        prepared = self._prepare(updates)
        if prepared is None:
            return self._report(0, 0, 0, 0, 0, False, 0.0)
        updates, dirty_ids, dirty_idx, new_ids = prepared
        env = self.service.env
        started = env.now
        records, nbytes, invalidated, write_error = yield from (
            self._write_and_invalidate(dirty_ids, dirty_idx)
        )
        return self._finish(
            updates, dirty_ids, new_ids, records, nbytes, invalidated,
            write_error, env.now - started,
        )

    def _prepare(self, updates: Sequence[GraphUpdate]):
        """Validate and land the batch in graph + assets (untimed part)."""
        service = self.service
        updates = list(updates)
        assets = service.assets
        if not updates:
            validate_updates(assets.graph, updates)
            return None
        dirty_ids, new_ids = apply_updates(assets.graph, updates)
        dirty_idx = assets.apply_graph_updates(dirty_ids, new_ids)
        # Processors cache the owner array by reference; re-point them at
        # the (possibly grown) current one.
        owner_of = assets.owner_array(service.tier.num_servers)
        for processor in service.processors:
            processor.owner_of = owner_of
        return updates, dirty_ids, dirty_idx, new_ids

    def _finish(
        self,
        updates: List[GraphUpdate],
        dirty_ids: Set[int],
        new_ids: Sequence[int],
        records: int,
        nbytes: int,
        invalidated: int,
        write_error: Optional[BaseException],
        elapsed: float,
    ) -> UpdateReport:
        """Bookkeeping after the write path landed (shared by both modes)."""
        service = self.service
        self.stale.update(dirty_ids)
        self.updates_applied += len(updates)
        self.nodes_added += len(new_ids)
        self.records_written += records
        self.bytes_written += nbytes
        self.cache_entries_invalidated += invalidated
        self._since_refresh += len(updates)

        if write_error is not None:
            # A storage server was down. The graph/assets mutation has
            # happened and cannot be unwound, so the layers that keep the
            # cluster *coherent* — cache invalidation (done above, in the
            # write process) and staleness marking — are completed before
            # the failure surfaces, and the totals above count exactly
            # what the surviving servers wrote (every leg runs to
            # completion); only the failed server's log misses its bytes,
            # like any other write lost to the injected failure.
            topology = service.topology
            if topology is not None and topology.tolerates_write_failures:
                # Failover: the repair loop re-writes lost records from
                # the authoritative graph, so a batch that lost every
                # copy of some key is counted, not fatal. The whole
                # batch becomes suspect — the error doesn't say which
                # keys lost all copies.
                compact = service.assets.compact
                topology.note_write_failure({
                    int(node): int(compact[node])
                    for node in sorted(dirty_ids)
                })
            else:
                # Re-applying the batch would double-apply it; recover
                # the storage side by re-writing (recover() + a touching
                # batch) instead.
                raise write_error

        interval = service.config.update_refresh_interval
        refreshed = False
        if interval is not None and self._since_refresh >= interval:
            refreshed = self.refresh() > 0
        return self._report(
            len(updates), len(new_ids), records, nbytes, invalidated,
            refreshed, elapsed,
        )

    def _write_and_invalidate(self, dirty_ids: Set[int], dirty_idx: np.ndarray):
        """Simulation process: rewrite dirty records, then invalidate.

        Invalidation happens at the simulated instant the writes have
        landed — queries completing while the writes queue still hit the
        old cached records, exactly like a real cluster whose
        invalidations ride behind the write acknowledgements. A failed
        storage server does not skip invalidation: the caches must stop
        serving the old records regardless, so the error is captured,
        invalidation runs, and the caller re-raises after its own
        bookkeeping.
        """
        service = self.service
        assets = service.assets
        sizes = assets.record_sizes
        materialize = service.config.materialize_storage
        # Storage keys are *original* node ids (the key space load_graph
        # partitions on); cache keys are compact indices (what the gather
        # path probes with).
        items: List[Tuple[int, int, Optional[bytes]]] = []
        for node in sorted(dirty_ids):
            idx = assets.compact[node]
            payload = (
                record_for_node(assets.graph, node).encode()
                if materialize else None
            )
            items.append((node, int(sizes[idx]), payload))
        records, nbytes, write_error = yield from service.tier.multiput_process(
            items, network=service.config.costs.network
        )
        if service.tier.heat is not None:
            # Writes are accesses too: updated records heat up, so churny
            # regions become placement candidates like read-hot ones.
            service.tier.heat.touch(dirty_idx, service.env.now)
        invalidated = 0
        for processor in service.processors:
            if processor.use_cache:
                invalidated += processor.cache.invalidate_many(dirty_idx)
        return records, nbytes, invalidated, write_error

    # -- incremental routing refresh -----------------------------------------
    def _leaf_strategies(self) -> Iterable[RoutingStrategy]:
        strategy = self.service.strategy
        if isinstance(strategy, AdaptiveRouting):
            return strategy.arms.values()
        return (strategy,)

    def _routing_assets(self) -> Tuple[list, list]:
        """Every landmark index and embedding this service can route with.

        Covers the *active* strategy (and adaptive arms), the
        construction-time overrides, and the assets' memoized artifacts —
        a later ``set_routing`` hands out exactly these objects, so all
        of them must refresh before staleness may clear.
        """
        service = self.service
        indexes: list = []
        embeddings: list = []

        def add_index(index) -> None:
            if index is not None and all(index is not i for i in indexes):
                indexes.append(index)

        def add_embedding(embedding) -> None:
            if embedding is not None and all(
                embedding is not e for e in embeddings
            ):
                embeddings.append(embedding)

        for strategy in self._leaf_strategies():
            if isinstance(strategy, LandmarkRouting):
                add_index(strategy.index)
            elif isinstance(strategy, EmbedRouting):
                add_embedding(strategy.embedding)
        add_index(service._landmark_index_override)
        add_embedding(service._embedding_override)
        for index in service.assets._landmark_indexes.values():
            add_index(index)
        for embedding in service.assets._embeddings.values():
            add_embedding(embedding)
        return indexes, embeddings

    def refresh(self) -> int:
        """Re-index/re-embed only the stale region; clears the stale set.

        Landmark indexes refresh by neighbor relaxation
        (:meth:`~repro.landmarks.index.LandmarkIndex.refresh_nodes`);
        embeddings by neighbor-centroid placement
        (:meth:`~repro.embedding.embedder.GraphEmbedding.refresh_node`),
        in two passes so chains of new nodes resolve. Every index and
        embedding the service can route with — the active strategy's (and
        adaptive arms'), the construction-time overrides, and the assets'
        memoized artifacts a later ``set_routing`` would reuse — is
        refreshed together, so clearing the shared staleness set is sound
        for all of them. When no such artifact exists yet (e.g. a
        hash-only service whose smart preprocessing is still unbuilt),
        the staleness set is deliberately *kept*: nothing was refreshed,
        so nothing is fresh. Runs outside simulated time, like the
        preprocessing it incrementally patches (§4.1 starts experiments
        with preprocessing already done); the *routing* consequences of
        deferring it are what the staleness set models. Returns the
        number of stale nodes refreshed.
        """
        stale = sorted(self.stale)
        if not stale:
            self._since_refresh = 0  # fully fresh already
            return 0
        graph = self.service.assets.graph
        indexes, embeddings = self._routing_assets()
        if not indexes and not embeddings:
            return 0
        for index in indexes:
            index.refresh_nodes(graph, stale)
        present = [node for node in stale if node in graph]
        for embedding in embeddings:
            self._refresh_embedding(embedding, graph, present)
        self.stale.clear()
        self._since_refresh = 0
        self.refreshes += 1
        self.nodes_refreshed += len(stale)
        return len(stale)

    def _refresh_embedding(self, embedding, graph, stale: List[int]) -> None:
        """Re-place one embedding's stale nodes.

        Already-embedded nodes take one blend-damped relaxation step
        (``refresh_blend``; 0 keeps their coordinates). *Unplaced* nodes
        are placed from their embedded neighbors' centroid, deferring any
        node with no embedded neighbor yet to a second pass so chains of
        new nodes resolve in dependency order; only nodes still isolated
        after both passes fall back to the landmark centroid.
        """
        unplaced = []
        for node in stale:
            if embedding.knows(node):
                embedding.refresh_node(
                    node,
                    [
                        embedding.coordinates_of(neighbor)
                        for neighbor in graph.neighbors(node)
                    ],
                    blend=self.refresh_blend,
                )
            else:
                unplaced.append(node)
        for _sweep in range(2):
            if not unplaced:
                return
            deferred = []
            for node in unplaced:
                points = [
                    embedding.coordinates_of(neighbor)
                    for neighbor in graph.neighbors(node)
                ]
                if any(point is not None for point in points):
                    embedding.refresh_node(node, points)
                else:
                    deferred.append(node)
            unplaced = deferred
        for node in unplaced:
            embedding.refresh_node(node, [])  # landmark-centroid fallback

    # -- reporting -------------------------------------------------------------
    def _report(
        self,
        applied: int,
        added: int,
        records: int,
        nbytes: int,
        invalidated: int,
        refreshed: bool,
        elapsed: float,
    ) -> UpdateReport:
        return UpdateReport(
            updates_applied=applied,
            nodes_added=added,
            records_written=records,
            bytes_written=nbytes,
            cache_entries_invalidated=invalidated,
            stale_nodes=len(self.stale),
            refreshed=refreshed,
            elapsed_s=elapsed,
        )
