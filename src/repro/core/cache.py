"""Query-processor cache with byte capacity and pluggable eviction.

The paper uses LRU ("usually implemented as the default cache replacement
policy, and it favors recent queries", §2.3). FIFO and LFU are provided for
the eviction-policy ablation. The cache is an *accounting* cache: the
simulation tracks which adjacency records are resident and how many bytes
they occupy; values themselves are optional.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

POLICIES = ("lru", "fifo", "lfu")


@dataclass
class CacheStats:
    """Cumulative counters (Eq. 8/9 style hit/miss accounting)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # records too large to ever fit

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ProcessorCache:
    """Byte-bounded cache keyed by node id.

    ``capacity_bytes == 0`` models the paper's *no-cache* mode: every probe
    misses and nothing is admitted.
    """

    def __init__(self, capacity_bytes: int, policy: str = "lru") -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._bytes = 0
        # LFU bookkeeping: access counts plus a lazy min-heap of
        # (count, tick, key) snapshots; stale snapshots are skipped on pop.
        self._freq: Dict[Hashable, int] = {}
        self._heap: List[Tuple[int, int, Hashable]] = []
        self._tick = 0

    # -- probes ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __contains__(self, key: Hashable) -> bool:
        """Presence check without statistics or recency side effects."""
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Probe for ``key``; returns the stored value or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(key)
        return entry[1]

    def get_many(self, keys: Iterable[Hashable]) -> List[Hashable]:
        """Probe many keys; returns the list of *missed* keys, in order."""
        missed: List[Hashable] = []
        entries = self._entries
        for key in keys:
            if key in entries:
                self.stats.hits += 1
                self._touch(key)
            else:
                self.stats.misses += 1
                missed.append(key)
        return missed

    # -- admissions -------------------------------------------------------
    def put(self, key: Hashable, size: int, value: Any = True) -> None:
        """Admit ``key`` occupying ``size`` bytes, evicting as needed."""
        if size < 0:
            raise ValueError("size must be >= 0")
        if size > self.capacity_bytes:
            self.stats.rejected += 1
            return
        if key in self._entries:
            old_size, _ = self._entries[key]
            self._bytes -= old_size
            del self._entries[key]
        while self._bytes + size > self.capacity_bytes and self._entries:
            self._evict_one()
        self._entries[key] = (size, value)
        self._bytes += size
        self.stats.insertions += 1
        if self.policy == "lfu":
            self._freq[key] = self._freq.get(key, 0) + 1
            self._tick += 1
            heapq.heappush(self._heap, (self._freq[key], self._tick, key))

    def put_many(self, items: Iterable[Tuple[Hashable, int]]) -> None:
        for key, size in items:
            self.put(key, size)

    def clear(self) -> None:
        self._entries.clear()
        self._freq.clear()
        self._heap.clear()
        self._bytes = 0

    # -- internals ----------------------------------------------------------
    def _touch(self, key: Hashable) -> None:
        if self.policy == "lru":
            self._entries.move_to_end(key)
        elif self.policy == "lfu":
            self._freq[key] += 1
            self._tick += 1
            heapq.heappush(self._heap, (self._freq[key], self._tick, key))
        # FIFO: access order never changes.

    def _evict_one(self) -> None:
        if self.policy in ("lru", "fifo"):
            key, (size, _) = self._entries.popitem(last=False)
            self._bytes -= size
        else:  # lfu with lazy heap
            while True:
                count, _tick, key = heapq.heappop(self._heap)
                if key in self._entries and self._freq.get(key) == count:
                    size, _ = self._entries.pop(key)
                    self._bytes -= size
                    del self._freq[key]
                    break
        self.stats.evictions += 1
