"""Query-processor cache with byte capacity and pluggable eviction.

The paper uses LRU ("usually implemented as the default cache replacement
policy, and it favors recent queries", §2.3). FIFO and LFU are provided for
the eviction-policy ablation. The cache is an *accounting* cache: the
simulation tracks which adjacency records are resident and how many bytes
they occupy; values themselves are optional.

Hot-path design
---------------

``get_many``/``put_many`` accept ``int64`` ndarrays directly — the gather
path hands over the frontier array it already has, and gets the missed
keys back as an array, with exactly one C-level ``tolist()`` conversion in
between (plain ``int`` keys hash several times faster than numpy scalars).
Per-policy probe loops are specialised so the LRU case is a dict-membership
test plus a hoisted ``move_to_end`` per hit, with statistics updated once
per batch rather than once per key.

LFU keeps its classic lazy min-heap of ``(count, tick, key)`` snapshots,
but the hot *hit* path never touches the heap: a hit only updates the
``key -> (count, tick)`` table. A heap snapshot is valid iff it equals the
key's current ``(count, tick)``; eviction lazily re-pushes a fresh snapshot
whenever it pops a stale one for a still-resident key. Because stale
snapshots can never validate again, the heap can be *compacted* — rebuilt
from the live table — whenever stale entries dominate
(:data:`LFU_COMPACT_FACTOR`), which bounds heap growth under churn at
``O(len(cache))`` instead of ``O(total hits)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Union

import numpy as np

POLICIES = ("lru", "fifo", "lfu")

#: Compact the LFU heap once it exceeds this multiple of the live entries
#: (plus a small constant so tiny caches never bother).
LFU_COMPACT_FACTOR = 3
LFU_COMPACT_SLACK = 64


@dataclass
class CacheStats:
    """Cumulative counters (Eq. 8/9 style hit/miss accounting)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0  # records too large to ever fit
    invalidations: int = 0  # entries dropped because their record changed

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ProcessorCache:
    """Byte-bounded cache keyed by node id.

    ``capacity_bytes == 0`` models the paper's *no-cache* mode: every probe
    misses and nothing is admitted.
    """

    __slots__ = ("capacity_bytes", "policy", "stats", "_entries", "_bytes",
                 "_freq", "_heap", "_tick")

    def __init__(self, capacity_bytes: int, policy: str = "lru") -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._bytes = 0
        # LFU bookkeeping: key -> (access count, tick of last access) plus a
        # lazy min-heap of (count, tick, key) snapshots; a snapshot is valid
        # iff it matches the key's current (count, tick) exactly.
        self._freq: Dict[Hashable, Tuple[int, int]] = {}
        self._heap: List[Tuple[int, int, Hashable]] = []
        self._tick = 0

    # -- probes ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __contains__(self, key: Hashable) -> bool:
        """Presence check without statistics or recency side effects."""
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Probe for ``key``; returns the stored value or None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(key)
        return entry[1]

    def get_many(
        self, keys: Union[np.ndarray, Iterable[Hashable]]
    ) -> Union[np.ndarray, List[Hashable]]:
        """Probe many keys; returns the *missed* keys, in probe order.

        An ``int64`` ndarray input returns an ``int64`` ndarray of misses
        (the gather hot path); any other iterable returns a list, matching
        the input's key objects.

        Probe semantics are **per distinct key**: a key repeated within one
        batch counts one hit or one miss (first occurrence) and appears at
        most once in the missed output — a batch is one logical probe of
        its key set, and the repeat cannot have been fetched in between.
        Without this, duplicated frontier entries would inflate hit/miss
        statistics and trigger duplicate storage fetches downstream. The
        gather path always passes ``np.unique``-deduplicated (strictly
        increasing) frontiers, for which the duplicate check is one
        vectorised comparison.
        """
        array_in = isinstance(keys, np.ndarray)
        if array_in:
            key_list = keys.tolist()
            n = len(key_list)
            if n <= 1:
                unique = True
            elif n <= 64:
                # Small batches dominate the gather path; one C-level set
                # build beats numpy's fixed dispatch overhead there.
                unique = len(set(key_list)) == n
            else:
                # Large frontiers come from np.unique (strictly
                # increasing): one vectorised comparison confirms it.
                unique = bool((keys[1:] > keys[:-1]).all())
            if not unique:
                # Keep the first occurrence of each key, in probe order.
                seen = set()
                key_list = [
                    key for key in key_list
                    if key not in seen and not seen.add(key)
                ]
        else:
            key_list = []
            seen = set()
            for key in keys:
                if key not in seen:
                    seen.add(key)
                    key_list.append(key)
        entries = self._entries
        missed: List[Hashable] = []
        append = missed.append
        hits = 0
        policy = self.policy
        if policy == "lru":
            move = entries.move_to_end
            for key in key_list:
                if key in entries:
                    hits += 1
                    move(key)
                else:
                    append(key)
        elif policy == "fifo":
            for key in key_list:
                if key in entries:
                    hits += 1
                else:
                    append(key)
        else:  # lfu: bump (count, tick); the heap is untouched on hits
            freq = self._freq
            tick = self._tick
            for key in key_list:
                if key in entries:
                    hits += 1
                    tick += 1
                    freq[key] = (freq[key][0] + 1, tick)
                else:
                    append(key)
            self._tick = tick
        stats = self.stats
        stats.hits += hits
        stats.misses += len(missed)
        if array_in:
            return np.array(missed, dtype=np.int64)
        return missed

    # -- admissions -------------------------------------------------------
    def put(self, key: Hashable, size: int, value: Any = True) -> None:
        """Admit ``key`` occupying ``size`` bytes, evicting as needed."""
        if size < 0:
            raise ValueError("size must be >= 0")
        if size > self.capacity_bytes or self.capacity_bytes == 0:
            # The explicit zero-capacity check keeps the documented
            # no-cache contract for zero-size records too: with
            # capacity 0, ``size > capacity`` is false for ``size == 0``
            # and the record used to slip in.
            self.stats.rejected += 1
            return
        entries = self._entries
        if key in entries:
            old_size, _ = entries[key]
            self._bytes -= old_size
            del entries[key]
        while self._bytes + size > self.capacity_bytes and entries:
            self._evict_one()
        entries[key] = (size, value)
        self._bytes += size
        self.stats.insertions += 1
        if self.policy == "lfu":
            freq = self._freq
            entry = freq.get(key)
            count = 1 if entry is None else entry[0] + 1
            self._tick += 1
            tick = self._tick
            freq[key] = (count, tick)
            heappush(self._heap, (count, tick, key))
            self._maybe_compact()

    def put_many(
        self,
        items: Union[np.ndarray, Iterable[Tuple[Hashable, int]]],
        sizes: Optional[np.ndarray] = None,
    ) -> None:
        """Admit a batch.

        Either ``put_many(keys_array, sizes_array)`` with two aligned
        ndarrays (the gather hot path), or ``put_many(iterable_of_pairs)``.
        """
        put = self.put
        if sizes is not None:
            if not isinstance(items, np.ndarray) or not isinstance(
                sizes, np.ndarray
            ):
                raise ValueError(
                    "put_many with sizes= takes two aligned ndarrays: "
                    "put_many(keys_array, sizes_array); for Python "
                    "iterables use put_many(iterable_of_(key, size)_pairs)"
                )
            if len(items) != len(sizes):
                raise ValueError(
                    f"put_many keys/sizes length mismatch: {len(items)} "
                    f"keys vs {len(sizes)} sizes"
                )
            for key, size in zip(items.tolist(), sizes.tolist(), strict=True):
                put(key, size)
        else:
            if isinstance(items, np.ndarray):
                raise ValueError(
                    "put_many(keys_array) is missing its sizes array; call "
                    "either put_many(keys_array, sizes_array) with aligned "
                    "ndarrays or put_many(iterable_of_(key, size)_pairs)"
                )
            for key, size in items:
                put(key, size)

    # -- invalidation ------------------------------------------------------
    def invalidate_many(
        self, keys: Union[np.ndarray, Iterable[Hashable]]
    ) -> int:
        """Drop ``keys`` whose records changed (graph updates); returns the
        number of resident entries removed.

        Not an eviction (the entries aren't being displaced by capacity
        pressure) and not a miss (nothing probed) — invalidations get
        their own counter. Works for all policies; under LFU the
        frequency table entry is dropped too, so a later re-admission
        restarts the key's count, while any stale heap snapshots are
        skipped lazily at eviction time exactly like snapshots of evicted
        keys (and bounded by compaction).
        """
        key_list = keys.tolist() if isinstance(keys, np.ndarray) else keys
        entries = self._entries
        lfu = self.policy == "lfu"
        freq = self._freq
        removed = 0
        for key in key_list:
            entry = entries.pop(key, None)
            if entry is None:
                continue
            self._bytes -= entry[0]
            removed += 1
            if lfu:
                freq.pop(key, None)
        if removed:
            self.stats.invalidations += removed
            if lfu:
                self._maybe_compact()
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self._freq.clear()
        self._heap.clear()
        self._bytes = 0

    # -- internals ----------------------------------------------------------
    def _touch(self, key: Hashable) -> None:
        if self.policy == "lru":
            self._entries.move_to_end(key)
        elif self.policy == "lfu":
            self._tick += 1
            self._freq[key] = (self._freq[key][0] + 1, self._tick)
        # FIFO: access order never changes.

    def _evict_one(self) -> None:
        if self.policy in ("lru", "fifo"):
            key, (size, _) = self._entries.popitem(last=False)
            self._bytes -= size
        else:  # lfu with lazy heap
            entries = self._entries
            freq = self._freq
            heap = self._heap
            while True:
                count, tick, key = heappop(heap)
                current = freq.get(key)
                if current is None or key not in entries:
                    continue  # snapshot of an evicted key: drop it
                if current[0] == count and current[1] == tick:
                    size, _ = entries.pop(key)
                    self._bytes -= size
                    del freq[key]
                    break
                # Stale snapshot of a live key (it was hit since): lazily
                # restore its current snapshot so the key stays evictable.
                heappush(heap, (current[0], current[1], key))
        self.stats.evictions += 1

    def _maybe_compact(self) -> None:
        """Rebuild the LFU heap when stale snapshots dominate.

        Only current ``(count, tick)`` snapshots can ever validate, so a
        rebuild from the live table is semantics-preserving; it bounds the
        heap at ``O(len(cache))`` across arbitrarily long hit/evict cycles.
        """
        heap = self._heap
        if len(heap) > LFU_COMPACT_FACTOR * len(self._entries) + LFU_COMPACT_SLACK:
            self._heap = [
                (count, tick, key)
                for key, (count, tick) in self._freq.items()
            ]
            heapify(self._heap)
