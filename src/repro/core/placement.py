"""Dynamic placement: periodic hot-record migration and replication.

The storage-side primitives (``repro.storage.placement``) track decayed
per-record heat and hold the exception-only directory; this module is the
control loop that *uses* them. A :class:`PlacementManager` runs as a
periodic simulation process inside a live :class:`~repro.core.service.GraphService`:

1. every ``interval_s`` simulated seconds it snapshots decayed heats and
   plans a bounded batch of moves — the top-k records above
   ``heat_threshold``, within ``round_byte_budget`` copied bytes:

   * records above ``replicate_threshold`` are **replicated** up to
     ``replicas`` copies (read-any then splits their fetch load across
     the least-loaded servers, and survives a replica's server failing);
   * merely-hot records on an overloaded server are **migrated** to the
     least-loaded server (hysteresis: only when the current holder's
     recent load exceeds the target's by ``migrate_margin``);
   * records whose heat decayed below ``release_fraction`` of the
     threshold are **released** — extra copies dropped, migrated records
     copied back home first — so the directory stays a small set of
     true exceptions;

2. the copies are executed *in simulated time* through the same storage
   write pipelines queries fetch from (the PR 5 write path), so
   rebalancing traffic queues behind — and delays — live queries. That
   contention is the cost the fig_repartition ablation makes visible:
   an over-aggressive configuration churns records faster than the
   queries it helps;

3. the directory flips at the simulated instant a move's copies have all
   landed — reads routed before the flip still find the old copy (it is
   deleted only after the flip), reads after it see the new placement.

Everything is deterministic: heat is a pure function of served traffic,
the load proxy is served-request deltas, ties break by server id, and the
plan iterates in heat order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..storage.placement import (
    HeatTracker,
    PlacementDirectory,
    heat_by_server,
)
from ..storage.records import record_for_node
from ..storage.server import StorageServerDown

if TYPE_CHECKING:  # pragma: no cover
    from .service import GraphService


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs of the dynamic-placement control loop.

    Defaults suit the benchmark graphs' simulated time scale (query
    response times of tens of microseconds to milliseconds); the
    repartition benchmark derives ``interval_s`` / ``half_life_s`` from
    calibrated capacity so the loop means the same thing at smoke scale
    and full scale.
    """

    #: Planning cadence in simulated seconds.
    interval_s: float = 0.005
    #: Heat decay half-life in simulated seconds.
    half_life_s: float = 0.02
    #: Decayed heat at which a record becomes a migration candidate.
    heat_threshold: float = 3.0
    #: Decayed heat at which a record is worth replicating.
    replicate_threshold: float = 9.0
    #: Target copy count for records above ``replicate_threshold``.
    replicas: int = 2
    #: Hottest records considered per round.
    top_k: int = 64
    #: Copied bytes allowed per round (migration + replication + restore).
    round_byte_budget: int = 256 << 10
    #: A migration needs the holder's recent load to exceed the target's
    #: by this fraction — hysteresis against ping-ponging records.
    migrate_margin: float = 0.25
    #: Placements are released once heat falls below
    #: ``heat_threshold * release_fraction`` (0 disables release).
    release_fraction: float = 0.25


class _Move:
    """One planned placement change, executed as timed copies."""

    __slots__ = ("kind", "key", "cache_key", "home", "size", "targets",
                 "new_sids")

    def __init__(self, kind: str, key: int, cache_key: int, home: int,
                 size: int, targets: Tuple[int, ...],
                 new_sids: Tuple[int, ...]) -> None:
        self.kind = kind  # "migrate" | "replicate" | "restore" | "release"
        self.key = key
        self.cache_key = cache_key
        self.home = home
        self.size = size
        self.targets = targets  # replica set after the move
        self.new_sids = new_sids  # servers that need a fresh copy written


class PlacementManager:
    """Periodic planner/executor of hot-record migrations & replications."""

    def __init__(self, service: "GraphService", config: PlacementConfig) -> None:
        self.service = service
        self.config = config
        self.env = service.env
        self.tier = service.tier
        self.heat = HeatTracker(
            half_life_s=config.half_life_s, size=service.assets.num_nodes
        )
        self.directory = PlacementDirectory()
        self.tier.attach_placement(self.directory, self.heat)
        self._last_served = np.zeros(self.tier.num_servers, dtype=np.float64)
        self._process = None
        # Cumulative counters (itemized in WorkloadReport summaries).
        self.rounds = 0
        self.migrations = 0
        self.replications = 0
        self.releases = 0
        self.restores = 0
        self.failed_moves = 0
        self.migration_records = 0
        self.migration_bytes = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("placement manager already started")
        self._process = self.env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.config.interval_s)
            moves = self.plan()
            if moves:
                yield from self._execute(moves)
            self.rounds += 1

    # -- planning -------------------------------------------------------------
    def _served_delta(self) -> np.ndarray:
        """Requests served per server since the previous round — the load
        proxy migrations balance (deterministic, unlike instantaneous
        queue depths sampled at one instant)."""
        served = np.array(
            [s.requests_served + s.writes_served for s in self.tier.servers],
            dtype=np.float64,
        )
        delta = served - self._last_served
        self._last_served = served
        return delta

    def plan(self) -> List[_Move]:
        """One bounded round of moves, hottest records first.

        Plans against the *current* cluster epoch: departed (dead)
        servers are never chosen as replication/migration targets, and
        releases/restores whose hash home is down are deferred until it
        recovers — the replicas keep serving reads meanwhile. With every
        server alive the masking is a no-op and the plan is bit-identical
        to the static-topology one.
        """
        cfg = self.config
        now = self.env.now
        assets = self.service.assets
        owner_of = assets.owner_array(self.tier.num_servers)
        node_ids = assets.node_ids
        sizes = assets.record_sizes
        budget = cfg.round_byte_budget
        alive = [server.alive for server in self.tier.servers]
        load = self._served_delta()
        if not all(alive):
            # Dead servers are infinitely loaded: argmin/argsort below
            # never place a copy there, and a dead current holder always
            # clears the migrate hysteresis (move the record off it).
            load = np.where(np.asarray(alive), load, np.inf)
        moves: List[_Move] = []

        hot_idx, heats = self.heat.top_k(cfg.top_k, now, cfg.heat_threshold)
        for idx, heat in zip(hot_idx.tolist(), heats.tolist(), strict=True):
            if idx >= node_ids.shape[0]:
                continue  # heat array can outgrow a mid-update snapshot
            key = int(node_ids[idx])
            home = int(owner_of[idx])
            size = int(sizes[idx])
            entry = self.directory.by_key.get(key)
            current = entry.replicas if entry is not None else (home,)
            if heat >= cfg.replicate_threshold and len(current) < cfg.replicas:
                want = min(cfg.replicas, self.tier.num_servers) - len(current)
                order = np.argsort(load, kind="stable")
                new = tuple(
                    int(sid) for sid in order
                    if int(sid) not in current and alive[int(sid)]
                )[:want]
                if new and budget >= size * len(new):
                    budget -= size * len(new)
                    share = heat / (len(current) + len(new))
                    for sid in new:
                        load[sid] += share
                    moves.append(_Move(
                        "replicate", key, idx, home, size,
                        tuple(current) + new, new,
                    ))
            elif len(current) == 1:
                holder = current[0]
                best = int(np.argmin(load))
                if (
                    best != holder
                    and alive[best]
                    and budget >= size
                    and load[holder] > (1.0 + cfg.migrate_margin) * load[best]
                ):
                    budget -= size
                    load[best] += heat
                    load[holder] -= min(heat, load[holder])
                    moves.append(_Move(
                        "migrate", key, idx, home, size, (best,), (best,),
                    ))

        if cfg.release_fraction > 0 and self.directory:
            floor = cfg.heat_threshold * cfg.release_fraction
            planned = {m.key for m in moves}
            for entry in self.directory.entries():
                if entry.key in planned:
                    continue
                if self.heat.heat_of(entry.cache_key, now) >= floor:
                    continue
                if not alive[entry.home]:
                    # The hash home is down: dropping the entry would
                    # point reads at a dead server. Defer until recovery.
                    continue
                size = int(sizes[entry.cache_key])
                if entry.home in entry.replicas:
                    # Extra copies only: dropping them costs no write.
                    moves.append(_Move(
                        "release", entry.key, entry.cache_key, entry.home,
                        size, (entry.home,), (),
                    ))
                elif budget >= size:
                    # Migrated away: copy back home, then drop the entry.
                    budget -= size
                    moves.append(_Move(
                        "restore", entry.key, entry.cache_key, entry.home,
                        size, (entry.home,), (entry.home,),
                    ))
        return moves

    # -- execution ------------------------------------------------------------
    def _execute(self, moves: List[_Move]):
        """Write the moves' copies through the storage pipelines (timed),
        then flip the directory at the landing instant."""
        service = self.service
        materialize = service.config.materialize_storage
        network = service.config.costs.network
        graph = service.assets.graph

        legs: Dict[int, List[Tuple[int, Optional[bytes]]]] = {}
        leg_bytes: Dict[int, int] = {}
        for move in moves:
            if not move.new_sids:
                continue
            payload = (
                record_for_node(graph, move.key).encode()
                if materialize else None
            )
            for sid in move.new_sids:
                legs.setdefault(sid, []).append((move.key, payload))
                leg_bytes[sid] = leg_bytes.get(sid, 0) + move.size
        failed: set = set()
        pending = [
            (sid, self.env.process(self.tier._server_write_process(
                self.tier.servers[sid], entries, leg_bytes[sid], network,
            )))
            for sid, entries in legs.items()
        ]
        for sid, process in pending:
            try:
                yield process
            except StorageServerDown:
                failed.add(sid)

        # The copies that reached live servers have landed *now*; flip the
        # directory at this simulated instant and only then delete stale
        # copies, so no read ever routes to a server lacking the record.
        for move in moves:
            if any(sid in failed for sid in move.new_sids):
                self.failed_moves += 1
                continue
            copied = move.size * len(move.new_sids)
            self.migration_bytes += copied
            self.migration_records += len(move.new_sids)
            previous = self.tier.replica_sids(move.key)
            if move.kind in ("migrate", "replicate"):
                self.directory.place(
                    move.key, move.cache_key, move.home, move.targets
                )
                if move.kind == "migrate":
                    self.migrations += 1
                else:
                    self.replications += 1
            else:  # release / restore: back to the hash home
                self.directory.drop(move.key)
                if move.kind == "restore":
                    self.restores += 1
                else:
                    self.releases += 1
            if materialize:
                for sid in sorted(set(previous) - set(move.targets)):
                    store = self.tier.servers[sid].store
                    if move.key in store:
                        store.delete(move.key)

    # -- observability ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Snapshot of the placement subsystem for reports/artifacts."""
        return {
            "rounds": self.rounds,
            "migrations": self.migrations,
            "replications": self.replications,
            "releases": self.releases,
            "restores": self.restores,
            "failed_moves": self.failed_moves,
            "migration_records": self.migration_records,
            "migration_bytes": self.migration_bytes,
            "active_placements": len(self.directory),
            "replicated_keys": self.directory.replicated_keys(),
            "migrated_keys": self.directory.migrated_keys(),
            "heat_touches": self.heat.touches,
        }

    def top_heat_by_server(self, k: int = 5) -> List[List[Tuple[int, float]]]:
        """Top-k hottest records per server (see
        :func:`repro.storage.placement.heat_by_server`)."""
        assets = self.service.assets
        return heat_by_server(
            self.heat,
            self.directory,
            assets.owner_array(self.tier.num_servers),
            assets.node_ids,
            self.tier.num_servers,
            self.env.now,
            k=k,
        )
