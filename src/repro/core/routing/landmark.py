"""Landmark routing (§3.4.1).

The router holds the precomputed d(u, p) table (min distance from node u to
any landmark assigned to processor p) and routes to the processor with the
smallest load-balanced distance (Eq. 3). Nodes the index does not know
(e.g. added after preprocessing, before their incremental indexing) fall
back to hash routing.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...landmarks import LandmarkIndex
from ..queries import Query
from .base import (
    BASE_DECISION_TIME,
    PER_ENTRY_DECISION_TIME,
    RoutingStrategy,
)


class LandmarkRouting(RoutingStrategy):
    name = "landmark"

    def __init__(self, index: LandmarkIndex, load_factor: float = 20.0) -> None:
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        self.index = index
        self.load_factor = load_factor
        self.fallbacks = 0  # queries routed without landmark information

    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        distances = self.index.processor_distances(query.node)
        num_processors = len(loads)
        if distances is None or not np.isfinite(distances).any():
            self.fallbacks += 1
            return query.node % num_processors
        balanced = distances + np.asarray(loads, dtype=np.float64) / self.load_factor
        return int(np.argmin(balanced))

    def decision_time(self, num_processors: int) -> float:
        # O(P): scan the precomputed distance row once.
        return BASE_DECISION_TIME + PER_ENTRY_DECISION_TIME * num_processors
