"""Landmark routing (§3.4.1).

The router holds the precomputed d(u, p) table (min distance from node u to
any landmark assigned to processor p) and routes to the processor with the
smallest load-balanced distance (Eq. 3). Nodes the index does not know
(e.g. added after preprocessing, before their incremental indexing) fall
back to hash routing.

Multi-anchor queries average the per-anchor distance rows (over the
anchors the index knows per processor), so the batch lands on the
processor closest to the anchor set as a whole.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence

import numpy as np

from ...landmarks import LandmarkIndex
from ..operators.registry import routing_keys
from ..queries import Query
from .base import (
    BASE_DECISION_TIME,
    PER_ENTRY_DECISION_TIME,
    RoutingStrategy,
)


class LandmarkRouting(RoutingStrategy):
    name = "landmark"

    def __init__(
        self,
        index: LandmarkIndex,
        load_factor: float = 20.0,
        staleness: Optional[AbstractSet[int]] = None,
    ) -> None:
        """``staleness``, when given, is a live (usually shared) set of
        node ids whose index rows are currently stale — the graph changed
        under them since their distances were computed. Stale anchors fall
        back to hash routing until the update manager's incremental
        refresh clears the set; see :mod:`repro.core.updates`."""
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        self.index = index
        self.load_factor = load_factor
        self.staleness = staleness
        self.fallbacks = 0  # queries routed without landmark information
        # Elastic membership: None until the first membership change (the
        # static fast path); then a bool mask over processor ids. The
        # index is cloned before its groups are rebalanced, because the
        # assets-memoized instance may be shared across services.
        self._alive: Optional[np.ndarray] = None
        self._owns_index = False

    def _anchor_distances(self, keys: Sequence[int]) -> Optional[np.ndarray]:
        """Per-processor distance row for the anchor set, or None.

        One anchor keeps its row untouched (the classic single-node path);
        several are combined entry-wise as the mean over the anchors whose
        row is finite there, with ``inf`` where no anchor has coverage.
        Stale anchors (see ``staleness``) contribute nothing.
        """
        stale = self.staleness
        rows = []
        for key in keys:
            if stale and key in stale:
                continue
            distances = self.index.processor_distances(key)
            if distances is not None and np.isfinite(distances).any():
                rows.append(distances)
        if not rows:
            return None
        if len(rows) == 1:
            return rows[0]
        stacked = np.stack(rows)
        finite = np.isfinite(stacked)
        counts = finite.sum(axis=0)
        sums = np.where(finite, stacked, 0.0).sum(axis=0)
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.inf)

    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        keys = routing_keys(query)
        distances = self._anchor_distances(keys)
        num_processors = len(loads)
        if distances is None:
            self.fallbacks += 1
            return keys[0] % num_processors
        balanced = distances + np.asarray(loads, dtype=np.float64) / self.load_factor
        if self._alive is not None:
            balanced = np.where(self._alive[: len(balanced)], balanced, np.inf)
            if not np.isfinite(balanced).any():
                # Every alive processor is infinitely far (its landmarks
                # all live on dead processors' groups — transient between
                # membership change and rebalance): hash fallback.
                self.fallbacks += 1
                return keys[0] % num_processors
        return int(np.argmin(balanced))

    def decision_time(self, num_processors: int) -> float:
        # O(P): scan the precomputed distance row once.
        return BASE_DECISION_TIME + PER_ENTRY_DECISION_TIME * num_processors

    def on_membership_change(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """Rebalance the landmark groups (bounded movement) + mask dead.

        The index is cloned on the first change so the assets-memoized
        instance shared by other services stays static.
        """
        if not self._owns_index:
            self.index = self.index.clone()
            self._owns_index = True
        moved = self.index.reassign_processors(num_processors, alive)
        self._alive = np.asarray(alive, dtype=bool)
        return moved
