"""Next-Ready routing (§3.3.1): dispatch to whichever processor frees first.

The strategy never names a processor; queries sit in the router's shared
pool and are pulled by processors as they acknowledge — trivially balanced,
zero preprocessing, but cache-oblivious.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..queries import Query
from .base import BASE_DECISION_TIME, RoutingStrategy


class NextReadyRouting(RoutingStrategy):
    name = "next_ready"

    def choose(self, _query: Query, _loads: Sequence[int]) -> Optional[int]:
        return None

    def decision_time(self, _num_processors: int) -> float:
        return BASE_DECISION_TIME
