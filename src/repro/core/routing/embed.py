"""Embed routing (§3.4.2).

The router holds every node's coordinates plus one exponential moving
average per processor summarising the queries it has sent there (Eq. 5).
A query goes to the processor whose EMA point is closest to the query
node's coordinates, with the Eq. 7 load-balanced distance. The EMA adapts
to workload shifts on its own, which is what lets embed routing "bypass
the expensive graph partitioning and re-partitioning problems".

Multi-anchor queries route by the centroid of their anchors' embedding
coordinates — the batch goes to the processor whose traffic has centred
on that region — and the same centroid feeds the EMA on dispatch.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence

import numpy as np

from ...embedding import GraphEmbedding, ProcessorEMATracker
from ..operators.registry import routing_keys
from ..queries import Query
from .base import (
    BASE_DECISION_TIME,
    PER_ENTRY_DECISION_TIME,
    RoutingStrategy,
)


class EmbedRouting(RoutingStrategy):
    name = "embed"

    def __init__(
        self,
        embedding: GraphEmbedding,
        num_processors: int,
        alpha: float = 0.5,
        load_factor: float = 20.0,
        seed: int = 0,
        staleness: Optional[AbstractSet[int]] = None,
    ) -> None:
        """``staleness``, when given, is a live (usually shared) set of
        node ids whose coordinates are currently stale — nodes the graph
        changed under since they were (re-)embedded. Stale anchors are
        treated exactly like unembedded ones (hash fallback) until the
        update manager's incremental refresh clears the set; see
        :mod:`repro.core.updates`."""
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        self.embedding = embedding
        self.load_factor = load_factor
        self.num_processors = num_processors
        self.tracker = ProcessorEMATracker.for_embedding(
            embedding.coords, num_processors, alpha=alpha, seed=seed
        )
        self.staleness = staleness
        self.fallbacks = 0
        # Elastic membership: None until the first membership change.
        self._alive: Optional[np.ndarray] = None

    def _anchor_point(self, keys: Sequence[int]) -> Optional[np.ndarray]:
        """Embedding point for the anchor set: coords, or their centroid.

        Stale anchors contribute nothing — their coordinates predate the
        graph change, and routing on them would confidently send the query
        to where the node's neighborhood *used* to be."""
        stale = self.staleness
        points = []
        for key in keys:
            if stale and key in stale:
                continue
            coords = self.embedding.coordinates_of(key)
            if coords is not None:
                points.append(coords)
        if not points:
            return None
        if len(points) == 1:
            return points[0]
        return np.mean(np.stack(points), axis=0)

    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        keys = routing_keys(query)
        coords = self._anchor_point(keys)
        if coords is None:
            self.fallbacks += 1
            return keys[0] % self.num_processors
        distances = self.tracker.distances(coords)
        balanced = distances + np.asarray(loads, dtype=np.float64) / self.load_factor
        if self._alive is not None:
            balanced = np.where(self._alive[: len(balanced)], balanced, np.inf)
            if not np.isfinite(balanced).any():
                self.fallbacks += 1
                return keys[0] % self.num_processors
        return int(np.argmin(balanced))

    def on_dispatch(self, query: Query, processor: int) -> None:
        """Fold the routed query's coordinates into the processor's EMA."""
        coords = self._anchor_point(routing_keys(query))
        if coords is not None:
            self.tracker.update(processor, coords)

    def decision_time(self, num_processors: int) -> float:
        # O(P * D): distance from the query point to every processor mean.
        return BASE_DECISION_TIME + (
            PER_ENTRY_DECISION_TIME * num_processors * self.embedding.dim
        )

    def on_membership_change(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """Grow the EMA tracker for joiners and mask departed processors.

        No keys move: embed routing has no ownership table — assignments
        follow the per-processor means, and a joiner's centroid-seeded
        mean (see :meth:`ProcessorEMATracker.add_processor`) starts
        attracting traffic immediately, while Eq. 7's load term keeps the
        shift gradual.
        """
        while self.tracker.num_processors < num_processors:
            self.tracker.add_processor()
        self.num_processors = num_processors
        self._alive = np.asarray(alive, dtype=bool)
        return 0
