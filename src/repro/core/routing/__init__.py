"""Routing strategies: two baselines (§3.3), two smart schemes (§3.4), and
the adaptive meta-strategy that switches between them online."""

from .adaptive import DEFAULT_PRIORS, AdaptiveRouting
from .base import RoutingFeedback, RoutingStrategy
from .embed import EmbedRouting
from .hashing import HashRouting
from .landmark import LandmarkRouting
from .next_ready import NextReadyRouting

__all__ = [
    "AdaptiveRouting",
    "DEFAULT_PRIORS",
    "EmbedRouting",
    "HashRouting",
    "LandmarkRouting",
    "NextReadyRouting",
    "RoutingFeedback",
    "RoutingStrategy",
]
