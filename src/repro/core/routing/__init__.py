"""Routing strategies: two baselines (§3.3) and two smart schemes (§3.4)."""

from .base import RoutingStrategy
from .embed import EmbedRouting
from .hashing import HashRouting
from .landmark import LandmarkRouting
from .next_ready import NextReadyRouting

__all__ = [
    "EmbedRouting",
    "HashRouting",
    "LandmarkRouting",
    "NextReadyRouting",
    "RoutingStrategy",
]
