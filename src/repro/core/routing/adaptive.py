"""Adaptive routing: learn the best routing scheme online, per query class.

The paper picks one routing scheme per run, yet its own sensitivity studies
(Fig. 9/14) show the best scheme depends on cache capacity, hotspot radius
and workload mix. :class:`AdaptiveRouting` wraps the static strategies as
*arms* and learns which to use from the
:class:`~repro.core.routing.base.RoutingFeedback` stream the router pushes
back on every acknowledgement.

A subtlety shapes the design: a routing scheme's benefit is *collective*.
One landmark-routed probe inside an embed-routed stream lands on caches
organised by embed and measures nothing useful. So instead of a per-query
bandit, arms are evaluated in **audition epochs** — contiguous spans where
every query routes through one arm, so the measurements include the arm's
own cache organisation. Epochs run in palindromic order (caches warm
monotonically; a fixed order would flatter whichever arm ran last), and
the strategy then **commits** per query class to the arm with the best
score, sticky until the next audition.

The ranking score is the per-query **cache miss ratio** (misses over
records touched), not raw latency: response times vary by orders of
magnitude with result-set size, while the miss ratio is size-normalised
and is precisely the thing a routing choice controls. Repeat-dominated
classes (e.g. zipfian walks) rank by the miss ratio over *repeat* queries
only — stable placement turning repeats into hits is their whole game.
A class deviates from the cluster-wide best arm only on a clear margin,
because cache organisation is collective.

The feedback signals keep the commitment honest:

* **per-query-class latency EWMAs** — drift detection: a committed arm
  whose fast EWMA rises well above its slow baseline triggers re-audition;
* **cache hit rates** — a per-class collapse from the committed-phase peak
  means the workload moved (e.g. a hotspot shifted): fresh audition;
* **queue depths** — sustained imbalance boosts the epsilon-greedy probe
  rate, as does a still-warming cache.

Between auditions, decaying epsilon-greedy probes route the occasional
query through the runner-up or stalest arm so estimates stay fresh as
caches warm and the next audition starts informed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..operators.registry import routing_keys
from ..queries import Query, query_class
from .base import BASE_DECISION_TIME, RoutingFeedback, RoutingStrategy

#: Traffic-light tier: the arm a query class uses before any feedback.
DEFAULT_PRIORS: Mapping[str, str] = {
    "point": "hash",
    "walk": "hash",
    "traversal": "embed",
}


class AdaptiveRouting(RoutingStrategy):
    """Audition-then-commit arm selection with per-class epsilon probes."""

    name = "adaptive"

    def __init__(
        self,
        arms: Mapping[str, RoutingStrategy],
        priors: Optional[Mapping[str, str]] = None,
        epoch: int = 32,
        audition_rounds: int = 2,
        audition_delay: int = 0,
        epsilon: float = 0.1,
        epsilon_decay: float = 0.05,
        epsilon_min: float = 0.02,
        switch_margin: float = 0.1,
        drift_threshold: float = 1.5,
        drift_patience: int = 16,
        hit_rate_drop: float = 0.25,
        min_drift_samples: int = 48,
        feedback_alpha: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not arms:
            raise ValueError("adaptive routing needs at least one arm")
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if audition_rounds < 0:
            raise ValueError("audition_rounds must be >= 0")
        if audition_delay < 0:
            raise ValueError("audition_delay must be >= 0")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if epsilon_decay < 0:
            raise ValueError("epsilon_decay must be >= 0")
        if not 0.0 <= epsilon_min <= 1.0:
            raise ValueError("epsilon_min must be in [0, 1]")
        if not 0.0 <= switch_margin < 1.0:
            raise ValueError("switch_margin must be in [0, 1)")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if drift_patience < 1:
            raise ValueError("drift_patience must be >= 1")
        if not 0.0 < feedback_alpha <= 1.0:
            raise ValueError("feedback_alpha must be in (0, 1]")
        self.arms: Dict[str, RoutingStrategy] = dict(arms)
        self._arm_names = tuple(self.arms)
        self.priors = dict(DEFAULT_PRIORS if priors is None else priors)
        self.epoch = epoch
        self.audition_rounds = audition_rounds
        self.audition_delay = audition_delay
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.switch_margin = switch_margin
        self.drift_threshold = drift_threshold
        self.drift_patience = drift_patience
        self.hit_rate_drop = hit_rate_drop
        self.min_drift_samples = min_drift_samples
        self.feedback_alpha = feedback_alpha
        self._rng = np.random.default_rng(seed)
        # Audition scheduling: each queued arm gets one epoch of all traffic.
        self._audition_queue: Deque[str] = deque()
        self._current_audition: Optional[str] = None
        self._epoch_pos = 0
        self._decisions = 0
        self.auditions = 0
        # The initial audition is deferred by ``audition_delay`` decisions:
        # the traffic-light priors route the coldest stretch (where every
        # arm misses everything and measurements are least informative),
        # then the arms audition on a cluster warm enough to tell apart.
        self._audition_scheduled = (
            len(self._arm_names) <= 1 or audition_rounds == 0
        )
        if not self._audition_scheduled and audition_delay == 0:
            self._schedule_audition(self.audition_rounds)
            self._audition_scheduled = True
        # Per-(class, arm) latency EWMAs (drift detection, diagnostics),
        # miss-ratio EWMAs (the arm-ranking score), completed pulls, and
        # assignment counts (assignments include in-flight queries; they
        # drive the stale-arm probe choice). Raw latency is far too noisy
        # to rank arms — a traversal's response varies by orders of
        # magnitude with its result-set size — while the per-query miss
        # ratio is size-normalised and is precisely the thing a routing
        # choice controls.
        self._latency_ewma: Dict[Tuple[str, str], float] = {}
        self._score_ewma: Dict[Tuple[str, str], float] = {}
        # Repeat-miss scores: the miss ratio over *repeat* queries only.
        # Deterministic placement (hash) turns repeats into hits; arms
        # whose choice drifts with load or EMAs scatter them. For
        # repeat-dominated classes this is the ranking signal.
        self._repeat_ewma: Dict[Tuple[str, str], float] = {}
        self._pulls: Dict[Tuple[str, str], int] = {}
        self._assigned: Dict[Tuple[str, str], int] = {}
        # Audition accumulators: plain per-(class, arm) sums/counts of the
        # miss-ratio score. The palindromic epoch order makes their *means*
        # warmth-fair, so the commit decision seeds the score EWMAs from
        # them (a recency-weighted EWMA would flatter whichever arm
        # happened to run last).
        self._audition_sum: Dict[Tuple[str, str], float] = {}
        self._audition_cnt: Dict[Tuple[str, str], float] = {}
        self._audition_repeat_sum: Dict[Tuple[str, str], float] = {}
        self._audition_repeat_cnt: Dict[Tuple[str, str], float] = {}
        self._commit_seeded = False
        # Per-class repeat tracking: the fraction of queries whose node was
        # queried before. Unlike cache measurements it is a pure workload
        # property — immune to which arm currently organises the caches —
        # and high repeat rates are exactly where deterministic placement
        # (hash routing's repeat locality, §3.3.2) pays.
        self._class_nodes: Dict[str, set] = {}
        self._class_queries: Dict[str, int] = {}
        self._class_repeats: Dict[str, int] = {}
        # Committed-phase bookkeeping.
        self._class_decisions: Dict[str, int] = {}
        self._last_choice: Dict[str, str] = {}
        self._last_greedy: Dict[str, str] = {}
        self._previous_commit: Dict[str, str] = {}
        self.switches: Dict[str, int] = {}
        self.explorations = 0
        # Drift detection: per-class [fast EWMA, slow EWMA, samples,
        # consecutive exceedances] of the committed arm's latency.
        self._drift: Dict[str, List[float]] = {}
        # Cluster-state EWMAs fed by RoutingFeedback. Hit-ratio warmth is
        # tracked per class: the pooled ratio swings with the workload
        # *composition* (a hotspot streak vs a stretch of uniform point
        # lookups), which would read as phantom drift.
        self._hit_rate_ewma = 0.0
        self._class_hit: Dict[str, List[float]] = {}  # cls -> [ewma, peak, n]
        self._imbalance_ewma = 1.0
        self._feedback_seen = 0
        self._committed_feedback = 0
        # In-flight bookkeeping:
        # query id -> (class, arm name, in_audition, is_repeat).
        self._assignments: Dict[int, Tuple[str, str, bool, bool]] = {}
        self._last_arm: Optional[RoutingStrategy] = None

    # -- audition scheduling --------------------------------------------------
    @property
    def mode(self) -> str:
        """``"audition"`` while an arm owns all traffic, else ``"committed"``."""
        if self._current_audition is not None or self._audition_queue:
            return "audition"
        return "committed"

    def _schedule_audition(self, rounds: int = 1) -> None:
        # Palindromic order (A B C, C B A, ...): caches warm monotonically
        # during audition, so a fixed order would flatter whichever arm runs
        # last. Alternating direction gives every arm the same mean epoch
        # position across rounds.
        for round_index in range(rounds):
            order = self._arm_names
            if round_index % 2 == 1:
                order = tuple(reversed(order))
            self._audition_queue.extend(order)
        self.auditions += 1

    def _arm_pulls(self, arm: str) -> int:
        return sum(
            count for (_, a), count in self._pulls.items() if a == arm
        )

    def _advance_epoch(self) -> None:
        self._epoch_pos += 1
        if self._epoch_pos < self.epoch:
            return
        self._epoch_pos = 0
        if self._audition_queue:
            self._current_audition = self._audition_queue.popleft()
            return
        if self._current_audition is not None:
            # The router pipelines submission, so feedback trails decisions
            # by up to the in-flight window: an arm may have owned an epoch
            # whose acks mostly haven't arrived yet. Leaving audition now
            # would commit on partial (or pure-prior) data — extend the
            # audition with the least-measured arm until every arm has
            # enough completed pulls to compare.
            starved = min(self._arm_names, key=self._arm_pulls)
            if self._arm_pulls(starved) < max(1, self.epoch // 2):
                self._current_audition = starved
                return
            self._current_audition = None
            self._seed_commit()

    def _seed_commit(self) -> None:
        """Seed the score EWMAs from the audition means (warmth-fair)."""
        if self._commit_seeded:
            return
        for key, count in self._audition_cnt.items():
            if count > 0:
                self._score_ewma[key] = self._audition_sum[key] / count
        for key, count in self._audition_repeat_cnt.items():
            if count > 0:
                self._repeat_ewma[key] = (
                    self._audition_repeat_sum[key] / count
                )
        self._commit_seeded = True
        # A fresh generation: every class re-decides from the new audition
        # data at its next decision (sticky thereafter).
        self._previous_commit = dict(self._last_greedy)
        self._last_greedy.clear()
        # Warmth baselines only mean something once commitment starts: the
        # EWMAs fluctuate wildly while caches are cold, and a "drop" from a
        # lucky early peak is not workload drift.
        for entry in self._class_hit.values():
            entry[1] = entry[0]
            entry[2] = 0.0
        self._committed_feedback = 0

    def trigger_audition(self) -> None:
        """Re-audition every arm (drift detected or forced externally)."""
        if self._current_audition is not None or self._audition_queue:
            return
        self._schedule_audition(1)
        self._drift.clear()
        # Fresh accumulators: the post-drift world gets measured anew.
        self._audition_sum.clear()
        self._audition_cnt.clear()
        self._audition_repeat_sum.clear()
        self._audition_repeat_cnt.clear()
        self._commit_seeded = False

    # -- choice ---------------------------------------------------------------
    def exploration_rate(self, cls: str) -> float:
        """Current probe rate for ``cls``: decayed, boosted while unsettled."""
        decisions = self._class_decisions.get(cls, 0)
        decayed = max(
            self.epsilon_min,
            self.epsilon / (1.0 + self.epsilon_decay * decisions),
        )
        cold_boost = 0.5 * (1.0 - self._hit_rate_ewma)
        skew_boost = 0.25 * min(1.0, max(0.0, self._imbalance_ewma - 1.0))
        return min(1.0, decayed * (1.0 + cold_boost + skew_boost))

    def _global_best_arm(self) -> Optional[str]:
        """Arm with the lowest mean score across all measured classes.

        Cache organisation is *collective*: classes sharing one locality
        policy reinforce each other's warmth. So the per-class choice
        defaults to the globally best arm and deviates only on clear
        evidence (see :meth:`_greedy_arm`).
        """
        # Sorted, not set order: class names are strings, so set order
        # varies with hash randomization across processes — and float
        # summation order is result-visible in the arm means.
        classes = sorted({cls for cls, _ in self._score_ewma})
        means = {}
        for arm in self._arm_names:
            scores = [
                self._score_ewma[(cls, arm)]
                for cls in classes
                if (cls, arm) in self._score_ewma
            ]
            if len(scores) == len(classes) and scores:
                means[arm] = sum(scores) / len(scores)
        if not means:
            return None
        return min(means, key=means.__getitem__)

    def _class_scores(self, cls: str) -> Dict[str, float]:
        """Per-arm ranking scores for one class.

        Repeat-dominated classes rank by the *repeat* miss ratio: the whole
        game for them is whether placement is stable enough that a repeat
        finds its record cached, and the overall ratio (diluted by
        first-visit compulsory misses) hides exactly that.
        """
        scores = self._score_ewma
        if self.repeat_ratio(cls) > 0.5:
            repeat = {
                arm: self._repeat_ewma[(cls, arm)]
                for arm in self._arm_names
                if (cls, arm) in self._repeat_ewma
            }
            if len(repeat) == len(self._arm_names):
                return repeat
        return {
            arm: scores[(cls, arm)]
            for arm in self._arm_names
            if (cls, arm) in scores
        }

    def _greedy_arm(self, cls: str) -> str:
        # Sticky commit: the choice is made once per audition generation,
        # from the palindromic audition means. In-mixture probe updates are
        # too contaminated to overturn it query-by-query (a probe measures
        # an arm under *another* arm's cache organisation); corrections go
        # through drift detection → re-audition instead.
        committed = self._last_greedy.get(cls)
        if committed is not None:
            return committed
        tried = self._class_scores(cls)
        prior = self.priors.get(cls)
        if not tried:
            # The traffic-light tier: trust the prior until there is data.
            return prior if prior in self.arms else self._arm_names[0]
        best = min(tried, key=tried.__getitem__)
        # Anchor arm: the cluster-wide best, which a class deviates from
        # only when it clearly wins by it — cache organisation is
        # collective, and splitting off must earn its keep. Margins are
        # relative for meaningful scores, absolute for near-zero ones
        # (warm caches: every arm hits everywhere).
        anchor = self._global_best_arm()
        if anchor is not None and anchor in tried and best != anchor:
            gap = tried[anchor] - tried[best]
            if gap < max(self.switch_margin * tried[anchor], 0.05):
                best = anchor
        previous = self._previous_commit.get(cls)
        if previous is not None and previous in tried and best != previous:
            gap = tried[previous] - tried[best]
            # Hysteresis across generations: don't churn the cache
            # organisation for a win within the noise margin.
            if gap < max(self.switch_margin * tried[previous], 0.05):
                best = previous
        if previous is not None and previous != best:
            self.switches[cls] = self.switches.get(cls, 0) + 1
            self._drift.pop(cls, None)  # new arm, fresh drift baseline
        self._last_greedy[cls] = best
        return best

    def _probe_arm(self, cls: str) -> str:
        """Epsilon-probe target: alternate runner-up and stalest arm.

        Probing the runner-up (second-lowest EWMA) is nearly free — it is
        close to optimal by construction — and accelerates correction when
        the commitment is wrong; probing the stalest arm keeps every
        estimate fresh as caches warm and the workload drifts.
        """
        committed = self._last_greedy.get(cls)
        tried = {
            arm: self._score_ewma[(cls, arm)]
            for arm in self._arm_names
            if (cls, arm) in self._score_ewma and arm != committed
        }
        if tried and self.explorations % 4 != 0:
            return min(tried, key=tried.__getitem__)
        return min(
            self._arm_names,
            key=lambda arm: self._assigned.get((cls, arm), 0),
        )

    def _pick_arm(self, cls: str) -> Tuple[str, bool]:
        self._decisions += 1
        if (
            not self._audition_scheduled
            and self._decisions > self.audition_delay
        ):
            self._schedule_audition(self.audition_rounds)
            self._audition_scheduled = True
        if self._current_audition is None and self._audition_queue:
            # First decision of a scheduled audition round.
            self._current_audition = self._audition_queue.popleft()
            self._epoch_pos = 0
        in_audition = self._current_audition is not None
        if in_audition:
            pick = self._current_audition
        elif len(self._arm_names) > 1 and (
            float(self._rng.random()) < self.exploration_rate(cls)
        ):
            self.explorations += 1
            pick = self._probe_arm(cls)
        else:
            pick = self._greedy_arm(cls)
        self._last_choice[cls] = pick
        self._class_decisions[cls] = self._class_decisions.get(cls, 0) + 1
        self._assigned[(cls, pick)] = self._assigned.get((cls, pick), 0) + 1
        self._advance_epoch()
        return pick, in_audition

    def repeat_ratio(self, cls: str) -> float:
        """Fraction of this class's queries re-visiting an earlier node."""
        total = self._class_queries.get(cls, 0)
        return self._class_repeats.get(cls, 0) / total if total else 0.0

    def _track_repeats(self, cls: str, node: int) -> bool:
        seen = self._class_nodes.setdefault(cls, set())
        self._class_queries[cls] = self._class_queries.get(cls, 0) + 1
        if node in seen:
            self._class_repeats[cls] = self._class_repeats.get(cls, 0) + 1
            return True
        seen.add(node)
        return False

    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        # Both the class and the repeat signal resolve through the operator
        # registry: the class feeds the per-class arms, and repeats are
        # tracked on the primary anchor (multi-anchor queries re-visiting
        # their lead anchor are repeats for placement purposes too).
        cls = query_class(query)
        is_repeat = self._track_repeats(cls, routing_keys(query)[0])
        arm_name, in_audition = self._pick_arm(cls)
        self._assignments[query.query_id] = (
            cls, arm_name, in_audition, is_repeat,
        )
        arm = self.arms[arm_name]
        self._last_arm = arm
        return arm.choose(query, loads)

    def on_membership_change(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """Forward the topology change to every arm; learned state survives.

        The per-(class, arm) score/latency EWMAs, pull counts, commitment
        and audition schedule are all keyed by arm *name*, not processor
        id, so none of it resets — the bandit keeps its ranking while each
        arm rebalances its own table. Returns the total entries moved
        across arms.
        """
        return sum(
            self.arms[name].on_membership_change(num_processors, alive)
            for name in self._arm_names
        )

    # -- hooks ----------------------------------------------------------------
    def on_dispatch(self, query: Query, processor: int) -> None:
        # Every arm's internal model (e.g. the embed EMA tracker) follows the
        # full dispatch stream, not just the queries that arm routed — the
        # processor caches it models are warmed by all of them.
        for arm in self.arms.values():
            arm.on_dispatch(query, processor)

    def _update_cluster_signals(
        self, feedback: RoutingFeedback, cls: Optional[str]
    ) -> None:
        alpha = self.feedback_alpha
        self._feedback_seen += 1
        # Cache warmth: slow EWMAs of the per-query hit ratio — one global
        # (modulates exploration), one per class (drift detection; the
        # pooled ratio swings with workload composition, so only the
        # per-class series is compared against its peak).
        touched = feedback.cache_hits + feedback.cache_misses
        if touched:
            hit_ratio = feedback.cache_hits / touched
            if self._feedback_seen == 1:
                self._hit_rate_ewma = hit_ratio
            else:
                self._hit_rate_ewma += (alpha / 8.0) * (
                    hit_ratio - self._hit_rate_ewma
                )
            if cls is not None:
                entry = self._class_hit.get(cls)
                if entry is None:
                    self._class_hit[cls] = [hit_ratio, hit_ratio, 1.0]
                else:
                    entry[0] += (alpha / 8.0) * (hit_ratio - entry[0])
                    entry[1] = max(entry[1], entry[0])
                    entry[2] += 1.0
        loads = feedback.loads
        if loads:
            mean_load = sum(loads) / len(loads)
            imbalance = max(loads) / mean_load if mean_load > 0 else 1.0
            self._imbalance_ewma += alpha * (imbalance - self._imbalance_ewma)

    def _update_drift(self, cls: str, arm: str, latency: float) -> None:
        """Track the committed arm's fast vs slow latency EWMAs per class."""
        if self.mode != "committed" or self._last_greedy.get(cls) != arm:
            return
        fast_alpha = self.feedback_alpha
        slow_alpha = self.feedback_alpha / 8.0
        entry = self._drift.get(cls)
        if entry is None:
            self._drift[cls] = [latency, latency, 1.0, 0.0]
            return
        entry[0] += fast_alpha * (latency - entry[0])
        entry[1] += slow_alpha * (latency - entry[1])
        entry[2] += 1.0
        exceeded = entry[0] > entry[1] * (1.0 + self.drift_threshold)
        # Individual queries are wildly variable (result-set sizes differ by
        # orders of magnitude), so a single exceedance means nothing; only a
        # sustained streak marks genuine drift.
        entry[3] = entry[3] + 1.0 if exceeded else 0.0
        if entry[2] >= self.min_drift_samples and entry[3] >= self.drift_patience:
            self.trigger_audition()

    def on_feedback(self, feedback: RoutingFeedback) -> None:
        info = self._assignments.pop(feedback.query.query_id, None)
        self._update_cluster_signals(feedback, info[0] if info else None)
        if info is not None:
            self._update_scores(feedback, *info)
        if self.mode == "committed":
            self._committed_feedback += 1
            if self._committed_feedback >= self.min_drift_samples and any(
                entry[2] >= self.min_drift_samples
                and entry[1] - entry[0] > self.hit_rate_drop
                for entry in self._class_hit.values()
            ):
                # A query class lost its cache warmth: the workload moved.
                self.trigger_audition()
        for arm_strategy in self.arms.values():
            arm_strategy.on_feedback(feedback)

    def _update_scores(
        self,
        feedback: RoutingFeedback,
        cls: str,
        arm: str,
        in_audition: bool,
        is_repeat: bool,
    ) -> None:
        key = (cls, arm)
        touched = feedback.cache_hits + feedback.cache_misses
        score = feedback.cache_misses / touched if touched else None
        if score is not None:
            # Confidence weight: a 2-record walk says far less about an
            # arm's cache organisation than a 300-record traversal.
            weight = min(1.0, touched / 16.0)
            if in_audition and not self._commit_seeded:
                # Audition scores accumulate into plain (weighted) means;
                # the EWMAs are seeded from them when the audition
                # concludes.
                self._audition_sum[key] = (
                    self._audition_sum.get(key, 0.0) + score * weight
                )
                self._audition_cnt[key] = (
                    self._audition_cnt.get(key, 0.0) + weight
                )
                if is_repeat:
                    self._audition_repeat_sum[key] = (
                        self._audition_repeat_sum.get(key, 0.0) + score
                    )
                    self._audition_repeat_cnt[key] = (
                        self._audition_repeat_cnt.get(key, 0.0) + 1.0
                    )
            else:
                previous = self._score_ewma.get(key)
                if previous is None:
                    self._score_ewma[key] = score
                else:
                    self._score_ewma[key] = previous + (
                        self.feedback_alpha * weight * (score - previous)
                    )
                if is_repeat:
                    previous = self._repeat_ewma.get(key)
                    if previous is None:
                        self._repeat_ewma[key] = score
                    else:
                        self._repeat_ewma[key] = previous + (
                            self.feedback_alpha * (score - previous)
                        )
        previous = self._latency_ewma.get(key)
        if previous is None:
            self._latency_ewma[key] = feedback.response_time
        else:
            self._latency_ewma[key] = previous + self.feedback_alpha * (
                feedback.response_time - previous
            )
        self._pulls[key] = self._pulls.get(key, 0) + 1
        self._update_drift(cls, arm, feedback.response_time)

    # -- accounting -----------------------------------------------------------
    def decision_label(self, query: Query) -> str:
        info = self._assignments.get(query.query_id)
        if info is None:
            return self.name
        return f"{self.name}:{info[1]}"

    def decision_time(self, num_processors: int) -> float:
        # Classification + bandit lookup, then the chosen arm's own scan.
        arm_time = (
            self._last_arm.decision_time(num_processors)
            if self._last_arm is not None
            else 0.0
        )
        return BASE_DECISION_TIME + arm_time

    # -- state persistence ----------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Learned state, portable to a fresh :class:`AdaptiveRouting`.

        Everything the bandit accumulated — score/latency EWMAs, pulls,
        per-class commitments, repeat tracking and warmth signals — so a
        reconfigured or re-created instance continues *committed* instead
        of re-auditioning a cluster whose caches are already organised.
        In-flight assignments and audition accumulators are deliberately
        excluded: they only mean something to the instance that created
        them.
        """
        return {
            "score_ewma": dict(self._score_ewma),
            "repeat_ewma": dict(self._repeat_ewma),
            "latency_ewma": dict(self._latency_ewma),
            "pulls": dict(self._pulls),
            "assigned": dict(self._assigned),
            "committed": dict(self._last_greedy),
            "previous_commit": dict(self._previous_commit),
            "switches": dict(self.switches),
            "class_decisions": dict(self._class_decisions),
            "class_nodes": {cls: set(nodes)
                            for cls, nodes in self._class_nodes.items()},
            "class_queries": dict(self._class_queries),
            "class_repeats": dict(self._class_repeats),
            "class_hit": {cls: list(entry)
                          for cls, entry in self._class_hit.items()},
            "hit_rate_ewma": self._hit_rate_ewma,
            "imbalance_ewma": self._imbalance_ewma,
            "feedback_seen": self._feedback_seen,
            "commit_seeded": self._commit_seeded,
            "auditions": self.auditions,
        }

    def import_state(self, state: Mapping[str, object]) -> None:
        """Adopt state from :meth:`export_state` (arm-name intersection).

        Entries for arms this instance does not have are dropped; arms the
        exporter never measured simply start unmeasured. When the imported
        state had already committed, the pending initial audition is
        cancelled — the caches are warm and organised, so re-auditioning
        from scratch would churn them for nothing (drift detection still
        re-auditions if the commitment goes stale).
        """
        def keyed(name: str) -> Dict[Tuple[str, str], float]:
            entries = state.get(name, {})
            return {
                key: value for key, value in dict(entries).items()
                if key[1] in self.arms
            }

        self._score_ewma.update(keyed("score_ewma"))
        self._repeat_ewma.update(keyed("repeat_ewma"))
        self._latency_ewma.update(keyed("latency_ewma"))
        self._pulls.update(keyed("pulls"))
        self._assigned.update(keyed("assigned"))
        for table, name in (
            (self._class_decisions, "class_decisions"),
            (self._class_queries, "class_queries"),
            (self._class_repeats, "class_repeats"),
        ):
            table.update(dict(state.get(name, {})))
        for cls, nodes in dict(state.get("class_nodes", {})).items():
            self._class_nodes.setdefault(cls, set()).update(nodes)
        for cls, entry in dict(state.get("class_hit", {})).items():
            self._class_hit[cls] = list(entry)
        self.switches.update(dict(state.get("switches", {})))
        self._hit_rate_ewma = float(state.get("hit_rate_ewma", 0.0))
        self._imbalance_ewma = float(state.get("imbalance_ewma", 1.0))
        self._feedback_seen = int(state.get("feedback_seen", 0))
        self.auditions = int(state.get("auditions", self.auditions))
        committed = {
            cls: arm
            for cls, arm in dict(state.get("committed", {})).items()
            if arm in self.arms
        }
        previous = {
            cls: arm
            for cls, arm in dict(state.get("previous_commit", {})).items()
            if arm in self.arms
        }
        if bool(state.get("commit_seeded", False)):
            self._last_greedy.update(committed)
            self._previous_commit.update(previous)
            self._commit_seeded = True
            self._audition_queue.clear()
            self._current_audition = None
            self._audition_scheduled = True
            self._epoch_pos = 0

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic view of the learned state (for reports and tests)."""
        return {
            "mode": self.mode,
            "auditions": self.auditions,
            "committed": dict(self._last_greedy),
            "hit_rate_ewma": self._hit_rate_ewma,
            "imbalance_ewma": self._imbalance_ewma,
            "explorations": self.explorations,
            "switches": dict(self.switches),
            "latency_ewma_us": {
                f"{cls}/{arm}": value * 1e6
                for (cls, arm), value in sorted(self._latency_ewma.items())
            },
            "miss_ratio_ewma": {
                f"{cls}/{arm}": round(value, 4)
                for (cls, arm), value in sorted(self._score_ewma.items())
            },
            "repeat_miss_ewma": {
                f"{cls}/{arm}": round(value, 4)
                for (cls, arm), value in sorted(self._repeat_ewma.items())
            },
            "repeat_ratio": {
                cls: round(self.repeat_ratio(cls), 3)
                for cls in sorted(self._class_queries)
            },
            "pulls": {
                f"{cls}/{arm}": count
                for (cls, arm), count in sorted(self._pulls.items())
            },
        }
