"""Hash routing (§3.3.2): Target = Query-Node-Id MOD Number-Of-Processors.

Repeats of the *same* query node land on the same processor (repeat
locality) but nearby nodes scatter — no topology-aware locality. Query
stealing at the router provides the load balancing (Eq. 1 discussion).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..queries import Query
from .base import BASE_DECISION_TIME, RoutingStrategy


class HashRouting(RoutingStrategy):
    name = "hash"

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ValueError("need at least one processor")
        self.num_processors = num_processors

    def choose(self, query: Query, _loads: Sequence[int]) -> Optional[int]:
        return query.node % self.num_processors

    def decision_time(self, _num_processors: int) -> float:
        return BASE_DECISION_TIME
