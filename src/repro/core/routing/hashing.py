"""Hash routing (§3.3.2): Target = Query-Node-Id MOD Number-Of-Processors.

Repeats of the *same* query node land on the same processor (repeat
locality) but nearby nodes scatter — no topology-aware locality. Query
stealing at the router provides the load balancing (Eq. 1 discussion).

Multi-anchor queries (several routing keys) go to the processor that owns
the *plurality* of their anchors' hash slots, so a batch lands where most
of its per-anchor repeat locality already lives.

Elastic membership
------------------

A static cluster routes with the bare modulo above. The first membership
change (:meth:`~HashRouting.on_membership_change`) materialises a **slot
table**: ``SLOTS_PER_PROCESSOR`` virtual slots per original processor,
initialised ``slots[s] = s % P`` so the table reproduces the modulo
bit-for-bit, then rebalanced with *bounded movement* — a joiner takes an
equal share of slots from the most-loaded owners, a leaver's slots spread
over the survivors, and every other key keeps its owner (the consistent-
hashing property the paper's static modulo lacks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..operators.registry import routing_keys
from ..queries import Query
from .base import BASE_DECISION_TIME, RoutingStrategy


class HashRouting(RoutingStrategy):
    name = "hash"

    #: Virtual slots per (original) processor once the table materialises.
    #: More slots = finer rebalancing granularity; the table stays a few
    #: hundred ints for any realistic cluster.
    SLOTS_PER_PROCESSOR = 16

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ValueError("need at least one processor")
        self.num_processors = num_processors
        #: None until the first membership change: the static cluster
        #: routes with the bare modulo (bit-identical to the paper's rule).
        self._slots: Optional[List[int]] = None

    def _owner(self, key: int) -> int:
        if self._slots is None:
            return key % self.num_processors
        return self._slots[key % len(self._slots)]

    def choose(self, query: Query, _loads: Sequence[int]) -> Optional[int]:
        keys = routing_keys(query)
        if len(keys) == 1:
            return self._owner(keys[0])
        votes = [0] * self.num_processors
        for key in keys:
            votes[self._owner(key)] += 1
        # Plurality, ties broken deterministically by lowest index.
        return max(range(self.num_processors), key=lambda p: (votes[p], -p))

    def decision_time(self, _num_processors: int) -> float:
        return BASE_DECISION_TIME

    # -- elastic membership --------------------------------------------------
    def owner_table(self) -> List[int]:
        """Current slot→processor table (materialising it if needed).

        Exposed for the topology layer's totality checks: every slot must
        name exactly one processor, and after a rebalance every named
        processor is alive.
        """
        if self._slots is None:
            base = self.num_processors
            self._slots = [
                s % base for s in range(base * self.SLOTS_PER_PROCESSOR)
            ]
        return self._slots

    def on_membership_change(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """Rebalance the slot table; returns how many slots moved.

        Movement is the bounded minimum: slots owned by departed
        processors *must* move; beyond that only the excess above the new
        fair share (ceil of slots / alive processors) moves, so a join
        relocates ~1/(P+1) of the keyspace and a leave relocates exactly
        the leaver's share.
        """
        if num_processors < self.num_processors:
            raise ValueError("processor ids are never reused; the count "
                             "cannot shrink (removed ones stay dead)")
        slots = self.owner_table()
        self.num_processors = num_processors
        alive_ids = [p for p in range(num_processors) if alive[p]]
        if not alive_ids:
            # Nothing to rebalance toward; the router pools everything.
            return 0
        counts = [0] * num_processors
        homeless: List[int] = []
        for index, owner in enumerate(slots):
            if owner < num_processors and alive[owner]:
                counts[owner] += 1
            else:
                homeless.append(index)
        ceil_share = -(-len(slots) // len(alive_ids))
        # Shed the excess above the fair share, highest slot index first
        # (deterministic, and it leaves each owner's low slots — the ones
        # longest-lived in its cache — in place).
        for index in range(len(slots) - 1, -1, -1):
            owner = slots[index]
            if owner < num_processors and alive[owner] and \
                    counts[owner] > ceil_share:
                counts[owner] -= 1
                homeless.append(index)
        moved = 0
        # Hand the pool to the least-loaded alive owners, lowest id first.
        for index in sorted(homeless):
            target = min(alive_ids, key=lambda p: (counts[p], p))
            counts[target] += 1
            if slots[index] != target:
                slots[index] = target
                moved += 1
        return moved
