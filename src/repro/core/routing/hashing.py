"""Hash routing (§3.3.2): Target = Query-Node-Id MOD Number-Of-Processors.

Repeats of the *same* query node land on the same processor (repeat
locality) but nearby nodes scatter — no topology-aware locality. Query
stealing at the router provides the load balancing (Eq. 1 discussion).

Multi-anchor queries (several routing keys) go to the processor that owns
the *plurality* of their anchors' hash slots, so a batch lands where most
of its per-anchor repeat locality already lives.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..operators.registry import routing_keys
from ..queries import Query
from .base import BASE_DECISION_TIME, RoutingStrategy


class HashRouting(RoutingStrategy):
    name = "hash"

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ValueError("need at least one processor")
        self.num_processors = num_processors

    def choose(self, query: Query, _loads: Sequence[int]) -> Optional[int]:
        keys = routing_keys(query)
        if len(keys) == 1:
            return keys[0] % self.num_processors
        votes = [0] * self.num_processors
        for key in keys:
            votes[key % self.num_processors] += 1
        # Plurality, ties broken deterministically by lowest index.
        return max(range(self.num_processors), key=lambda p: (votes[p], -p))

    def decision_time(self, _num_processors: int) -> float:
        return BASE_DECISION_TIME
