"""Routing strategy interface (§3).

A strategy inspects a query and the router's per-processor load estimates
(queue length + outstanding query) and either names a target processor or
returns ``None`` to place the query in the router's shared pool (pure
next-ready dispatch). Smart strategies combine their distance signal with
the load via the paper's load-balanced distance (Eq. 3 / Eq. 7):

    d_LB(u, p) = d(u, p) + load(p) / load_factor
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..queries import Query

#: Fixed overhead of any routing decision (table lookup, queue push).
BASE_DECISION_TIME = 0.2e-6
#: Incremental cost per processor-distance entry scanned (O(P) or O(PD)).
PER_ENTRY_DECISION_TIME = 0.01e-6


class RoutingStrategy(ABC):
    """Chooses a processor for each query."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        """Target processor index, or None for the shared next-ready pool.

        ``loads`` is the router's per-processor busyness estimate (queued
        plus in-flight queries).
        """

    def on_dispatch(self, query: Query, processor: int) -> None:
        """Hook invoked when the routing decision is recorded (EMA updates)."""

    def decision_time(self, num_processors: int) -> float:
        """Simulated router time to make one decision."""
        return BASE_DECISION_TIME

    def load_penalty(self, loads: Sequence[int], load_factor: float):
        """Eq. 3/7 second term for every processor."""
        return [load / load_factor for load in loads]
