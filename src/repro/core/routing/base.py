"""Routing strategy interface (§3) and the routing feedback channel.

A strategy inspects a query and the router's per-processor load estimates
(queue length + outstanding query) and either names a target processor or
returns ``None`` to place the query in the router's shared pool (pure
next-ready dispatch). Smart strategies combine their distance signal with
the load via the paper's load-balanced distance (Eq. 3 / Eq. 7):

    d_LB(u, p) = d(u, p) + load(p) / load_factor

On every acknowledgement the router also pushes a :class:`RoutingFeedback`
back into the strategy — measured response time, the executing processor's
cache behaviour, and the queue depths at completion. Static strategies
ignore it; adaptive strategies use it to re-rank their choices online.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..queries import Query

#: Fixed overhead of any routing decision (table lookup, queue push).
BASE_DECISION_TIME = 0.2e-6
#: Incremental cost per processor-distance entry scanned (O(P) or O(PD)).
PER_ENTRY_DECISION_TIME = 0.01e-6


@dataclass(frozen=True)
class RoutingFeedback:
    """One completed query's outcome, reported back to the strategy.

    Carries everything already flowing through the router's ack path:
    measured latency, the executing processor's per-query and cumulative
    cache behaviour, and the cluster-wide queue depths at completion time.
    """

    query: Query
    processor: int
    #: Processing time plus routing decision time (the §4.1 response time).
    response_time: float
    #: Arrival-to-completion time, including queueing delay.
    sojourn_time: float
    #: Whether an idle processor stole this query from another's queue.
    stolen: bool
    #: Result-set cache hits / misses for this query (Eq. 8/9).
    cache_hits: int
    cache_misses: int
    #: The executing processor's *cumulative* cache hit rate so far.
    processor_hit_rate: float
    #: Per-processor queue depths (queued + in-flight) at completion.
    loads: Tuple[int, ...]


class RoutingStrategy(ABC):
    """Chooses a processor for each query."""

    name: str = "abstract"

    @abstractmethod
    def choose(self, query: Query, loads: Sequence[int]) -> Optional[int]:
        """Target processor index, or None for the shared next-ready pool.

        ``loads`` is the router's per-processor busyness estimate (queued
        plus in-flight queries).
        """

    def on_dispatch(self, query: Query, processor: int) -> None:
        """Hook invoked when the routing decision is recorded (EMA updates)."""

    def on_feedback(self, feedback: RoutingFeedback) -> None:
        """Hook invoked when a routed query completes (adaptive updates)."""

    def decision_label(self, _query: Query) -> str:
        """Which concrete scheme decided this query (for per-arm metrics).

        Composite strategies override this to name the sub-strategy that
        actually routed the query; the router records it per query right
        after :meth:`choose`.
        """
        return self.name

    def decision_time(self, _num_processors: int) -> float:
        """Simulated router time to make one decision."""
        return BASE_DECISION_TIME

    def on_membership_change(
        self, num_processors: int, alive: Sequence[bool]
    ) -> int:
        """The processing tier changed shape: rebalance routing state.

        ``num_processors`` is the new processor count (monotonically
        non-decreasing — removed processors keep their slot with
        ``alive[p]`` False). Strategies with per-processor tables move
        the *bounded minimum* of keys: only keys whose owner departed, or
        the fair share handed to a joiner. Returns how many table entries
        (hash slots, landmark-index nodes) changed owner, so the caller
        can report bounded key movement. The default is a no-op: a
        strategy with no per-processor state (next-ready pooling) routes
        correctly by construction — the router never dispatches to a dead
        processor and pools work for unknown targets.
        """
        return 0

    def load_penalty(self, loads: Sequence[int], load_factor: float):
        """Eq. 3/7 second term for every processor."""
        return [load / load_factor for load in loads]
