"""The query processor: a stateless worker with a cache (§2.3).

Processors receive queries from the router over a FIFO inbox, execute them
against their cache plus the shared storage tier, and acknowledge the
router on completion — the ack is what triggers the next dispatch, which is
how the router implements query stealing (§3.2, Requirement 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..costs import CostModel
from ..sim import Environment, Store
from ..storage.server import StorageServerDown
from ..storage.tier import StorageTier
from .assets import GraphAssets
from .cache import ProcessorCache
from .operators import execute_query

if TYPE_CHECKING:  # pragma: no cover
    from .router import Router

#: Inbox sentinel that shuts a processor down.
POISON = object()


class QueryProcessor:
    """One processing-tier server."""

    def __init__(
        self,
        env: Environment,
        processor_id: int,
        tier: StorageTier,
        assets: GraphAssets,
        costs: CostModel,
        cache_capacity_bytes: int,
        cache_policy: str = "lru",
        use_cache: bool = True,
    ) -> None:
        self.env = env
        self.processor_id = processor_id
        self.tier = tier
        self.assets = assets
        self.costs = costs
        self.use_cache = use_cache and cache_capacity_bytes > 0
        self.cache = ProcessorCache(
            cache_capacity_bytes if self.use_cache else 0, policy=cache_policy
        )
        self.owner_of = assets.owner_array(tier.num_servers)
        self.queries_executed = 0
        self.busy_time = 0.0
        self.alive = True
        self.inbox: Store = Store(env)
        self._process = None
        # Storage failover: retries against a down storage server. The
        # default (0) preserves the historical fail-fast behaviour; the
        # cluster topology layer raises it so in-flight queries ride out
        # an outage by backing off until a replica surfaces or the server
        # recovers.
        self.storage_retry_limit = 0
        self.storage_retry_backoff_s = 20.0e-6
        self.storage_retry_backoff_cap_s = 500.0e-6
        self.storage_retries = 0

    def start(self, router: "Router") -> None:
        """Begin the worker loop (idempotent per processor)."""
        if self._process is not None:
            raise RuntimeError("processor already started")
        self._process = self.env.process(self._run(router))

    @property
    def failure(self) -> Optional[BaseException]:
        """The exception that killed this worker, if it crashed."""
        if self._process is None:
            return None
        return self._process.failure

    def kill(self) -> None:
        """Fail the processor: it finishes nothing more (failure injection)."""
        self.alive = False
        self.inbox.put(POISON)

    def _run(self, router: "Router"):
        inbox = self.inbox
        while True:
            query = yield inbox.get()
            if query is POISON:
                break
            if not self.alive:
                # Dispatched before the failure but never started: hand the
                # query back so another processor picks it up.
                router.on_requeue(self.processor_id, query)
                break
            started = self.env.now
            # Inline the executor generator: no sub-Process per query.
            # Under failover (storage_retry_limit > 0) a fetch that hits a
            # down server backs off exponentially and re-executes: the
            # directory may have flipped to a live replica, or the server
            # may have recovered, by the next attempt.
            attempts = 0
            while True:
                try:
                    stats = yield from execute_query(self, query)
                    break
                except StorageServerDown:
                    attempts += 1
                    if attempts > self.storage_retry_limit:
                        raise
                    self.storage_retries += 1
                    backoff = min(
                        self.storage_retry_backoff_s * (2.0 ** (attempts - 1)),
                        self.storage_retry_backoff_cap_s,
                    )
                    yield self.env.timeout(backoff)
            finished = self.env.now
            self.queries_executed += 1
            self.busy_time += finished - started
            router.on_ack(self.processor_id, query, stats, started, finished)

    def cache_hit_rate(self) -> float:
        """Cumulative cache hit rate — the warmth signal in RoutingFeedback."""
        return self.cache.stats.hit_rate()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
