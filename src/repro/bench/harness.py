"""Shared experiment harness: contexts, formatting, result artifacts.

Every benchmark regenerates one table or figure of the paper. They share
per-dataset :class:`ExperimentContext` objects (graph + assets + workload),
so landmark BFS and embeddings are computed once per process, and they all
report through the same plain-text table formatter, whose output is the
reproduction's analogue of the paper's figures.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.assets import GraphAssets
from ..core.queries import Query
from ..datasets import load_dataset
from ..graph.digraph import Graph
from ..sim import total_events_processed
from ..workloads import hotspot_workload

#: Environment knob: scale every benchmark graph (e.g. 0.25 for smoke runs).
SCALE_ENV = "REPRO_BENCH_SCALE"

RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", "bench_results"))


def bench_scale(default: float = 1.0) -> float:
    """Graph scale for benchmarks, overridable via REPRO_BENCH_SCALE.

    Validated eagerly so a typo'd CI variable fails the job at startup
    with a clear message, not deep inside a dataset loader (or worse,
    silently benchmarking the wrong graph size).
    """
    raw = os.environ.get(SCALE_ENV)
    if raw is None:
        return default
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SCALE_ENV} must be a number (e.g. 0.05 or 1.0), "
            f"got {raw!r}"
        ) from None
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(
            f"{SCALE_ENV} must be a positive, finite graph scale, "
            f"got {raw!r}"
        )
    return scale


@dataclass
class ExperimentContext:
    """One dataset's shared state across all experiments in a process."""

    dataset: str
    scale: float
    seed: int
    graph: Graph
    assets: GraphAssets
    _workloads: Dict[tuple, List[Query]] = field(default_factory=dict)

    def workload(
        self,
        num_hotspots: int = 100,
        queries_per_hotspot: int = 10,
        radius: int = 2,
        hops: int = 2,
        seed: int = 7,
    ) -> List[Query]:
        """Memoized hotspot workload (paper default: 100 x 10, r=2, h=2)."""
        key = (num_hotspots, queries_per_hotspot, radius, hops, seed)
        if key not in self._workloads:
            self._workloads[key] = hotspot_workload(
                self.graph,
                num_hotspots=num_hotspots,
                queries_per_hotspot=queries_per_hotspot,
                radius=radius,
                hops=hops,
                seed=seed,
                csr=self.assets.csr_both,
            )
        return self._workloads[key]


_CONTEXTS: Dict[tuple, ExperimentContext] = {}


def get_context(dataset: str = "webgraph", scale: Optional[float] = None,
                seed: int = 1) -> ExperimentContext:
    """Process-wide memoized context for a dataset."""
    if scale is None:
        scale = bench_scale()
    key = (dataset, scale, seed)
    if key not in _CONTEXTS:
        graph = load_dataset(dataset, scale=scale, seed=seed)
        _CONTEXTS[key] = ExperimentContext(
            dataset=dataset, scale=scale, seed=seed,
            graph=graph, assets=GraphAssets(graph),
        )
    return _CONTEXTS[key]


# -- formatting ---------------------------------------------------------------
def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table, the text analogue of a paper figure."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {title} ==",
        " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
        sep,
    ]
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def write_json_atomic(path: Path, payload: object) -> None:
    """Write ``payload`` as JSON via tmp-file + rename.

    Parallel or interrupted benchmark jobs must never leave a half-written
    artifact: the rename is atomic on POSIX, and the tmp name is unique per
    process so concurrent writers can't collide on it either.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed; don't litter
            tmp.unlink()


# Perf-trajectory window: every artifact records the wall clock spent and
# kernel events dispatched since the previous artifact in this process
# (or since import, for the first). The rows stay bit-reproducible; the
# metadata block is the free byproduct that gives future PRs a perf
# trajectory without instrumenting each experiment.
_perf_window = {"time": time.perf_counter(), "events": total_events_processed()}


def _perf_metadata() -> Dict[str, float]:
    now = time.perf_counter()
    events = total_events_processed()
    wall = now - _perf_window["time"]
    delta = events - _perf_window["events"]
    _perf_window["time"] = now
    _perf_window["events"] = events
    return {
        "wall_clock_seconds": round(wall, 3),
        "kernel_events": delta,
        "events_per_second": round(delta / wall) if wall > 0 else 0,
    }


def emit(title: str, headers: Sequence[str],
         rows: Sequence[Sequence[object]], name: str) -> str:
    """Print a table and persist it as a JSON artifact (atomically).

    The artifact carries a ``metadata`` block (wall-clock seconds, kernel
    events and events/sec since the previous artifact) so every benchmark
    contributes to the perf trajectory for free. Row values remain exactly
    reproducible; only ``generated_at`` and ``metadata`` vary run to run.
    """
    table = format_table(title, headers, rows)
    print("\n" + table)
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [list(r) for r in rows],
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "metadata": _perf_metadata(),
    }
    write_json_atomic(RESULTS_DIR / f"{name}.json", payload)
    return table


class Timer:
    """Context manager measuring wall-clock seconds (Table 2 timings)."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self.elapsed = time.perf_counter() - self.start
