"""Validate benchmark artifacts against the metadata contract.

Every JSON under ``bench_results/`` is produced by
:func:`repro.bench.harness.emit` and must carry the perf-trajectory
metadata block (``wall_clock_seconds``, ``kernel_events``,
``events_per_second``) alongside its table payload. CI runs this module
over the committed artifacts so a harness regression — or a hand-edited
artifact — fails the build instead of silently breaking the perf
trajectory future PRs read.

Usage::

    python -m repro.bench.validate [results_dir]

Exit status 0 when every artifact conforms; 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

from .harness import RESULTS_DIR

#: The perf-trajectory contract every artifact's ``metadata`` block owes.
REQUIRED_METADATA = ("wall_clock_seconds", "kernel_events",
                     "events_per_second")

#: Table payload keys :func:`repro.bench.harness.emit` always writes.
REQUIRED_PAYLOAD = ("title", "headers", "rows")


def validate_artifact(path: Path) -> List[str]:
    """Problems with one artifact file (empty list = conforming)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable or invalid JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path.name}: top level must be a JSON object"]

    problems = []
    for key in REQUIRED_PAYLOAD:
        if key not in payload:
            problems.append(f"{path.name}: missing {key!r}")
    metadata = payload.get("metadata")
    if not isinstance(metadata, dict):
        problems.append(f"{path.name}: missing metadata block")
        return problems
    for key in REQUIRED_METADATA:
        value = metadata.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(
                f"{path.name}: metadata.{key} must be a number, "
                f"got {value!r}"
            )
    return problems


def validate_results_dir(results_dir: Path = RESULTS_DIR) -> List[str]:
    """Problems across every ``*.json`` artifact in ``results_dir``."""
    if not results_dir.is_dir():
        return [f"{results_dir}: not a directory"]
    paths = sorted(results_dir.glob("*.json"))
    if not paths:
        return [f"{results_dir}: contains no *.json artifacts"]
    problems = []
    for path in paths:
        problems.extend(validate_artifact(path))
    return problems


def main(argv: List[str]) -> int:
    results_dir = Path(argv[1]) if len(argv) > 1 else RESULTS_DIR
    problems = validate_results_dir(results_dir)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    count = len(list(results_dir.glob("*.json")))
    print(f"OK {count} artifacts in {results_dir} conform to the "
          "metadata contract")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
