"""Core experiments: Tables 1-3 and Figures 7-10 of the paper.

Each function runs one experiment, prints its table and writes a JSON
artifact under ``bench_results/``. Absolute numbers differ from the paper
(the substrate is a calibrated simulator over scaled-down graph analogues);
the *shapes* — orderings, scaling behaviour, crossover points — are the
reproduction targets, and EXPERIMENTS.md records both sides.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines import PowerGraphSystem, SedgeSystem
from ..core import ClusterConfig, GRoutingCluster, WorkloadReport
from ..costs import DEFAULT_COSTS, ETHERNET_COSTS
from ..datasets import dataset_info
from ..embedding import GraphEmbedding, embed_landmarks
from ..landmarks import LandmarkDistances, LandmarkIndex, select_landmarks
from .harness import ExperimentContext, Timer, emit, get_context

#: The five routing schemes of Figures 8/9/14/15/16.
SCHEMES = ("no_cache", "next_ready", "hash", "landmark", "embed")

#: §4.1 "Parameter Setting" defaults, adapted to the scaled-down graphs.
PAPER_DEFAULTS = dict(
    num_processors=7,
    num_storage_servers=4,
    cache_capacity_bytes=16 << 20,
    num_landmarks=96,
    min_separation=3,
    dim=10,
    load_factor=20.0,
    alpha=0.5,
    embed_method="lmds",  # routing-equivalent to simplex; see Table 2 bench
)


def scheme_config(routing: str, **overrides) -> ClusterConfig:
    params = dict(PAPER_DEFAULTS)
    params.update(overrides)
    return ClusterConfig(routing=routing, **params)


def run_scheme(
    ctx: ExperimentContext,
    routing: str,
    queries=None,
    landmark_index=None,
    embedding=None,
    **overrides,
) -> WorkloadReport:
    """One cold-cache cluster run of ``routing`` on the context's workload."""
    if queries is None:
        queries = ctx.workload()
    cluster = GRoutingCluster(
        ctx.graph,
        scheme_config(routing, **overrides),
        assets=ctx.assets,
        landmark_index=landmark_index,
        embedding=embedding,
    )
    return cluster.run(queries)


# -- Table 1 -----------------------------------------------------------------
def table1_datasets(scale: Optional[float] = None) -> List[List[object]]:
    """Table 1: the four dataset analogues and their sizes."""
    rows = []
    for name in ("webgraph", "friendster", "memetracker", "freebase"):
        ctx = get_context(name, scale=scale)
        info = dataset_info(name, ctx.graph)
        rows.append([
            info.name, info.num_nodes, info.num_edges,
            round(info.record_bytes / (1 << 20), 2),
        ])
    emit("Table 1: graph datasets (synthetic analogues)",
         ["dataset", "nodes", "edges", "size (MiB, record form)"],
         rows, "table1_datasets")
    return rows


# -- Figure 7 ----------------------------------------------------------------
def fig7_system_comparison(
    datasets: Sequence[str] = ("webgraph", "memetracker", "freebase"),
) -> List[List[object]]:
    """Fig 7: throughput of SEDGE, PowerGraph, gRouting-E, gRouting.

    Coupled systems get 12 servers; gRouting uses 1 router + 7 processors +
    4 storage servers (the paper's split).
    """
    rows = []
    for dataset in datasets:
        ctx = get_context(dataset)
        queries = ctx.workload()
        sedge = SedgeSystem(ctx.assets, num_servers=12).run(queries)
        powergraph = PowerGraphSystem(ctx.assets, num_servers=12).run(queries)
        grouting_e = run_scheme(ctx, "embed", costs=ETHERNET_COSTS)
        grouting = run_scheme(ctx, "embed", costs=DEFAULT_COSTS)
        rows.append([
            dataset,
            round(sedge.throughput(), 1),
            round(powergraph.throughput(), 1),
            round(grouting_e.throughput(), 1),
            round(grouting.throughput(), 1),
            round(grouting.throughput() / max(sedge.throughput(), 1e-9), 1),
        ])
    emit("Fig 7: system throughput comparison (queries/second)",
         ["dataset", "SEDGE/Giraph", "PowerGraph", "gRouting-E (ethernet)",
          "gRouting (infiniband)", "gRouting/SEDGE"],
         rows, "fig7_system_comparison")
    return rows


# -- Figure 8 ----------------------------------------------------------------
def fig8a_processor_scaling(
    processor_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
) -> List[List[object]]:
    """Fig 8(a): throughput vs number of query processors, WebGraph."""
    ctx = get_context("webgraph")
    rows = []
    for count in processor_counts:
        row: List[object] = [count]
        for scheme in SCHEMES:
            report = run_scheme(ctx, scheme, num_processors=count)
            row.append(round(report.throughput(), 1))
        rows.append(row)
    emit("Fig 8(a): throughput vs query processors (queries/second)",
         ["processors", *SCHEMES], rows, "fig8a_processor_scaling")
    return rows


def fig8b_cache_hits(
    processor_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
) -> List[List[object]]:
    """Fig 8(b): total cache hits (Eq. 8) vs number of query processors."""
    ctx = get_context("webgraph")
    rows = []
    total_accesses = None
    for count in processor_counts:
        row: List[object] = [count]
        for scheme in SCHEMES[1:]:  # no_cache has no hits by definition
            report = run_scheme(ctx, scheme, num_processors=count)
            row.append(report.total_cache_hits())
            total_accesses = (
                report.total_cache_hits() + report.total_cache_misses()
            )
        rows.append(row)
    emit(
        "Fig 8(b): cache hits vs query processors "
        f"(hits + misses = {total_accesses} per run)",
        ["processors", *SCHEMES[1:]], rows, "fig8b_cache_hits",
    )
    return rows


def fig8c_storage_scaling(
    storage_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
) -> List[List[object]]:
    """Fig 8(c): throughput vs storage servers (4 query processors)."""
    ctx = get_context("webgraph")
    rows = []
    for count in storage_counts:
        row: List[object] = [count]
        for scheme in SCHEMES:
            report = run_scheme(ctx, scheme, num_processors=4,
                                num_storage_servers=count)
            row.append(round(report.throughput(), 1))
        rows.append(row)
    emit("Fig 8(c): throughput vs storage servers (queries/second)",
         ["storage servers", *SCHEMES], rows, "fig8c_storage_scaling")
    return rows


# -- Figure 9 ----------------------------------------------------------------
def fig9_cache_capacity(
    capacities: Sequence[int] = (8 << 10, 32 << 10, 128 << 10, 512 << 10,
                                 2 << 20, 8 << 20),
) -> Dict[str, List[List[object]]]:
    """Fig 9: response time and hits vs per-processor cache capacity.

    Also derives Fig 9(c): the smallest capacity at which each scheme beats
    the no-cache response time (the break-even point).
    """
    ctx = get_context("webgraph")
    no_cache = run_scheme(ctx, "no_cache")
    baseline_ms = no_cache.mean_response_time() * 1e3

    response_rows, hit_rows = [], []
    break_even: Dict[str, Optional[int]] = {s: None for s in SCHEMES[1:]}
    for capacity in capacities:
        resp_row: List[object] = [capacity >> 10]
        hits_row: List[object] = [capacity >> 10]
        for scheme in SCHEMES[1:]:
            report = run_scheme(ctx, scheme, cache_capacity_bytes=capacity)
            ms = report.mean_response_time() * 1e3
            resp_row.append(round(ms, 4))
            hits_row.append(report.total_cache_hits())
            if ms <= baseline_ms and break_even[scheme] is None:
                break_even[scheme] = capacity >> 10
        response_rows.append(resp_row)
        hit_rows.append(hits_row)

    emit(
        f"Fig 9(a): response time vs cache capacity "
        f"(no-cache = {baseline_ms:.4f} ms)",
        ["capacity (KiB)", *SCHEMES[1:]], response_rows, "fig9a_response",
    )
    emit("Fig 9(b): cache hits vs cache capacity",
         ["capacity (KiB)", *SCHEMES[1:]], hit_rows, "fig9b_hits")
    be_rows = [[s, be if be is not None else "> max swept"]
               for s, be in break_even.items()]
    emit("Fig 9(c): min cache capacity to reach no-cache response (KiB)",
         ["scheme", "capacity (KiB)"], be_rows, "fig9c_break_even")
    return {"response": response_rows, "hits": hit_rows, "break_even": be_rows}


# -- Tables 2 and 3 ------------------------------------------------------------
def table2_preprocessing(sample_nodes: int = 512) -> List[List[object]]:
    """Table 2: preprocessing wall-clock times of our implementations.

    Reported per unit like the paper: per-landmark BFS time, total landmark
    embedding time, and per-node embedding time (both the paper's Simplex
    Downhill and the vectorised batch + LMDS fast paths).
    """
    ctx = get_context("webgraph")
    csr = ctx.assets.csr_both
    with Timer() as t_select:
        landmarks = select_landmarks(csr, 96, 3)
    with Timer() as t_bfs:
        distances = LandmarkDistances.compute(csr, landmarks)
    with Timer() as t_embed_landmarks:
        landmark_coords = embed_landmarks(distances.pair_matrix(), 10)
    with Timer() as t_lmds:
        GraphEmbedding.embed(csr, dim=10, landmark_distances=distances,
                             method="lmds")
    # Simplex on a sample: per-node cost scales linearly (vectorised batch).
    sample_csr_nodes = min(sample_nodes, csr.num_nodes)
    sub_matrix = distances.matrix[:, :sample_csr_nodes]
    sub = LandmarkDistances(distances.landmarks, sub_matrix)
    with Timer() as t_simplex:
        from ..embedding.embedder import (
            _node_objective_factory,
            batch_nelder_mead,
            lmds_triangulate,
        )
        from ..landmarks.distances import UNREACHABLE

        coords0 = lmds_triangulate(landmark_coords, sub.matrix)
        dists = sub.matrix.T.astype(np.float64)
        valid = (dists != UNREACHABLE) & (dists > 0)
        objective = _node_objective_factory(landmark_coords, dists, valid)
        batch_nelder_mead(objective, coords0, max_iter=120)

    rows = [
        ["select 96 landmarks", f"{t_select.elapsed:.3f} s total"],
        ["landmark BFS", f"{t_bfs.elapsed / len(landmarks) * 1e3:.2f} ms/landmark"],
        ["embed landmarks (simplex)", f"{t_embed_landmarks.elapsed:.2f} s total"],
        ["embed nodes (batch simplex)",
         f"{t_simplex.elapsed / sample_csr_nodes * 1e3:.3f} ms/node"],
        ["embed nodes (LMDS fast path)",
         f"{t_lmds.elapsed / csr.num_nodes * 1e6:.2f} us/node"],
    ]
    emit("Table 2: preprocessing times (wall clock, this implementation)",
         ["phase", "time"], rows, "table2_preprocessing")
    return rows


def table3_storage() -> List[List[object]]:
    """Table 3: router-side preprocessing storage vs the graph itself."""
    ctx = get_context("webgraph")
    index = ctx.assets.landmark_index(7, 96, 3)
    embedding = ctx.assets.embedding(dim=10, num_landmarks=96,
                                     min_separation=3, method="lmds")
    graph_bytes = ctx.assets.total_graph_bytes()
    rows = [
        ["landmark d(u,p) table", round(index.storage_bytes() / (1 << 20), 3)],
        ["embedding coordinates",
         round(embedding.storage_bytes() / (1 << 20), 3)],
        ["original graph (records)", round(graph_bytes / (1 << 20), 3)],
    ]
    emit("Table 3: preprocessing storage (MiB)",
         ["structure", "size (MiB)"], rows, "table3_storage")
    return rows


# -- Figure 10 ----------------------------------------------------------------
def fig10_graph_updates(
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
) -> List[List[object]]:
    """Fig 10: robustness when preprocessing saw only part of the graph.

    Preprocess landmark tables and the embedding on a random q% induced
    subgraph; index the remaining nodes incrementally (neighbor relaxation
    + LMDS placement, never re-running BFS); query the FULL graph.
    """
    ctx = get_context("webgraph")
    queries = ctx.workload()
    graph = ctx.graph
    all_nodes = np.array(sorted(graph.nodes()), dtype=np.int64)
    rng = np.random.default_rng(11)
    hash_ms = run_scheme(ctx, "hash").mean_response_time() * 1e3

    rows = []
    for fraction in fractions:
        if fraction >= 1.0:
            index = ctx.assets.landmark_index(7, 96, 3)
            embedding = ctx.assets.embedding(dim=10, num_landmarks=96,
                                             min_separation=3, method="lmds")
        else:
            keep = rng.choice(all_nodes, size=int(len(all_nodes) * fraction),
                              replace=False)
            subgraph = graph.subgraph(keep.tolist())
            index = LandmarkIndex.build(subgraph, num_processors=7,
                                        num_landmarks=96, min_separation=3)
            from ..graph.csr import CSRGraph

            sub_csr = CSRGraph.from_graph(subgraph, direction="both")
            sub_landmarks = [
                sub_csr.index_of(nid) for nid in index.landmark_node_ids
            ]
            distances = LandmarkDistances.compute(sub_csr, sub_landmarks)
            embedding = GraphEmbedding.embed(
                sub_csr, dim=10, landmark_distances=distances, method="lmds"
            )
            # Incremental indexing of the unseen nodes, in id order.
            missing = [int(n) for n in all_nodes if not index.knows(int(n))]
            vectors = []
            for node in missing:
                index.add_node(node, list(graph.neighbors(node)))
                vectors.append(index.landmark_vector(node))
            embedding.add_nodes_lmds(missing, np.array(vectors))
        landmark_report = run_scheme(ctx, "landmark", queries=queries,
                                     landmark_index=index)
        embed_report = run_scheme(ctx, "embed", queries=queries,
                                  embedding=embedding)
        rows.append([
            int(fraction * 100),
            round(embed_report.mean_response_time() * 1e3, 4),
            round(landmark_report.mean_response_time() * 1e3, 4),
            round(hash_ms, 4),
        ])
    emit("Fig 10: response time (ms) vs % of graph seen at preprocessing",
         ["% preprocessed", "embed", "landmark", "hash (reference)"],
         rows, "fig10_graph_updates")
    return rows
