"""SLO under overload: an offered-load sweep past saturation (new figure).

Every other experiment in this package measures a *closed-loop* run —
offered load can never exceed capacity, so overload is unobservable. This
one drives the open-loop serving path (:mod:`repro.workloads.open_loop` +
:meth:`~repro.core.service.QuerySession.serve`) through a sweep of
offered-load multipliers around calibrated capacity, for two front-door
configurations:

* ``fifo`` — ``next_ready`` routing, no admission control: every arrival
  queues unboundedly in the router, the naive production deployment;
* ``adaptive+admission`` — adaptive routing behind the per-tenant
  admission / DRR / load-shedding layer of :mod:`repro.core.admission`.

Two tenants share the cluster: ``interactive`` (zipfian point lookups
and short walks — the latency-sensitive tier) and ``analytics`` (PPR and
batched reachability — the heavy tier admission control sheds first).
Capacity is calibrated per graph scale by a closed-loop run of the same
mixture, so the sweep's multipliers mean the same thing at smoke scale
and full scale.

The headline SLO metric is worst-tenant p99 *sojourn* time (arrival to
completion): under overload the collapse is queueing delay, which
response time deliberately excludes. The expected shape — and the CI
gate in ``benchmarks/test_slo_overload.py`` — is that FIFO's p99
degrades super-linearly past saturation while admission + adaptive
routing holds p99 flat by converting the excess into shed/rejected
work (visible as delivery ratio < 1), keeping goodput near capacity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import (
    AdmissionConfig,
    GraphService,
    GRoutingCluster,
    QueryIdAllocator,
    WorkloadReport,
    query_ids_from,
)
from ..core.queries import Query
from ..workloads import (
    interleave,
    k_reach_stream,
    merge_arrivals,
    poisson_arrivals,
    ppr_stream,
    zipfian_stream,
)
from .experiments import scheme_config
from .harness import emit, get_context

#: Offered load as a fraction of calibrated capacity. 0.9 is the highest
#: pre-saturation point (what the SLO gate reads); 1.2 and 1.5 are past
#: saturation, where the two front doors diverge.
LOAD_POINTS = (0.25, 0.5, 0.75, 0.9, 1.2, 1.5)

#: Per-tenant query volume per load point (fixed: a sweep replays the
#: same workload faster or slower, so higher load = shorter run).
NUM_INTERACTIVE = 1050
NUM_ANALYTICS = 450

#: The admission layer under test. Queue limits bound worst-case sojourn
#: (a query can wait behind at most ~limit peers plus the shallow router
#: depth), which is what keeps p99 flat where FIFO's grows with backlog.
SLO_ADMISSION = AdmissionConfig(tenant_queue_limit=32)

#: (label, routing, admission) front-door configurations compared.
SLO_CONFIGS: Tuple[Tuple[str, str, Optional[AdmissionConfig]], ...] = (
    ("fifo", "next_ready", None),
    ("adaptive+admission", "adaptive", SLO_ADMISSION),
)


def slo_workload(ctx) -> Tuple[List[Query], List[Query]]:
    """The two tenants' query populations (deterministic, scoped ids)."""
    graph, csr = ctx.graph, ctx.assets.csr_both
    with query_ids_from(QueryIdAllocator(start=5_000_000)):
        interactive = list(zipfian_stream(
            graph, num_queries=NUM_INTERACTIVE, hops=1,
            mix=("aggregation", "walk"), skew=1.2, seed=13, csr=csr,
        ))
        analytics = list(interleave([
            ppr_stream(graph, num_queries=NUM_ANALYTICS // 2, walks=4,
                       steps=4, seed=17, csr=csr),
            k_reach_stream(graph, num_queries=NUM_ANALYTICS // 2,
                           num_sources=4, hops=2, seed=19, csr=csr),
        ], seed=23))
    return interactive, analytics


def calibrate_capacity(ctx, interactive: List[Query],
                       analytics: List[Query]) -> float:
    """Closed-loop throughput of the mixture under ``next_ready`` — the
    cluster's service capacity for exactly this traffic shape, so the
    sweep multipliers stay meaningful across graph scales."""
    queries = list(interleave([interactive, analytics], seed=29))
    report = GRoutingCluster(
        ctx.graph, scheme_config("next_ready"), assets=ctx.assets,
    ).run(queries)
    return report.throughput()


def _serve_at_load(
    ctx,
    routing: str,
    admission: Optional[AdmissionConfig],
    interactive: List[Query],
    analytics: List[Query],
    rate: float,
) -> WorkloadReport:
    """One open-loop serve of the two-tenant mixture at ``rate`` qps."""
    total = len(interactive) + len(analytics)
    arrivals = merge_arrivals(
        poisson_arrivals(interactive, rate=rate * len(interactive) / total,
                         tenant="interactive", seed=31),
        poisson_arrivals(analytics, rate=rate * len(analytics) / total,
                         tenant="analytics", seed=37),
    )
    with GraphService.open(
        ctx.graph, scheme_config(routing), assets=ctx.assets,
    ) as service:
        with service.session() as session:
            session.serve(arrivals, admission=admission)
            return session.report()


def fig_slo_overload(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Offered-load sweep: worst-tenant p99 sojourn vs load, per config."""
    ctx = get_context(dataset, scale=scale)
    interactive, analytics = slo_workload(ctx)
    capacity = calibrate_capacity(ctx, interactive, analytics)

    rows: List[List[object]] = []
    results: Dict[str, Dict[str, float]] = {}
    for label, routing, admission in SLO_CONFIGS:
        for multiplier in LOAD_POINTS:
            report = _serve_at_load(
                ctx, routing, admission, interactive, analytics,
                rate=capacity * multiplier,
            )
            per_tenant = report.per_tenant_stats()
            worst_p99 = max(t["p99_sojourn_ms"] for t in per_tenant.values())
            worst_p999 = max(t["p999_sojourn_ms"] for t in per_tenant.values())
            stats = report.admission
            point = {
                "offered_qps": report.offered_load(),
                "goodput_qps": report.goodput(),
                "delivery_ratio": (
                    stats.delivery_ratio() if stats is not None else 1.0
                ),
                "worst_p99_ms": worst_p99,
                "worst_p999_ms": worst_p999,
                "shed": stats.shed if stats is not None else 0,
                "rejected": stats.rejected if stats is not None else 0,
                "time_in_overload_s": report.time_in_overload(),
                "per_tenant": per_tenant,
            }
            results[f"{label}@{multiplier}"] = point
            rows.append([
                label,
                multiplier,
                round(point["offered_qps"]),
                round(point["goodput_qps"]),
                round(point["delivery_ratio"], 3),
                round(worst_p99, 3),
                round(worst_p999, 3),
                point["shed"],
                point["rejected"],
                round(point["time_in_overload_s"], 4),
            ])

    emit(
        "SLO under overload: offered-load sweep at "
        f"{round(capacity)} qps calibrated capacity "
        "(worst-tenant sojourn percentiles in ms)",
        ["config", "load", "offered", "goodput", "delivered",
         "p99", "p999", "shed", "rejected", "overload s"],
        rows,
        "fig_slo_overload",
    )
    return {
        "capacity_qps": capacity,
        "load_points": list(LOAD_POINTS),
        "rows": rows,
        "results": results,
    }
