"""fig_repartition: dynamic placement vs static placement (new figure).

Every placement in the paper's system is static: records live where the
murmur hash put them, forever. This experiment drives the dynamic
placement subsystem (:mod:`repro.core.placement`) with the workload it
exists for — a *shifting* hotspot, skewed enough that a handful of
records dominate storage traffic and mobile enough that no fixed
placement stays right — and compares:

* ``static`` rows — each routing scheme with the placement subsystem
  disabled (``placement=None``): exactly the pre-subsystem cluster;
* ``dynamic`` — the *empirically best* static routing of this run plus a
  tuned :class:`~repro.core.placement.PlacementConfig`, so the dynamic
  row is "add placement to the best static configuration" and any win is
  attributable to placement alone;
* ``dynamic:aggressive`` — the ablation: same routing, but a near-zero
  heat threshold, full fan-out replication, an oversized byte budget and
  an 8x faster planning loop. Its migration traffic shares the storage
  write pipelines with live queries, so over-rebalancing is *measurably
  worse* than the tuned loop — the cost side of the subsystem, made
  visible.

The serve is open-loop (Poisson arrivals at :data:`LOAD` x calibrated
capacity), because placement pays off in *queueing*: the server holding
a hot record saturates and every fetch behind it waits. Sojourn time
(arrival to completion) is therefore the headline metric. Processor
caches are deliberately starved (:data:`REPART_CACHE_BYTES`, a few dozen
records): with §4.1-sized caches the hot ball becomes cache-resident
after one warm-up pass and the storage tier only ever sees balanced
background traffic — there is nothing left for *any* placement to fix
(the regime Fig 9 maps out). The interesting production regime is the
opposite one — working set far larger than cache — and a tiny cache is
how the scaled-down analogue reaches it, the same trick
:mod:`repro.bench.updates` uses, taken further.

Placement cadence (``interval_s`` / ``half_life_s``) is derived from the
calibrated run length, so the control loop runs the same number of
rounds per hotspot phase at smoke scale and full scale — the CI gate in
``benchmarks/test_repartition.py`` holds at both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import (
    GraphService,
    GRoutingCluster,
    PlacementConfig,
    QueryIdAllocator,
    WorkloadReport,
    query_ids_from,
)
from ..core.queries import Query
from ..workloads import poisson_arrivals, shifting_hotspot_workload
from .experiments import scheme_config
from .harness import emit, get_context

#: Offered load as a fraction of calibrated closed-loop capacity: high
#: enough that the hot server's queue dominates sojourn, low enough that
#: the run is stable for every scheme.
LOAD = 0.9

#: Per-processor cache, deliberately starved (see module docstring).
REPART_CACHE_BYTES = 4 << 10

#: Shifting-hotspot shape: each phase concentrates `HOT_FRACTION` of its
#: queries on a fresh radius-2 ball, power-law skewed within the ball.
NUM_PHASES = 6
QUERIES_PER_PHASE = 250
HOTSPOT = dict(
    radius=2,
    hops=2,
    hot_fraction=0.9,
    skew=1.2,
    seed=41,
)

#: Tuned planning rounds per hotspot phase. 8 rounds give the manager a
#: fresh look (and a chance to re-place) well within each phase's life.
ROUNDS_PER_PHASE = 8

#: Static routing schemes compared (the dynamic row rides the best one).
STATIC_ROUTINGS = ("hash", "embed", "adaptive")


def repartition_workload(ctx) -> List[Query]:
    """The shifting-hotspot query population (deterministic, scoped ids)."""
    with query_ids_from(QueryIdAllocator(start=6_000_000)):
        return shifting_hotspot_workload(
            ctx.graph,
            num_phases=NUM_PHASES,
            queries_per_phase=QUERIES_PER_PHASE,
            csr=ctx.assets.csr_both,
            **HOTSPOT,
        )


def calibrate_capacity(ctx, queries: List[Query],
                       cache_bytes: int) -> float:
    """Closed-loop throughput of the workload under ``next_ready`` — the
    capacity the open-loop arrival rate is a fraction of, so ``LOAD``
    means the same thing at every graph scale."""
    report = GRoutingCluster(
        ctx.graph,
        scheme_config("next_ready", cache_capacity_bytes=cache_bytes),
        assets=ctx.assets,
    ).run(queries)
    return report.throughput()


def tuned_placement(phase_s: float) -> PlacementConfig:
    """The placement loop the `dynamic` row runs: react within a phase,
    replicate only the genuinely hot head, bounded copy budget.

    Replication is the load-bearing move here: murmur hashing keeps
    *long-run* per-server load balanced, but Poisson bursts leave one
    server's pipeline deep at any given instant, and a second copy of
    each hot record lets read-any route around it (join-shortest-queue,
    per request). Migration stays armed but rarely fires against an
    already-balanced hash — the tests and ``examples/hot_replication.py``
    exercise it directly."""
    return PlacementConfig(
        interval_s=phase_s / ROUNDS_PER_PHASE,
        half_life_s=phase_s / 4,
        heat_threshold=6.0,
        replicate_threshold=6.0,
        replicas=2,
        top_k=16,
        round_byte_budget=32 << 10,
        migrate_margin=0.5,
        release_fraction=0.1,
    )


def aggressive_placement(phase_s: float) -> PlacementConfig:
    """The ablation: everything is hot, replicate everywhere, plan 8x as
    often, practically unbounded budget, hair-trigger release — the
    copies' pipeline time is pure contention with live queries."""
    return PlacementConfig(
        interval_s=phase_s / (ROUNDS_PER_PHASE * 8),
        half_life_s=phase_s / 4,
        heat_threshold=0.05,
        replicate_threshold=0.1,
        replicas=4,
        top_k=512,
        round_byte_budget=16 << 20,
        migrate_margin=0.0,
        release_fraction=0.9,
    )


def _serve(ctx, routing: str, placement: Optional[PlacementConfig],
           queries: List[Query], rate: float,
           cache_bytes: int) -> WorkloadReport:
    """One open-loop serve of the workload at ``rate`` qps."""
    arrivals = poisson_arrivals(queries, rate=rate, tenant="clients",
                                seed=43)
    config = scheme_config(routing, cache_capacity_bytes=cache_bytes,
                           placement=placement)
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
        with service.session() as session:
            session.serve(arrivals)
            return session.report()


def _point(label: str, routing: str, report: WorkloadReport) -> Dict[str, object]:
    placement = report.placement or {}
    return {
        "label": label,
        "routing": routing,
        "mean_sojourn_ms": report.mean_sojourn_time() * 1e3,
        "p99_sojourn_ms": report.percentile_sojourn_time(99) * 1e3,
        "mean_response_ms": report.mean_response_time() * 1e3,
        "cache_hit_rate": report.cache_hit_rate(),
        "storage_imbalance": report.storage_request_imbalance(),
        "migrations": int(placement.get("migrations", 0)),
        "replications": int(placement.get("replications", 0)),
        "releases": int(placement.get("releases", 0)),
        "migration_bytes": report.migration_bytes(),
        "active_placements": int(placement.get("active_placements", 0)),
        "per_server": report.per_server_stats(),
    }


def fig_repartition(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Shifting-hotspot serve: static placements vs the dynamic loop."""
    ctx = get_context(dataset, scale=scale)
    cache_bytes = REPART_CACHE_BYTES
    queries = repartition_workload(ctx)
    capacity = calibrate_capacity(ctx, queries, cache_bytes)
    rate = capacity * LOAD
    # Expected arrival span of one hotspot phase — the clock the placement
    # loop's cadence and decay are derived from.
    phase_s = (len(queries) / rate) / NUM_PHASES

    results: Dict[str, Dict[str, object]] = {}
    for routing in STATIC_ROUTINGS:
        report = _serve(ctx, routing, None, queries, rate, cache_bytes)
        results[f"static:{routing}"] = _point(
            f"static:{routing}", routing, report
        )

    best_static = min(
        (results[f"static:{r}"] for r in STATIC_ROUTINGS),
        key=lambda p: p["mean_sojourn_ms"],
    )
    routing = str(best_static["routing"])

    for label, cfg in (
        ("dynamic", tuned_placement(phase_s)),
        ("dynamic:aggressive", aggressive_placement(phase_s)),
    ):
        report = _serve(ctx, routing, cfg, queries, rate, cache_bytes)
        results[label] = _point(label, routing, report)

    rows: List[List[object]] = []
    for point in results.values():
        rows.append([
            point["label"],
            point["routing"],
            round(point["mean_sojourn_ms"], 4),
            round(point["p99_sojourn_ms"], 4),
            round(point["mean_response_ms"], 4),
            round(point["cache_hit_rate"], 4),
            round(point["storage_imbalance"], 3),
            point["migrations"],
            point["replications"],
            point["migration_bytes"] >> 10,
            point["active_placements"],
        ])

    emit(
        "Fig repartition: dynamic placement vs static under a shifting "
        f"hotspot ({round(capacity)} qps capacity, {LOAD}x offered, "
        f"cache {cache_bytes >> 10} KiB/processor)",
        ["placement", "routing", "mean sojourn (ms)", "p99 sojourn (ms)",
         "mean resp (ms)", "hit rate", "imbalance", "migrations",
         "replications", "copied KiB", "active"],
        rows,
        "fig_repartition",
    )
    return {
        "capacity_qps": capacity,
        "offered_qps": rate,
        "cache_bytes": cache_bytes,
        "phase_s": phase_s,
        "best_static": str(best_static["label"]),
        "rows": rows,
        "results": results,
    }
