"""Render every saved benchmark artifact as plain-text tables.

pytest captures experiment stdout during benchmark runs, so the
paper-style tables live primarily in ``bench_results/*.json``. This module
(also runnable: ``python -m repro.bench.report``) re-renders all of them
into one text report.
"""

from __future__ import annotations

import json
from pathlib import Path

from .harness import RESULTS_DIR, format_table

#: Render order: paper order (tables, then figures), then ablations.
_ORDER = [
    "table1_datasets",
    "fig7_system_comparison",
    "fig8a_processor_scaling",
    "fig8b_cache_hits",
    "fig8c_storage_scaling",
    "fig9a_response",
    "fig9b_hits",
    "fig9c_break_even",
    "table2_preprocessing",
    "table3_storage",
    "fig10_graph_updates",
    "fig10_live_updates",
    "fig11a_load_factor",
    "fig11b_alpha",
    "fig12a_embedding_error",
    "fig12b_dimension_response",
    "fig13a_landmark_count",
    "fig13b_landmark_separation",
    "fig14a_response",
    "fig14bc_cache",
    "fig15_traversal_depth",
    "fig16_other_datasets",
    "ablation_cache_policy",
    "ablation_embed_method",
    "ablation_partitioner",
    "ablation_query_stealing",
]


def render_all_results(results_dir: Path = RESULTS_DIR) -> str:
    """One text report with every artifact's table, in paper order."""
    sections = []
    seen = set()
    names = [n for n in _ORDER]
    names += sorted(
        p.stem for p in results_dir.glob("*.json") if p.stem not in _ORDER
    )
    for name in names:
        path = results_dir / f"{name}.json"
        if not path.exists() or name in seen:
            continue
        seen.add(name)
        payload = json.loads(path.read_text())
        sections.append(
            format_table(payload["title"], payload["headers"], payload["rows"])
        )
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - thin CLI
    print(render_all_results())


if __name__ == "__main__":  # pragma: no cover
    main()
