"""Steady-state vs cold-start: what long-lived sessions buy (beyond §4).

The paper (and the one-shot harness reproducing it) measures every scheme
from cold caches, but the architecture exists to serve *continuous*
traffic — where steady state, not warm-up, is the operating regime.
This experiment serves the repeat-heavy mixed workload through one
:class:`~repro.core.service.GraphService` in two sessions (warm-up, then
steady state) and compares the steady session against a cold one-shot run
of the *same* queries. Warm caches — and, for ``adaptive``, arm state
persisted across the session boundary, so steady traffic starts committed
instead of re-auditioning — are the payoff. A windowed report of one
continuous serve shows the same thing inside a single run: the early
windows absorb the compulsory misses, the late ones show the sustained
regime.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core import GraphService, GRoutingCluster
from .adaptive import SUBMIT_BATCH, mixed_workload
from .experiments import scheme_config
from .harness import emit, get_context

#: Schemes compared warm-vs-cold (adaptive is the headline: it carries
#: learned arm state, not just cache contents, across sessions).
SESSION_SCHEMES = ("hash", "embed", "adaptive")

#: Windows for the continuous-serve steady-state view.
NUM_WINDOWS = 6


def session_steady_state(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Warm-session vs cold-run response on the repeat-heavy mixture."""
    ctx = get_context(dataset, scale=scale)
    full = mixed_workload(ctx)
    half = len(full) // 2
    warmup, steady = full[:half], full[half:]

    rows: List[List[object]] = []
    snapshot: Dict[str, object] = {}
    for routing in SESSION_SCHEMES:
        config = replace(scheme_config(routing), submit_batch=SUBMIT_BATCH)
        # Cold baseline: a fresh cluster runs only the steady segment, so
        # its mean carries the compulsory misses (and, for adaptive, the
        # audition) that a long-lived service pays exactly once.
        cold = GRoutingCluster(ctx.graph, config, assets=ctx.assets).run(steady)
        with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
            with service.session() as warm_session:
                warm_session.stream(warmup)
                warm_report = warm_session.report()
            with service.session() as steady_session:
                steady_session.stream(steady)
                steady_report = steady_session.report()
            if routing == "adaptive":
                snapshot = service.strategy.snapshot()
        rows.append([
            routing,
            round(cold.mean_response_time() * 1e6, 2),
            round(steady_report.mean_response_time() * 1e6, 2),
            round(
                cold.mean_response_time() / steady_report.mean_response_time(),
                3,
            ),
            round(cold.cache_hit_rate(), 3),
            round(warm_report.cache_hit_rate(), 3),
            round(steady_report.cache_hit_rate(), 3),
        ])

    # One continuous serve of the full stream, windowed: the session API's
    # answer to "measure steady state without a separate warm-up run".
    # (Reusing `full` is fine — ids only need uniqueness per router, and
    # this is a fresh service.)
    config = replace(scheme_config("adaptive"), submit_batch=SUBMIT_BATCH)
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
        with service.session() as session:
            session.stream(full)
            continuous = session.report()
    window_stats = continuous.per_window_stats(NUM_WINDOWS)
    window_rows = [
        [
            w["window"],
            w["queries"],
            round(float(w["mean_response_ms"]) * 1e3, 2),
            round(float(w["cache_hit_rate"]), 3),
        ]
        for w in window_stats
    ]

    emit(
        "Session steady state vs cold start on the mixed workload "
        "(mean response in µs)",
        ["routing", "cold", "steady", "speedup",
         "cold hits", "warm-up hits", "steady hits"],
        rows,
        "session_steady_state",
    )
    emit(
        "One continuous adaptive serve, windowed "
        f"({NUM_WINDOWS} equal windows, response in µs)",
        ["window", "queries", "mean", "hit rate"],
        window_rows,
        "session_steady_state_windows",
    )
    return {
        "response": rows,
        "adaptive_snapshot": snapshot,
        "windows": window_stats,
        "continuous_queries": len(continuous.records),
    }
