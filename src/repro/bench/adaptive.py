"""Adaptive-routing experiment: a mixed workload with no single best scheme.

The paper evaluates each routing scheme on a homogeneous hotspot workload.
Production query streams are mixtures: deep traversals around hotspots,
uniform point lookups, and repeat-heavy random walks, interleaved. Each
component favours a *different* static scheme (embed's topology locality,
hash's repeat locality, near-zero decision cost), so a fixed choice leaves
performance behind. This experiment shows ``routing="adaptive"`` matching
or beating the best static scheme on the mixture by re-ranking arms
per query class from the live routing feedback.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from ..core import GraphService
from ..core.queries import Query
from ..workloads import hotspot_workload, uniform_workload, zipfian_workload
from .experiments import scheme_config
from .harness import ExperimentContext, emit, get_context

#: The schemes compared on the mixture (no_cache is out of the running).
MIXED_SCHEMES = ("next_ready", "hash", "landmark", "embed", "adaptive")

#: Every scheme submits in identical waves so the comparison isolates the
#: routing policy: adaptive *needs* pipelined submission (feedback must
#: reach it while queries remain), and giving the static schemes a
#: different submission mode would confound the load term of Eq. 3/7.
SUBMIT_BATCH = 128


def mixed_workload(
    ctx: ExperimentContext,
    num_hotspots: int = 80,
    queries_per_hotspot: int = 10,
    num_points: int = 600,
    num_walks: int = 3600,
    seed: int = 11,
) -> List[Query]:
    """Interleaved mixture: hotspot reachability + point lookups + walks.

    Hotspot groups stay contiguous (the paper's arrival model) while the
    point lookups and walks are shuffled between them, emulating a mixed
    stream hitting one router. The stream is walk-dominated — the
    production shape for social/recommendation traffic — which is exactly
    where one static scheme cannot serve everyone: repeat-heavy zipfian
    walks want hash's deterministic placement while the expensive
    traversals want topology-aware routing.
    """
    graph, csr = ctx.graph, ctx.assets.csr_both
    traversals = hotspot_workload(
        graph,
        num_hotspots=num_hotspots,
        queries_per_hotspot=queries_per_hotspot,
        radius=2,
        hops=3,
        mix=("reachability",),
        seed=seed,
        csr=csr,
    )
    points = uniform_workload(
        graph, num_queries=num_points, hops=1, mix=("aggregation",),
        seed=seed + 1, csr=csr,
    )
    walks = zipfian_workload(
        graph, num_queries=num_walks, hops=4, skew=2.0, mix=("walk",),
        seed=seed + 2, csr=csr,
    )
    # Blocks: one per hotspot group, one per point/walk query.
    blocks: List[List[Query]] = [
        traversals[i : i + queries_per_hotspot]
        for i in range(0, len(traversals), queries_per_hotspot)
    ]
    blocks.extend([q] for q in points)
    blocks.extend([q] for q in walks)
    rng = np.random.default_rng(seed + 3)
    order = rng.permutation(len(blocks))
    return [query for idx in order for query in blocks[idx]]


def adaptive_routing_mixed(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Mean/per-class response of every scheme on the mixed workload."""
    ctx = get_context(dataset, scale=scale)
    queries = mixed_workload(ctx)
    rows: List[List[object]] = []
    per_arm: Dict[str, int] = {}
    snapshot: Dict[str, object] = {}
    for routing in MIXED_SCHEMES:
        # Session API, cold service per scheme: identical to the old
        # one-shot runs (one session from cold caches), but routed through
        # the public serving path so this benchmark exercises it.
        with GraphService.open(
            ctx.graph,
            replace(scheme_config(routing), submit_batch=SUBMIT_BATCH),
            assets=ctx.assets,
        ) as service:
            with service.session() as session:
                session.stream(queries)
                report = session.report()
            if routing == "adaptive":
                snapshot = service.strategy.snapshot()
        classes = report.per_class_stats()
        rows.append([
            routing,
            round(report.mean_response_time() * 1e6, 2),
            round(report.percentile_response_time(95) * 1e6, 2),
            round(classes.get("point", {}).get("mean_response_ms", 0.0) * 1e3, 2),
            round(classes.get("walk", {}).get("mean_response_ms", 0.0) * 1e3, 2),
            round(
                classes.get("traversal", {}).get("mean_response_ms", 0.0) * 1e3,
                2,
            ),
            round(report.cache_hit_rate(), 3),
            report.stolen_count(),
        ])
        if routing == "adaptive":
            per_arm = report.per_arm_counts()
    emit(
        "Adaptive routing on a mixed workload (response times in µs)",
        ["routing", "mean", "p95", "point", "walk", "traversal",
         "hit rate", "stolen"],
        rows,
        "adaptive_routing_mixed",
    )
    emit(
        "Adaptive routing: per-arm decisions on the mixed workload",
        ["arm", "queries"],
        sorted(per_arm.items()),
        "adaptive_routing_arms",
    )
    return {"response": rows, "per_arm": per_arm, "snapshot": snapshot}
