"""Sensitivity experiments (Figures 11-16) and design-choice ablations.

Sensitivity sweeps follow §4.6-§4.8: load factor, EMA smoothing, embedding
dimensionality, landmark count and separation, hotspot radius, traversal
depth, and the other datasets. The ablations cover design decisions the
paper fixes without sweeping (cache policy, embedding method, partitioner,
query stealing).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..baselines import SedgeSystem, hash_partition
from ..embedding import GraphEmbedding
from .experiments import SCHEMES, run_scheme
from .harness import emit, get_context


# -- Figure 11 ----------------------------------------------------------------
def fig11a_load_factor(
    load_factors: Sequence[float] = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
                                     10000.0),
) -> List[List[object]]:
    """Fig 11(a): throughput vs load factor (smart schemes + hash line)."""
    ctx = get_context("webgraph")
    hash_throughput = round(run_scheme(ctx, "hash").throughput(), 1)
    rows = []
    for load_factor in load_factors:
        embed = run_scheme(ctx, "embed", load_factor=load_factor)
        landmark = run_scheme(ctx, "landmark", load_factor=load_factor)
        rows.append([
            load_factor,
            round(embed.throughput(), 1),
            round(landmark.throughput(), 1),
            hash_throughput,
        ])
    emit("Fig 11(a): throughput (queries/s) vs load factor",
         ["load factor", "embed", "landmark", "hash (reference)"],
         rows, "fig11a_load_factor")
    return rows


def fig11b_alpha(
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[List[object]]:
    """Fig 11(b): response time vs EMA smoothing parameter alpha."""
    ctx = get_context("webgraph")
    hash_ms = round(run_scheme(ctx, "hash").mean_response_time() * 1e3, 4)
    rows = []
    for alpha in alphas:
        embed = run_scheme(ctx, "embed", alpha=alpha)
        rows.append([
            alpha,
            round(embed.mean_response_time() * 1e3, 4),
            hash_ms,
        ])
    emit("Fig 11(b): response time (ms) vs smoothing parameter alpha",
         ["alpha", "embed", "hash (reference)"], rows, "fig11b_alpha")
    return rows


# -- Figure 12 ----------------------------------------------------------------
def fig12a_embedding_error(
    dims: Sequence[int] = (2, 5, 10, 15, 20),
    num_pairs: int = 300,
) -> List[List[object]]:
    """Fig 12(a): relative distance error vs embedding dimensionality.

    Pairs are drawn from the hotspot workload (query nodes of the same
    2-hop hotspot), matching the paper's "2-Hop Hotspot" curve. Uses the
    batch Simplex Downhill refinement on a half-scale graph.
    """
    ctx = get_context("webgraph", scale=0.25)
    csr = ctx.assets.csr_both
    queries = ctx.workload(num_hotspots=50)
    rng = np.random.default_rng(5)
    pairs = []
    nodes = [q.node for q in queries]
    # Same-hotspot pairs: consecutive queries belong to one hotspot.
    for i in range(0, len(nodes) - 1, 2):
        if nodes[i] != nodes[i + 1]:
            pairs.append((nodes[i], nodes[i + 1]))
    while len(pairs) < num_pairs:
        a, b = rng.choice(csr.node_ids, size=2, replace=False)
        pairs.append((int(a), int(b)))
    pairs = pairs[:num_pairs]

    distances = ctx.assets.landmark_distances(96, 3)
    rows = []
    for dim in dims:
        embedding = GraphEmbedding.embed(
            csr, dim=dim, landmark_distances=distances, method="simplex",
            nm_iterations=60,
        )
        errors = embedding.relative_errors(csr, pairs, max_hops=10)
        rows.append([dim, round(float(errors.mean()), 4)])
    emit("Fig 12(a): mean relative distance error vs dimensions "
         "(2-hop hotspot pairs)",
         ["dimensions", "relative error"], rows, "fig12a_embedding_error")
    return rows


def fig12b_dimension_response(
    dims: Sequence[int] = (2, 5, 10, 15, 20, 25, 30),
) -> List[List[object]]:
    """Fig 12(b): response time vs dimensionality (accuracy/cost trade)."""
    ctx = get_context("webgraph")
    hash_ms = round(run_scheme(ctx, "hash").mean_response_time() * 1e3, 4)
    rows = []
    for dim in dims:
        report = run_scheme(ctx, "embed", dim=dim)
        rows.append([dim, round(report.mean_response_time() * 1e3, 4),
                     hash_ms])
    emit("Fig 12(b): response time (ms) vs embedding dimensionality",
         ["dimensions", "embed", "hash (reference)"], rows,
         "fig12b_dimension_response")
    return rows


# -- Figure 13 ----------------------------------------------------------------
def fig13a_landmark_count(
    counts: Sequence[int] = (4, 8, 16, 32, 64, 96, 128),
) -> List[List[object]]:
    """Fig 13(a): response time vs number of landmarks."""
    ctx = get_context("webgraph")
    hash_ms = round(run_scheme(ctx, "hash").mean_response_time() * 1e3, 4)
    rows = []
    for count in counts:
        embed = run_scheme(ctx, "embed", num_landmarks=count)
        landmark = run_scheme(ctx, "landmark", num_landmarks=count)
        rows.append([
            count,
            round(embed.mean_response_time() * 1e3, 4),
            round(landmark.mean_response_time() * 1e3, 4),
            hash_ms,
        ])
    emit("Fig 13(a): response time (ms) vs number of landmarks",
         ["landmarks", "embed", "landmark", "hash (reference)"],
         rows, "fig13a_landmark_count")
    return rows


def fig13b_landmark_separation(
    separations: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[List[object]]:
    """Fig 13(b): response time vs minimum landmark separation (hops)."""
    ctx = get_context("webgraph")
    hash_ms = round(run_scheme(ctx, "hash").mean_response_time() * 1e3, 4)
    rows = []
    for separation in separations:
        embed = run_scheme(ctx, "embed", min_separation=separation)
        landmark = run_scheme(ctx, "landmark", min_separation=separation)
        rows.append([
            separation,
            round(embed.mean_response_time() * 1e3, 4),
            round(landmark.mean_response_time() * 1e3, 4),
            hash_ms,
        ])
    emit("Fig 13(b): response time (ms) vs min landmark separation (hops)",
         ["separation", "embed", "landmark", "hash (reference)"],
         rows, "fig13b_landmark_separation")
    return rows


# -- Figures 14 / 15 / 16 --------------------------------------------------------
def fig14_hotspot_radius(
    radii: Sequence[int] = (1, 2),
) -> Dict[str, List[List[object]]]:
    """Fig 14: response time and hits/misses for r-hop hotspots, h=2."""
    ctx = get_context("webgraph")
    response_rows, cache_rows = [], []
    for radius in radii:
        queries = ctx.workload(radius=radius)
        for scheme in SCHEMES:
            report = run_scheme(ctx, scheme, queries=queries)
            response_rows.append([
                f"{radius}-hop", scheme,
                round(report.mean_response_time() * 1e3, 4),
            ])
            cache_rows.append([
                f"{radius}-hop", scheme,
                report.total_cache_hits(), report.total_cache_misses(),
            ])
    emit("Fig 14(a): response time (ms), r-hop hotspot, 2-hop traversal",
         ["hotspot", "scheme", "response (ms)"], response_rows,
         "fig14a_response")
    emit("Fig 14(b,c): cache hits and misses by scheme",
         ["hotspot", "scheme", "hits", "misses"], cache_rows,
         "fig14bc_cache")
    return {"response": response_rows, "cache": cache_rows}


def fig15_traversal_depth(
    depths: Sequence[int] = (1, 2, 3),
) -> List[List[object]]:
    """Fig 15: response time for h-hop traversals, 2-hop hotspots."""
    ctx = get_context("webgraph")
    rows = []
    for hops in depths:
        queries = ctx.workload(hops=hops)
        for scheme in SCHEMES:
            report = run_scheme(ctx, scheme, queries=queries)
            rows.append([
                hops, scheme, round(report.mean_response_time() * 1e3, 4),
            ])
    emit("Fig 15: response time (ms) vs traversal depth h",
         ["h", "scheme", "response (ms)"], rows, "fig15_traversal_depth")
    return rows


def fig16_other_datasets(
    datasets: Sequence[str] = ("memetracker", "friendster"),
) -> List[List[object]]:
    """Fig 16: response time by scheme on Memetracker and Friendster."""
    rows = []
    for dataset in datasets:
        ctx = get_context(dataset)
        queries = ctx.workload()
        for scheme in SCHEMES:
            report = run_scheme(ctx, scheme, queries=queries)
            rows.append([
                dataset, scheme,
                round(report.mean_response_time() * 1e3, 4),
                round(report.cache_hit_rate(), 3),
            ])
    emit("Fig 16: response time (ms) on other datasets",
         ["dataset", "scheme", "response (ms)", "hit rate"],
         rows, "fig16_other_datasets")
    return rows


# -- Ablations (beyond the paper) -----------------------------------------------
def ablation_cache_policy(
    policies: Sequence[str] = ("lru", "fifo", "lfu"),
) -> List[List[object]]:
    """LRU vs FIFO vs LFU under embed routing (paper fixes LRU, §2.3)."""
    ctx = get_context("webgraph")
    rows = []
    for policy in policies:
        report = run_scheme(ctx, "embed", cache_policy=policy,
                            cache_capacity_bytes=512 << 10)
        rows.append([
            policy,
            round(report.mean_response_time() * 1e3, 4),
            round(report.cache_hit_rate(), 3),
        ])
    emit("Ablation: cache eviction policy (512 KiB cache, embed routing)",
         ["policy", "response (ms)", "hit rate"], rows,
         "ablation_cache_policy")
    return rows


def ablation_embed_method() -> List[List[object]]:
    """Simplex Downhill refinement vs plain LMDS for routing quality."""
    ctx = get_context("webgraph", scale=0.5)
    rows = []
    for method in ("lmds", "simplex"):
        report = run_scheme(ctx, "embed", embed_method=method)
        rows.append([
            method,
            round(report.mean_response_time() * 1e3, 4),
            round(report.cache_hit_rate(), 3),
        ])
    emit("Ablation: embedding method (half-scale webgraph)",
         ["method", "response (ms)", "hit rate"], rows,
         "ablation_embed_method")
    return rows


def ablation_partitioner() -> List[List[object]]:
    """SEDGE with METIS-style vs hash partitioning (partition quality)."""
    ctx = get_context("webgraph")
    queries = ctx.workload()
    metis = SedgeSystem(ctx.assets, num_servers=12).run(queries)
    hashed = SedgeSystem(
        ctx.assets, num_servers=12,
        partition_labels=hash_partition(ctx.assets.csr_both, 12),
    ).run(queries)
    rows = [
        ["metis-like", round(metis.throughput(), 1)],
        ["hash", round(hashed.throughput(), 1)],
    ]
    emit("Ablation: SEDGE partitioning quality (throughput, queries/s)",
         ["partitioner", "throughput"], rows, "ablation_partitioner")
    return rows


def ablation_query_stealing() -> List[List[object]]:
    """Query stealing on/off under a skewed hotspot workload (§4.6)."""
    ctx = get_context("webgraph")
    queries = ctx.workload()
    rows = []
    for steal in (True, False):
        report = run_scheme(ctx, "landmark", queries=queries, steal=steal)
        rows.append([
            "on" if steal else "off",
            round(report.throughput(), 1),
            round(report.load_imbalance(), 2),
            report.stolen_count(),
        ])
    emit("Ablation: query stealing (landmark routing)",
         ["stealing", "throughput", "load imbalance", "stolen"],
         rows, "ablation_query_stealing")
    return rows
