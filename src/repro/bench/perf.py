"""Hot-path performance benchmark: kernel microbench + operator-mix clock.

This is the repo's perf-trajectory anchor. Two measurements land in
``bench_results/perf_hotpath.json``:

1. **Kernel microbench** — an identical event program (timeout-chain
   processes plus process-spawn/``all_of`` fan-outs, the two shapes that
   dominate every simulation here) run on the frozen pre-overhaul kernel
   (:mod:`repro.bench.legacy_kernel`) and on every live :mod:`repro.sim`
   kernel (heap, calendar, and native when a C toolchain is present), in
   the same interpreter, reporting the p50 of interleaved runs per
   kernel. Reporting *every* events/sec number makes the speedups
   machine-fair: re-measure anywhere and the ratios are comparable,
   unlike a stored absolute from someone else's hardware.
2. **Operator-mix wall clock** — the six-operator mixed workload under
   adaptive routing, timed end to end, with kernel events/sec and
   queries/sec. This is the number future PRs watch: simulated results are
   pinned bit-for-bit by the parity discipline, so any change here is pure
   implementation speed.

CI runs this at ``REPRO_BENCH_SCALE=0.05`` and hard-gates only the
microbench ratio (machine-stable); see ``benchmarks/test_perf_kernel.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional

from ..core import GraphService
from ..sim import Environment
from . import legacy_kernel
from .adaptive import SUBMIT_BATCH
from .experiments import scheme_config
from .harness import emit, get_context
from .operator_mix import operator_mix_workload

#: Microbench shape: chain processes dominate (the gather/serve pattern),
#: with a fan-out section for the spawn + all_of shape.
CHAIN_PROCESSES = 16
CHAIN_STEPS = 30_000
FANOUT_ROUNDS = 40
FANOUT_WIDTH = 4
FANOUT_CHAIN = 20
FANOUT_PROCESSES = 16
#: Runs per kernel; the reported number is the p50 (median) of these.
#: Runs are interleaved across kernels (legacy, heap, calendar, native,
#: legacy, ...) so thermal/governor drift hits every kernel alike, and
#: the median — not the best — is reported so one lucky quiet run can't
#: flatter a kernel on a noisy CI machine.
MICROBENCH_RUNS = 3


def _kernel_program(env) -> float:
    """Run the shared microbench program on ``env``; returns wall seconds.

    Only uses ``timeout``/``process``/``all_of`` so the identical code
    drives both the legacy and the rewritten kernel.
    """

    def chain(steps):
        for _ in range(steps):
            yield env.timeout(1.0)

    def fanout():
        for _ in range(FANOUT_ROUNDS):
            yield env.all_of(
                [env.process(chain(FANOUT_CHAIN)) for _ in range(FANOUT_WIDTH)]
            )

    roots = [env.process(chain(CHAIN_STEPS)) for _ in range(CHAIN_PROCESSES)]
    roots += [env.process(fanout()) for _ in range(FANOUT_PROCESSES)]
    done = env.all_of(roots)
    start = time.perf_counter()
    env.run(until=done)
    return time.perf_counter() - start


def _make_env(kind: str):
    if kind == "legacy":
        return legacy_kernel.Environment()
    return Environment(kernel=kind)


def kernel_microbench() -> Dict[str, object]:
    """p50-of-N events/sec of the shared program on every kernel.

    Measures the frozen legacy heap, the live heap, the calendar kernel,
    and — when a C toolchain is present — the native loop. The headline
    ``speedup`` is best-available-kernel vs legacy; ``speedup_calendar``
    tracks the pure-python floor so the gate works on machines without a
    compiler.
    """
    kinds = ["legacy", "heap", "calendar"]
    probe = Environment(kernel="native")
    native_ok = probe.kernel == "native"
    if native_ok:
        kinds.append("native")
    walls: Dict[str, list] = {kind: [] for kind in kinds}
    num_events = 0
    for _ in range(MICROBENCH_RUNS):
        for kind in kinds:
            env = _make_env(kind)
            walls[kind].append(_kernel_program(env))
            if kind == "calendar":
                # The program — and thus the event count — is identical
                # on every kernel; read it off an instrumented one (the
                # frozen legacy kernel has no events_processed counter).
                num_events = env.events_processed
    p50 = {kind: sorted(times)[len(times) // 2]
           for kind, times in walls.items()}
    result: Dict[str, object] = {
        "events": float(num_events),
        "runs": float(MICROBENCH_RUNS),
        "kernels": kinds[1:],
    }
    for kind in kinds:
        result[f"{kind}_wall_seconds"] = p50[kind]
        result[f"{kind}_events_per_second"] = num_events / p50[kind]
    legacy_eps = result["legacy_events_per_second"]
    for kind in kinds[1:]:
        result[f"speedup_{kind}"] = (
            result[f"{kind}_events_per_second"] / legacy_eps)
    best = "native" if native_ok else "calendar"
    result["kernel"] = best
    result["speedup"] = result[f"speedup_{best}"]
    if not native_ok:
        result["native_unavailable"] = probe.kernel_fallback_reason
    return result


def operator_mix_clock(dataset: str = "webgraph",
                       scale: Optional[float] = None) -> Dict[str, float]:
    """Wall-clock one adaptive-routing pass over the six-operator mix."""
    ctx = get_context(dataset, scale=scale)
    queries = operator_mix_workload(ctx)
    config = replace(scheme_config("adaptive"), submit_batch=SUBMIT_BATCH)
    # Untimed warmup pass: forces the memoized context's lazy one-time
    # preprocessing (CSR views, record sizes, landmark BFS, embedding) so
    # the clock below measures the serving hot path — same steady state
    # every benchmark sharing the context sees. The timed pass uses a
    # fresh service, so processor caches still start cold.
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as warmup:
        with warmup.session() as session:
            session.stream(queries)
            session.report()
    start = time.perf_counter()
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
        env = service.env
        with service.session() as session:
            session.stream(queries)
            report = session.report()
        events = env.events_processed
    wall = time.perf_counter() - start
    return {
        "queries": float(len(report.records)),
        "wall_seconds": wall,
        "events": float(events),
        "events_per_second": events / wall,
        "queries_per_second": len(report.records) / wall,
        "mean_response_us": report.mean_response_time() * 1e6,
    }


def perf_hotpath(dataset: str = "webgraph",
                 scale: Optional[float] = None) -> Dict[str, object]:
    """Run both measurements and persist ``bench_results/perf_hotpath.json``."""
    micro = kernel_microbench()
    mix = operator_mix_clock(dataset, scale=scale)
    rows = [
        [f"kernel_micro/{kind}", round(micro[f"{kind}_wall_seconds"], 4),
         round(micro[f"{kind}_events_per_second"]), ""]
        for kind in ["legacy"] + list(micro["kernels"])
    ]
    rows += [
        [f"kernel_micro/speedup_{kind}", "",
         round(micro[f"speedup_{kind}"], 2), ""]
        for kind in micro["kernels"]
    ]
    rows += [
        ["kernel_micro/speedup", "", round(micro["speedup"], 2), ""],
        ["operator_mix/adaptive", round(mix["wall_seconds"], 4),
         round(mix["events_per_second"]), round(mix["queries_per_second"], 1)],
    ]
    emit(
        "Hot-path performance (events/sec; simulated results are pinned)",
        ["measurement", "wall clock (s)", "events/sec", "queries/sec"],
        rows,
        "perf_hotpath",
    )
    return {"kernel_microbench": micro, "operator_mix": mix, "rows": rows}
