"""Hot-path performance benchmark: kernel microbench + operator-mix clock.

This is the repo's perf-trajectory anchor. Two measurements land in
``bench_results/perf_hotpath.json``:

1. **Kernel microbench** — an identical event program (timeout-chain
   processes plus process-spawn/``all_of`` fan-outs, the two shapes that
   dominate every simulation here) run on the frozen pre-overhaul kernel
   (:mod:`repro.bench.legacy_kernel`) and on the live :mod:`repro.sim`
   kernel, in the same interpreter. Reporting *both* events/sec numbers
   makes the speedup machine-fair: re-measure anywhere and the ratio is
   comparable, unlike a stored absolute from someone else's hardware.
2. **Operator-mix wall clock** — the six-operator mixed workload under
   adaptive routing, timed end to end, with kernel events/sec and
   queries/sec. This is the number future PRs watch: simulated results are
   pinned bit-for-bit by the parity discipline, so any change here is pure
   implementation speed.

CI runs this at ``REPRO_BENCH_SCALE=0.05`` and hard-gates only the
microbench ratio (machine-stable); see ``benchmarks/test_perf_kernel.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Optional

from ..core import GraphService
from ..sim import Environment
from . import legacy_kernel
from .adaptive import SUBMIT_BATCH
from .experiments import scheme_config
from .harness import emit, get_context
from .operator_mix import operator_mix_workload

#: Microbench shape: chain processes dominate (the gather/serve pattern),
#: with a fan-out section for the spawn + all_of shape.
CHAIN_PROCESSES = 16
CHAIN_STEPS = 30_000
FANOUT_ROUNDS = 40
FANOUT_WIDTH = 4
FANOUT_CHAIN = 20
FANOUT_PROCESSES = 16
#: Best-of repetitions per kernel (interleaved to share thermal state).
MICROBENCH_REPS = 5


def _kernel_program(env) -> float:
    """Run the shared microbench program on ``env``; returns wall seconds.

    Only uses ``timeout``/``process``/``all_of`` so the identical code
    drives both the legacy and the rewritten kernel.
    """

    def chain(steps):
        for _ in range(steps):
            yield env.timeout(1.0)

    def fanout():
        for _ in range(FANOUT_ROUNDS):
            yield env.all_of(
                [env.process(chain(FANOUT_CHAIN)) for _ in range(FANOUT_WIDTH)]
            )

    roots = [env.process(chain(CHAIN_STEPS)) for _ in range(CHAIN_PROCESSES)]
    roots += [env.process(fanout()) for _ in range(FANOUT_PROCESSES)]
    done = env.all_of(roots)
    start = time.perf_counter()
    env.run(until=done)
    return time.perf_counter() - start


def kernel_microbench() -> Dict[str, float]:
    """Events/sec of the shared program on the legacy vs rewritten kernel."""
    legacy_best = new_best = float("inf")
    num_events = 0
    for _ in range(MICROBENCH_REPS):
        legacy_best = min(legacy_best,
                          _kernel_program(legacy_kernel.Environment()))
        env = Environment()
        new_best = min(new_best, _kernel_program(env))
        # The program — and thus the event count — is identical on both
        # kernels; read it off the instrumented one.
        num_events = env.events_processed
    legacy_eps = num_events / legacy_best
    new_eps = num_events / new_best
    return {
        "events": float(num_events),
        "legacy_wall_seconds": legacy_best,
        "legacy_events_per_second": legacy_eps,
        "rewritten_wall_seconds": new_best,
        "rewritten_events_per_second": new_eps,
        "speedup": new_eps / legacy_eps,
    }


def operator_mix_clock(dataset: str = "webgraph",
                       scale: Optional[float] = None) -> Dict[str, float]:
    """Wall-clock one adaptive-routing pass over the six-operator mix."""
    ctx = get_context(dataset, scale=scale)
    queries = operator_mix_workload(ctx)
    config = replace(scheme_config("adaptive"), submit_batch=SUBMIT_BATCH)
    # Untimed warmup pass: forces the memoized context's lazy one-time
    # preprocessing (CSR views, record sizes, landmark BFS, embedding) so
    # the clock below measures the serving hot path — same steady state
    # every benchmark sharing the context sees. The timed pass uses a
    # fresh service, so processor caches still start cold.
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as warmup:
        with warmup.session() as session:
            session.stream(queries)
            session.report()
    start = time.perf_counter()
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
        env = service.env
        with service.session() as session:
            session.stream(queries)
            report = session.report()
        events = env.events_processed
    wall = time.perf_counter() - start
    return {
        "queries": float(len(report.records)),
        "wall_seconds": wall,
        "events": float(events),
        "events_per_second": events / wall,
        "queries_per_second": len(report.records) / wall,
        "mean_response_us": report.mean_response_time() * 1e6,
    }


def perf_hotpath(dataset: str = "webgraph",
                 scale: Optional[float] = None) -> Dict[str, object]:
    """Run both measurements and persist ``bench_results/perf_hotpath.json``."""
    micro = kernel_microbench()
    mix = operator_mix_clock(dataset, scale=scale)
    rows = [
        ["kernel_micro/legacy", round(micro["legacy_wall_seconds"], 4),
         round(micro["legacy_events_per_second"]), ""],
        ["kernel_micro/rewritten", round(micro["rewritten_wall_seconds"], 4),
         round(micro["rewritten_events_per_second"]), ""],
        ["kernel_micro/speedup", "", round(micro["speedup"], 2), ""],
        ["operator_mix/adaptive", round(mix["wall_seconds"], 4),
         round(mix["events_per_second"]), round(mix["queries_per_second"], 1)],
    ]
    emit(
        "Hot-path performance (events/sec; simulated results are pinned)",
        ["measurement", "wall clock (s)", "events/sec", "queries/sec"],
        rows,
        "perf_hotpath",
    )
    return {"kernel_microbench": micro, "operator_mix": mix, "rows": rows}
