"""Fig 10, live edition: routing robustness under real graph churn.

The legacy :func:`~repro.bench.experiments.fig10_graph_updates` varies the
*fraction of the graph seen at preprocessing* — a static proxy the paper
uses because its system cannot mutate a running cluster. This experiment
runs the real thing: one churn stream (hotspot queries interleaved with
hotspot-targeted :class:`~repro.graph.updates.GraphUpdate` bursts, the hot
set revisited round after round, a share of queries anchored at freshly
added nodes) replayed against several routing configurations of a live
:class:`~repro.core.service.GraphService`. Updates flow through storage
writes, cache invalidation and routing staleness; the knob under study is
the incremental refresh:

* ``none`` — staleness only accumulates, so an ever-growing share of the
  hot set routes by hash fallback: smart routing decays toward hash;
* ``every N updates`` — the landmark index / embedding re-index only the
  dirty region periodically, bounding staleness, so placements earned by
  earlier rounds keep paying off when traffic returns.

Caches are sized to a fixed fraction of the stored graph
(:data:`CACHE_FRACTION`) rather than the §4.1 16 MiB default: at any
scale, the churning hot set must exceed one processor's cache for
*placement* to matter across revisits — with the whole graph
cache-resident, every scheme converges to warm caches and the experiment
measures nothing (the regime Fig 9's capacity sweep maps out).

Every configuration replays an identical stream over an identical
starting graph (the generator reads only the initial snapshot), and each
gets its own graph copy plus *cloned* preprocessing artifacts, so runs
are independent and the shared experiment context stays pristine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import GraphAssets, GraphService
from ..workloads.updates import churn_stream
from .experiments import scheme_config
from .harness import emit, get_context

#: Refresh cadence of the refreshing configurations.
REFRESH_INTERVAL = 64

#: (routing, refresh interval in applied updates; None = never refresh).
LIVE_UPDATE_CONFIGS = (
    ("hash", None),
    ("embed", None),
    ("embed", REFRESH_INTERVAL),
    ("landmark", None),
    ("landmark", REFRESH_INTERVAL),
    ("adaptive", None),
    ("adaptive", REFRESH_INTERVAL),
)

#: Wave size: identical for every scheme so updates land at the same
#: stream positions relative to query submission everywhere.
SUBMIT_BATCH = 128

#: Per-processor cache = stored graph bytes / CACHE_FRACTION (floor
#: CACHE_FLOOR): big enough to hold a few hotspot neighborhoods, far too
#: small for the whole graph.
CACHE_FRACTION = 24
CACHE_FLOOR = 32 << 10

#: Churn shape: a fixed hot set of 25 balls revisited over 4 rounds (hot
#: regions stay hot while they churn), one update burst at each visit's
#: head and mid-visit, ~35% of each ball's queries anchored at nodes
#: churn added there earlier.
CHURN = dict(
    num_hotspots=25,
    rounds=4,
    queries_per_visit=10,
    radius=2,
    hops=2,
    update_every=5,
    updates_per_burst=3,
    new_node_prob=0.5,
    remove_prob=0.2,
    attach_degree=3,
    query_new_prob=0.35,
    seed=23,
)


def _refresh_label(interval: Optional[int]) -> str:
    return "none" if interval is None else f"every {interval}"


def fig10_live_updates(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> List[List[object]]:
    """Response time under live churn, by routing scheme and refresh mode."""
    ctx = get_context(dataset, scale=scale)
    # Preprocess once on the pristine graph; every run gets clones.
    base_index = ctx.assets.landmark_index(7, 96, 3)
    base_embedding = ctx.assets.embedding(
        dim=10, num_landmarks=96, min_separation=3, method="lmds"
    )
    cache_bytes = max(
        CACHE_FLOOR, ctx.assets.total_graph_bytes() // CACHE_FRACTION
    )

    rows: List[List[object]] = []
    for routing, interval in LIVE_UPDATE_CONFIGS:
        graph = ctx.graph.copy()
        assets = GraphAssets(graph)
        config = scheme_config(
            routing,
            submit_batch=SUBMIT_BATCH,
            update_refresh_interval=interval,
            cache_capacity_bytes=cache_bytes,
        )
        service = GraphService(
            graph,
            config,
            assets=assets,
            landmark_index=base_index.clone(),
            embedding=base_embedding.clone(),
        )
        with service:
            with service.session() as session:
                submitted = session.stream(
                    churn_stream(graph, csr=assets.csr_both, **CHURN)
                )
                report = session.report()
            updates = service.updates
            stale_fraction = (
                len(updates.stale) / graph.num_nodes if graph.num_nodes else 0.0
            )
            rows.append([
                routing,
                _refresh_label(interval),
                round(report.mean_response_time() * 1e3, 4),
                round(report.cache_hit_rate(), 4),
                submitted,
                updates.updates_applied,
                updates.nodes_added,
                updates.records_written,
                updates.refreshes,
                round(stale_fraction, 4),
            ])
    emit(
        "Fig 10 (live): response under update churn, by routing x refresh "
        f"(cache {cache_bytes >> 10} KiB/processor)",
        ["routing", "refresh", "mean resp (ms)", "hit rate", "queries",
         "updates", "nodes added", "records rewritten", "refreshes",
         "stale frac (end)"],
        rows,
        "fig10_live_updates",
    )
    return rows


def live_update_summary(rows: List[List[object]]) -> Dict[str, float]:
    """Headline numbers the regression assertions key on."""
    by_config = {(row[0], row[1]): row for row in rows}
    refresh = _refresh_label(REFRESH_INTERVAL)
    return {
        "hash_ms": by_config[("hash", "none")][2],
        "embed_stale_ms": by_config[("embed", "none")][2],
        "embed_refresh_ms": by_config[("embed", refresh)][2],
        "landmark_stale_ms": by_config[("landmark", "none")][2],
        "landmark_refresh_ms": by_config[("landmark", refresh)][2],
        "adaptive_stale_ms": by_config[("adaptive", "none")][2],
        "adaptive_refresh_ms": by_config[("adaptive", refresh)][2],
    }
