"""Six-operator mixed workload: the open operator set under one router.

The adaptive-routing benchmark mixes the paper's three query types; this
one interleaves all six registered operators — the original three plus
personalized PageRank, batched k-source reachability and neighborhood
sampling — into one arrival stream and serves it under static and
adaptive routing. It is the registry's end-to-end proof: every operator
flows through the same engine dispatch, routing-key extraction (k_reach
routes on all k anchors), per-class adaptive arms and per-operator
reporting, and the artifact (``bench_results/operator_mix.json``) breaks
response times down per (scheme, operator).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core import GraphService
from ..core.queries import Query
from ..workloads import (
    hotspot_stream,
    interleave,
    k_reach_stream,
    ppr_stream,
    sample_stream,
    uniform_stream,
    zipfian_stream,
)
from .adaptive import SUBMIT_BATCH
from .experiments import scheme_config
from .harness import ExperimentContext, emit, get_context

#: Schemes compared on the six-operator mixture (adaptive is the headline).
OPERATOR_MIX_SCHEMES = ("hash", "embed", "adaptive")

#: Every registered built-in operator, in catalog order.
ALL_OPERATORS = ("aggregation", "walk", "reachability", "ppr", "k_reach",
                 "sample")


def operator_mix_workload(ctx: ExperimentContext, seed: int = 17) -> List[Query]:
    """One interleaved arrival stream over all six built-in operators.

    Each family keeps its production shape: hotspot-local traversals and
    source batches, zipf-skewed walks and PPR seeds, uniform point
    lookups and GNN sampling seeds.
    """
    graph, csr = ctx.graph, ctx.assets.csr_both
    streams = [
        hotspot_stream(graph, num_hotspots=40, queries_per_hotspot=10,
                       radius=2, hops=2, mix=("aggregation",), seed=seed,
                       csr=csr),
        # Uniform 1-hop aggregations: the `point` class, so the adaptive
        # arms see all three query classes in one mixture.
        uniform_stream(graph, num_queries=500, hops=1, mix=("aggregation",),
                       seed=seed + 7, csr=csr),
        zipfian_stream(graph, num_queries=900, hops=4, skew=2.0,
                       mix=("walk",), seed=seed + 1, csr=csr),
        hotspot_stream(graph, num_hotspots=40, queries_per_hotspot=10,
                       radius=2, hops=3, mix=("reachability",), seed=seed + 2,
                       csr=csr),
        ppr_stream(graph, num_queries=500, walks=4, steps=4, skew=2.0,
                   seed=seed + 3, csr=csr),
        k_reach_stream(graph, num_queries=300, num_sources=4, hops=3,
                       radius=2, seed=seed + 4, csr=csr),
        sample_stream(graph, num_queries=400, fanouts=(8, 4), seed=seed + 5,
                      csr=csr),
    ]
    return list(interleave(streams, seed=seed + 6))


def operator_mix(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Per-(scheme, operator) response on the six-operator mixture."""
    ctx = get_context(dataset, scale=scale)
    queries = operator_mix_workload(ctx)
    rows: List[List[object]] = []
    per_operator: Dict[str, Dict[str, Dict[str, float]]] = {}
    per_arm: Dict[str, int] = {}
    snapshot: Dict[str, object] = {}
    for routing in OPERATOR_MIX_SCHEMES:
        with GraphService.open(
            ctx.graph,
            replace(scheme_config(routing), submit_batch=SUBMIT_BATCH),
            assets=ctx.assets,
        ) as service:
            with service.session() as session:
                session.stream(queries)
                report = session.report()
            if routing == "adaptive":
                snapshot = service.strategy.snapshot()
                per_arm = report.per_arm_counts()
        breakdown = report.per_operator_stats()
        per_operator[routing] = breakdown
        rows.append([
            routing, "(all)", len(report.records),
            round(report.mean_response_time() * 1e6, 2),
            round(report.percentile_response_time(95) * 1e6, 2),
            round(report.cache_hit_rate(), 3),
        ])
        for name in ALL_OPERATORS:
            stats = breakdown.get(name, {})
            rows.append([
                routing, name, int(stats.get("queries", 0)),
                round(float(stats.get("mean_response_ms", 0.0)) * 1e3, 2),
                round(float(stats.get("p95_response_ms", 0.0)) * 1e3, 2),
                "",
            ])
    emit(
        "Six-operator mixed workload (response times in µs)",
        ["routing", "operator", "queries", "mean", "p95", "hit rate"],
        rows,
        "operator_mix",
    )
    return {
        "rows": rows,
        "per_operator": per_operator,
        "per_arm": per_arm,
        "snapshot": snapshot,
        "total_queries": len(queries),
    }
