"""fig_chaos: elasticity under a deterministic fault/join schedule.

The paper's cluster is static: membership is fixed before the first
query and nothing ever fails. This experiment drives the elastic
topology layer (:mod:`repro.core.topology`) with the workload that
stresses every part of it — hotspot queries interleaved with graph
churn (:func:`~repro.workloads.churn_stream`), served open-loop at
:data:`LOAD` x calibrated capacity — while a scripted chaos schedule
kills a storage server, revives it, and joins a cold processor:

* ``baseline`` — no topology layer at all (``topology=None``): the
  static cluster every other benchmark runs, under the same arrivals.
* ``chaos:failover`` — the full elastic stack: queries that hit the
  dead server back off and retry, the repair loop re-homes its records
  onto live servers (directory-redirected reads take over mid-outage),
  the revived server gets its records failed back, and the late joiner
  takes a bounded share of the hash slots with a cold cache.
* ``chaos:no_failover`` — the ablation: same schedule, same retry
  knobs, but no repair and no directory. A query whose key lives on the
  dead server has nowhere else to go — it stalls until the scheduled
  recovery, so the worst serve window cliff-dives while the failover
  run degrades in proportion to the lost capacity.

Caches are starved (:data:`CHAOS_CACHE_BYTES`) for the same reason as
``fig_repartition``: failover is a storage-tier story, and §4.1-sized
caches would absorb the hot set before the outage begins.

The schedule is expressed in fractions of the expected serve span, so
the outage covers the same share of the run at smoke scale and full
scale — the CI gate in ``benchmarks/test_chaos.py`` holds at both.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import (
    ChaosEvent,
    GraphAssets,
    GraphService,
    QueryIdAllocator,
    TopologyConfig,
    WorkloadReport,
    query_ids_from,
)
from ..workloads import churn_stream, poisson_arrivals
from .experiments import scheme_config
from .harness import emit, get_context

#: Offered load as a fraction of calibrated closed-loop capacity: low
#: enough that the 3-of-4-servers regime stays stable under failover,
#: high enough that losing a server without failover visibly stalls.
LOAD = 0.7

#: Per-processor cache, deliberately starved (see module docstring).
CHAOS_CACHE_BYTES = 8 << 10

#: Every scenario routes with the scheme whose rebalance story the
#: topology layer implements (bounded slot movement on join/leave).
ROUTING = "hash"

#: Churn shape (same knobs as fig10's live-update churn, sized down).
CHAOS_CHURN = dict(
    num_hotspots=16,
    rounds=3,
    queries_per_visit=10,
    radius=2,
    hops=2,
    update_every=5,
    updates_per_burst=3,
    new_node_prob=0.5,
    remove_prob=0.2,
    attach_degree=3,
    query_new_prob=0.35,
    seed=29,
)

#: Chaos schedule, as fractions of the expected serve span: one storage
#: server dies early, revives mid-run, and a cold processor joins late.
FAIL_AT, RECOVER_AT, JOIN_AT = 0.20, 0.45, 0.60
CHAOS_SERVER = 0

#: Serve windows the worst-window p99 is taken over: fine enough that
#: the outage dominates a few windows instead of averaging away.
NUM_WINDOWS = 16

#: Retry budget: generous on purpose. With failover a retry usually
#: lands after a few repair rounds; without it the same knobs make the
#: query ride out the whole outage — the ablation measures *stall*, not
#: an error path.
RETRIES = dict(
    retry_limit=4096,
    retry_backoff_s=20.0e-6,
    retry_backoff_cap_s=500.0e-6,
)


def chaos_workload(graph, csr=None) -> List[object]:
    """The mixed query/update stream (deterministic, scoped ids)."""
    with query_ids_from(QueryIdAllocator(start=8_000_000)):
        return list(churn_stream(graph, csr=csr, **CHAOS_CHURN))


def _num_queries(items: List[object]) -> int:
    return sum(1 for item in items if hasattr(item, "query_id"))


def calibrate_capacity(ctx) -> float:
    """Closed-loop query throughput of the churn stream under
    ``next_ready`` on a pristine copy — the capacity anchor for
    :data:`LOAD` at every graph scale."""
    graph = ctx.graph.copy()
    assets = GraphAssets(graph)
    config = scheme_config(
        "next_ready", cache_capacity_bytes=CHAOS_CACHE_BYTES
    )
    items = chaos_workload(graph, csr=assets.csr_both)
    with GraphService.open(graph, config, assets=assets) as service:
        with service.session() as session:
            session.stream(items)
            report = session.report()
    return report.throughput()


def failover_topology(outage_s: float) -> TopologyConfig:
    """The elastic stack under test: many *small* repair rounds.

    Repair legs share the storage servers' FIFO write pipelines with
    query reads, so one big round (say 256 KiB) parks multi-hundred-us
    legs in front of live traffic and the worst serve window inherits
    that head-of-line blocking. A 2 KiB budget at a tight cadence moves
    less bulk data during the outage — the linear scan simply resumes
    where it left off each round — while the demand wave still re-homes
    the keys readers are actually blocked on within a round or two.
    """
    return TopologyConfig(
        failover=True,
        replication=1,
        repair_interval_s=max(outage_s / 800.0, 1e-5),
        repair_byte_budget=2 << 10,
        **RETRIES,
    )


def no_failover_topology() -> TopologyConfig:
    """The ablation: identical retry knobs, no repair, no directory."""
    return TopologyConfig(failover=False, **RETRIES)


def _serve(ctx, topology: Optional[TopologyConfig], rate: float,
           schedule: Optional[List[ChaosEvent]]):
    """One open-loop serve on a fresh graph copy; returns
    (report, topology snapshot or None)."""
    graph = ctx.graph.copy()
    assets = GraphAssets(graph)
    items = chaos_workload(graph, csr=assets.csr_both)
    arrivals = poisson_arrivals(items, rate=rate, tenant="clients",
                                seed=31)
    # Stealing is off: an idle low-id processor would otherwise grab
    # most dispatches (the cluster runs well under capacity between
    # bursts), hiding exactly what this figure measures — who *owns*
    # each key as membership changes, and what the joiner's cold cache
    # costs while it earns its share.
    config = scheme_config(
        ROUTING,
        cache_capacity_bytes=CHAOS_CACHE_BYTES,
        steal=False,
        topology=topology,
    )
    with GraphService.open(graph, config, assets=assets) as service:
        if service.topology is not None:
            service.topology.schedule(schedule or [])
        with service.session() as session:
            session.serve(arrivals)
            report = session.report()
        snapshot = (
            service.topology.snapshot()
            if service.topology is not None else None
        )
    return report, snapshot


def _worst_window_p99_ms(report: WorkloadReport) -> float:
    worst = 0.0
    for window in report.windows(NUM_WINDOWS):
        if window.records:
            worst = max(worst, window.percentile_sojourn_time(99))
    return worst * 1e3


def _point(label: str, report: WorkloadReport,
           snapshot: Optional[Dict[str, object]]) -> Dict[str, object]:
    summary = report.summary()
    recoveries = report.recovery_times_s()
    snapshot = snapshot or {}
    warmup = snapshot.get("warmup", [])
    return {
        "label": label,
        "completed": len(report.records),
        "throughput_qps": report.throughput(),
        "mean_sojourn_ms": report.mean_sojourn_time() * 1e3,
        "p99_sojourn_ms": report.percentile_sojourn_time(99) * 1e3,
        "worst_window_p99_ms": _worst_window_p99_ms(report),
        "downtime_s": float(summary.get("storage_downtime_s", 0.0)),
        "recovery_s": max(recoveries) if recoveries else 0.0,
        "storage_retries": int(snapshot.get("storage_retries", 0)),
        "repair_records": int(snapshot.get("repair_records", 0)),
        "repair_bytes": int(snapshot.get("repair_bytes", 0)),
        "failbacks": int(snapshot.get("failbacks", 0)),
        "demand_repairs": int(snapshot.get("demand_repairs", 0)),
        "write_failures": int(snapshot.get("write_failures", 0)),
        "moved_entries": int(snapshot.get("moved_entries", 0)),
        "failover_keys_left": int(snapshot.get("failover_keys", 0)),
        "suspect_writes_left": int(snapshot.get("suspect_writes", 0)),
        "joiner_queries": sum(
            int(w["queries_executed"]) for w in warmup
        ),
        "epoch": int(snapshot.get("epoch", 0)),
    }


def fig_chaos(
    dataset: str = "webgraph", scale: Optional[float] = None,
) -> Dict[str, object]:
    """Open-loop churn serve across a kill/recover/join schedule."""
    ctx = get_context(dataset, scale=scale)
    capacity = calibrate_capacity(ctx)
    rate = capacity * LOAD
    items = chaos_workload(ctx.graph.copy())
    span_s = len(items) / rate
    outage_s = (RECOVER_AT - FAIL_AT) * span_s
    schedule = [
        ChaosEvent(at=FAIL_AT * span_s, action="fail_server",
                   target=CHAOS_SERVER),
        ChaosEvent(at=RECOVER_AT * span_s, action="recover_server",
                   target=CHAOS_SERVER),
        ChaosEvent(at=JOIN_AT * span_s, action="add_processor"),
    ]

    results: Dict[str, Dict[str, object]] = {}
    for label, topology, events in (
        ("baseline", None, None),
        ("chaos:failover", failover_topology(outage_s), schedule),
        ("chaos:no_failover", no_failover_topology(), schedule),
    ):
        report, snapshot = _serve(ctx, topology, rate, events)
        results[label] = _point(label, report, snapshot)

    rows: List[List[object]] = []
    for point in results.values():
        rows.append([
            point["label"],
            point["completed"],
            round(point["throughput_qps"], 1),
            round(point["mean_sojourn_ms"], 4),
            round(point["p99_sojourn_ms"], 4),
            round(point["worst_window_p99_ms"], 4),
            round(point["downtime_s"] * 1e3, 3),
            round(point["recovery_s"] * 1e3, 3),
            point["storage_retries"],
            point["repair_records"],
            point["repair_bytes"] >> 10,
            point["demand_repairs"],
            point["failbacks"],
            point["moved_entries"],
            point["joiner_queries"],
        ])

    emit(
        "Fig chaos: failover vs no-failover under a kill/recover/join "
        f"schedule ({round(capacity)} qps capacity, {LOAD}x offered, "
        f"outage {round(outage_s * 1e3, 2)} ms, cache "
        f"{CHAOS_CACHE_BYTES >> 10} KiB/processor)",
        ["scenario", "completed", "qps", "mean sojourn (ms)",
         "p99 sojourn (ms)", "worst-window p99 (ms)", "downtime (ms)",
         "recovery (ms)", "retries", "repaired", "repair KiB",
         "demand", "failbacks", "moved slots", "joiner queries"],
        rows,
        "fig_chaos",
    )
    return {
        "capacity_qps": capacity,
        "offered_qps": rate,
        "span_s": span_s,
        "outage_s": outage_s,
        "num_queries": _num_queries(items),
        "rows": rows,
        "results": results,
    }
