"""Frozen copy of the pre-overhaul simulation kernel (PR 1-3 vintage).

This module exists for one purpose: the kernel microbenchmark in
:mod:`repro.bench.perf` runs the *same* event program on this kernel and on
the rewritten :mod:`repro.sim` kernel, so the speedup recorded in
``bench_results/perf_hotpath.json`` is measured on the same machine in the
same process — a machine-fair before/after number rather than a stale
constant. Nothing else may import it.

The copy is verbatim from the last pre-rewrite revision (minus module
docstrings), with ``events.py`` and ``environment.py`` merged into one
file. Do not optimise this module: its slowness is the baseline.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

# repro: allow-module K201 — frozen pre-__slots__ baseline; slotting it would falsify the microbench

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Event:
    """Pre-rewrite event: per-instance ``__dict__``, property-based state."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._state = PENDING

    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = TRIGGERED
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        env._schedule(self, delay=delay)


class Initialize(Event):
    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._value = None
        self._state = TRIGGERED
        self.callbacks.append(process._resume)
        env._schedule(self)


class Process(Event):
    def __init__(self, env: "Environment", generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._exception is not None:
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_process = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.env._active_process = None
                error = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                self._generator.throw(error)
                raise error

            self._target = target
            if target.processed:
                event = target
                continue
            target.callbacks.append(self._resume)
            break
        self.env._active_process = None


class Condition(Event):
    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for child in self.events:
            if child.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for child in self.events:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([event._value for event in self.events])


class AnyOf(Condition):
    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child._exception is not None:
            self.fail(child._exception)
            return
        self.succeed(child._value)


class Environment:
    """Pre-rewrite environment: ``run()`` delegates to ``step()`` per event."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[Any] = None) -> Any:
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return target.value

        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise SimulationError("run(until=...) is in the past")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        if until is not None:
            self._now = limit
        return None
