"""Property-based tests (hypothesis) on core data structures & invariants."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ProcessorCache
from repro.embedding import batch_nelder_mead, nelder_mead
from repro.graph import CSRGraph, Graph, bfs_distances
from repro.storage import AdjacencyRecord, LogStructuredStore, murmur3_32

# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "put"]),
        st.integers(min_value=0, max_value=30),  # key
        st.integers(min_value=0, max_value=64),  # size (for put)
    ),
    max_size=200,
)


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=cache_ops, capacity=st.integers(min_value=0, max_value=256))
    def test_never_exceeds_capacity(self, ops, capacity):
        cache = ProcessorCache(capacity)
        for op, key, size in ops:
            if op == "get":
                cache.get(key)
            else:
                cache.put(key, size)
            assert cache.size_bytes <= capacity

    @settings(max_examples=50, deadline=None)
    @given(ops=cache_ops)
    def test_stats_balance(self, ops):
        cache = ProcessorCache(128)
        gets = 0
        for op, key, size in ops:
            if op == "get":
                cache.get(key)
                gets += 1
            else:
                cache.put(key, size)
        assert cache.stats.hits + cache.stats.misses == gets

    @settings(max_examples=30, deadline=None)
    @given(ops=cache_ops, policy=st.sampled_from(["lru", "fifo", "lfu"]))
    def test_size_bytes_matches_entries(self, ops, policy):
        cache = ProcessorCache(200, policy=policy)
        sizes = {}
        for op, key, size in ops:
            if op == "put":
                cache.put(key, size)
                sizes[key] = size
            else:
                cache.get(key)
        total = sum(sizes[k] for k in sizes if k in cache)
        assert cache.size_bytes == total


# ---------------------------------------------------------------------------
# Record codec round trips
# ---------------------------------------------------------------------------

# The codec canonicalizes empty labels to None (a zero-length label is
# indistinguishable from "no label" on the wire), so strategies use
# non-empty label text.
labels = st.one_of(
    st.none(),
    st.text(alphabet=string.printable, min_size=1, max_size=12),
)
edges = st.lists(
    st.tuples(st.integers(min_value=-(2**40), max_value=2**40), labels),
    max_size=20,
)


class TestRecordProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        node=st.integers(min_value=-(2**40), max_value=2**40),
        out_edges=edges,
        in_edges=edges,
        node_label=labels,
    )
    def test_encode_decode_round_trip(self, node, out_edges, in_edges,
                                      node_label):
        record = AdjacencyRecord(node, out_edges, in_edges, node_label)
        decoded = AdjacencyRecord.decode(record.encode())
        assert decoded == record

    @settings(max_examples=100, deadline=None)
    @given(node=st.integers(min_value=0, max_value=2**30), out_edges=edges,
           in_edges=edges)
    def test_size_bytes_is_exact(self, node, out_edges, in_edges):
        record = AdjacencyRecord(node, out_edges, in_edges)
        assert record.size_bytes() == len(record.encode())


# ---------------------------------------------------------------------------
# MurmurHash3
# ---------------------------------------------------------------------------

class TestMurmurProperties:
    @settings(max_examples=100, deadline=None)
    @given(data=st.binary(max_size=64), seed=st.integers(0, 2**32 - 1))
    def test_range_and_determinism(self, data, seed):
        value = murmur3_32(data, seed)
        assert 0 <= value < 2**32
        assert murmur3_32(data, seed) == value


# ---------------------------------------------------------------------------
# Log-structured store vs a plain dict model
# ---------------------------------------------------------------------------

store_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "get"]),
        st.integers(min_value=0, max_value=15),
        st.binary(min_size=0, max_size=40),
    ),
    max_size=150,
)


class TestStoreModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=store_ops)
    def test_matches_dict_model(self, ops):
        store = LogStructuredStore(segment_bytes=128, clean_threshold=0.4)
        model = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            elif op == "delete" and key in model:
                store.delete(key)
                del model[key]
            else:
                assert (key in store) == (key in model)
                if key in model:
                    assert store.get(key) == model[key]
        assert len(store) == len(model)
        for key, value in model.items():
            assert store.get(key) == value

    @settings(max_examples=30, deadline=None)
    @given(ops=store_ops)
    def test_utilization_bounded(self, ops):
        store = LogStructuredStore(segment_bytes=128, clean_threshold=0.4)
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
            elif op == "delete" and key in store:
                store.delete(key)
            assert 0.0 <= store.utilization() <= 1.0


# ---------------------------------------------------------------------------
# Graph mutation invariants
# ---------------------------------------------------------------------------

graph_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=120,
)


class TestGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(ops=graph_ops)
    def test_edge_count_and_symmetry(self, ops):
        graph = Graph()
        model = set()
        for op, u, v in ops:
            if op == "add":
                graph.add_edge(u, v)
                model.add((u, v))
            elif (u, v) in model:
                graph.remove_edge(u, v)
                model.remove((u, v))
        assert graph.num_edges == len(model)
        assert set(graph.edges()) == model
        # in/out adjacency stay mirror images.
        for u, v in model:
            assert v in graph.out_neighbors(u)
            assert u in graph.in_neighbors(v)

    # Random interleavings of all four mutation kinds — the invariants the
    # live-update path (repro.core.updates) depends on: edge accounting,
    # in/out adjacency symmetry, and node-label cleanup.
    mutation_ops = st.lists(
        st.tuples(
            st.sampled_from(
                ["add_edge", "remove_edge", "add_node", "remove_node"]
            ),
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=10),
        ),
        max_size=150,
    )

    @settings(max_examples=60, deadline=None)
    @given(ops=mutation_ops)
    def test_mutation_interleavings_preserve_invariants(self, ops):
        graph = Graph()
        nodes = set()
        edges = set()
        labels = {}
        for op, u, v in ops:
            if op == "add_edge":
                graph.add_edge(u, v)
                nodes.update((u, v))
                edges.add((u, v))
            elif op == "remove_edge":
                if (u, v) in edges:
                    graph.remove_edge(u, v)
                    edges.remove((u, v))
            elif op == "add_node":
                graph.add_node(u, label=f"L{v}")
                nodes.add(u)
                labels[u] = f"L{v}"
            else:  # remove_node
                if u in nodes:
                    graph.remove_node(u)
                    nodes.discard(u)
                    edges = {e for e in edges if u not in e}
                    labels.pop(u, None)
        # Node and edge accounting.
        assert graph.num_nodes == len(nodes)
        assert set(graph.nodes()) == nodes
        assert graph.num_edges == len(edges)
        assert set(graph.edges()) == edges
        # In/out adjacency stay exact mirror images, per node.
        for node in nodes:
            out = set(graph.out_neighbors(node))
            assert out == {b for a, b in edges if a == node}
            inn = set(graph.in_neighbors(node))
            assert inn == {a for a, b in edges if b == node}
            for succ in out:
                assert node in graph.in_neighbors(succ)
            assert graph.out_degree(node) == len(out)
            assert graph.in_degree(node) == len(inn)
            assert graph.degree(node) == len(out) + len(inn)
        # Label cleanup: removed nodes leave no label residue behind, and
        # surviving labels match the model.
        assert set(graph._node_labels) <= nodes
        for node in nodes:
            assert graph.node_label(node) == labels.get(node)

    @settings(max_examples=30, deadline=None)
    @given(ops=mutation_ops)
    def test_remove_node_then_readd_is_clean(self, ops):
        # A re-added node must come back bare: no label, no edges.
        graph = Graph()
        present = set()
        for op, u, v in ops:
            if op == "add_edge":
                graph.add_edge(u, v)
                present.update((u, v))
            elif op == "add_node":
                graph.add_node(u, label="tagged")
                present.add(u)
            elif op == "remove_node" and u in present:
                graph.remove_node(u)
                present.discard(u)
                graph.add_node(u)
                present.add(u)
                assert graph.node_label(u) is None
                assert graph.degree(u) == 0

    @settings(max_examples=25, deadline=None)
    @given(
        edge_list=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            min_size=1, max_size=120,
        ),
        source=st.integers(0, 40),
    )
    def test_csr_bfs_matches_python_bfs(self, edge_list, source):
        graph = Graph()
        graph.add_node(source)
        for u, v in edge_list:
            graph.add_edge(u, v)
        csr = CSRGraph.from_graph(graph, direction="both")
        expected = bfs_distances(graph, source, direction="both")
        dist = csr.bfs_distances([csr.index_of(source)])
        for i, nid in enumerate(csr.node_ids):
            assert dist[i] == expected.get(int(nid), -1)


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------

class TestOptimizerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        target=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=2, max_size=4,
        )
    )
    def test_scalar_nm_finds_quadratic_minimum(self, target):
        goal = np.array(target)

        def objective(x):
            return float(((x - goal) ** 2).sum())

        best, value = nelder_mead(objective, np.zeros(len(goal)),
                                  max_iter=800)
        assert value < 1e-3

    @settings(max_examples=15, deadline=None)
    @given(
        seeds=st.integers(min_value=0, max_value=1000),
        n=st.integers(min_value=1, max_value=12),
    )
    def test_batch_nm_solves_random_quadratics(self, seeds, n):
        rng = np.random.default_rng(seeds)
        goals = rng.uniform(-3, 3, size=(n, 3))

        def batch(points):
            return ((points - goals) ** 2).sum(axis=1)

        _best, values = batch_nelder_mead(batch, np.zeros((n, 3)),
                                          max_iter=500)
        assert values.max() < 1e-3
