"""GraphService / QuerySession: sessions, streaming, warm continuation,
windowed reports, live reconfiguration, lifecycle errors."""

import pytest

from repro import ClusterConfig, GraphService, QueryIdAllocator
from repro.core import GraphAssets
from repro.datasets import memetracker_like
from repro.workloads import hotspot_workload, zipfian_stream, zipfian_workload


@pytest.fixture(scope="module")
def setup():
    graph = memetracker_like(scale=0.05, seed=2)
    assets = GraphAssets(graph)
    queries = hotspot_workload(graph, num_hotspots=10, queries_per_hotspot=10,
                               radius=2, hops=2, seed=1, csr=assets.csr_both)
    return graph, assets, queries


def _config(routing="hash", **kwargs):
    defaults = dict(
        num_processors=4,
        num_storage_servers=2,
        cache_capacity_bytes=4 << 20,
        num_landmarks=16,
        min_separation=2,
        dim=6,
        embed_method="lmds",
    )
    defaults.update(kwargs)
    return ClusterConfig(routing=routing, **defaults)


def _service(graph, assets, routing="hash", **kwargs):
    return GraphService.open(graph, _config(routing, **kwargs), assets=assets)


class TestSessions:
    def test_submit_many_and_report(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                session.submit_many(queries)
                report = session.report()
        assert len(report.records) == len(queries)
        assert report.makespan > 0
        assert report.routing == "hash"

    def test_incremental_submit_and_results(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            session = service.session()
            seen = []
            iterator = session.results()
            for query in queries[:5]:
                session.submit(query)
            seen.extend(r.query_id for r in iterator)
            assert sorted(seen) == sorted(q.query_id for q in queries[:5])
            # The iterator picks up work submitted after it was exhausted.
            session.submit(queries[5])
            assert [r.query_id for r in session.results()] == [
                queries[5].query_id
            ]
            session.close()

    def test_stream_accepts_generator(self, setup):
        graph, assets, _queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                submitted = session.stream(
                    zipfian_stream(graph, num_queries=60, skew=2.0,
                                   csr=assets.csr_both),
                    batch=16,
                )
                report = session.report()
        assert submitted == 60
        assert len(report.records) == 60

    def test_sessions_are_exclusive(self, setup):
        graph, assets, _queries = setup
        with _service(graph, assets) as service:
            first = service.session()
            with pytest.raises(RuntimeError, match="already active"):
                service.session()
            first.close()
            service.session().close()  # fine once the first is closed

    def test_closed_session_refuses_submission(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            session = service.session()
            session.close()
            with pytest.raises(RuntimeError, match="closed"):
                session.submit(queries[0])

    def test_session_report_isolated_per_session(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as first:
                first.stream(queries[:30])
                first_report = first.report()
            with service.session() as second:
                second.stream(queries[30:50])
                second_report = second.report()
        assert len(first_report.records) == 30
        assert len(second_report.records) == 20
        first_ids = {r.query_id for r in first_report.records}
        second_ids = {r.query_id for r in second_report.records}
        assert not first_ids & second_ids

    def test_session_id_allocator_re_ids(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session(
                id_allocator=QueryIdAllocator(start=1_000_000)
            ) as session:
                submitted = session.submit_many(queries[:8])
                report = session.report()
        assert [q.query_id for q in submitted] == list(
            range(1_000_000, 1_000_008)
        )
        assert {r.query_id for r in report.records} == set(
            range(1_000_000, 1_000_008)
        )


class TestWarmContinuation:
    def test_second_session_hit_ratio_strictly_higher(self, setup):
        """The satellite claim: repeat traffic finds the caches warm."""
        graph, assets, _queries = setup
        workload = zipfian_workload(graph, num_queries=150, skew=2.0, seed=5,
                                    csr=assets.csr_both)
        with _service(graph, assets) as service:
            with service.session() as first:
                first.stream(workload)
                cold = first.report()
            # Replaying the identical queries is legal — ids only have to
            # be unique among *in-flight* queries — and isolates cache
            # warmth: same work, same routing, warmer caches.
            with service.session() as second:
                second.stream(workload)
                warm = second.report()
        assert warm.cache_hit_rate() > cold.cache_hit_rate()
        assert warm.mean_response_time() < cold.mean_response_time()

    def test_simulated_clock_continues_across_sessions(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as first:
                first.stream(queries[:10])
            first_end = service.env.now
            with service.session() as second:
                assert second.started_at == first_end
                second.stream(queries[10:20])
            assert service.env.now > first_end

    def test_adaptive_state_survives_session_boundary(self, setup):
        graph, assets, _queries = setup
        workload = zipfian_workload(graph, num_queries=400, skew=2.0, seed=6,
                                    csr=assets.csr_both)
        with _service(graph, assets, routing="adaptive",
                      adaptive_epoch=8) as service:
            with service.session() as first:
                first.stream(workload[:300])
                first.report()
            assert service.strategy.mode == "committed"
            pulls_before = dict(service.strategy.snapshot()["pulls"])
            with service.session() as second:
                second.stream(workload[300:])
                second.report()
            snapshot = service.strategy.snapshot()
        # Still committed (no cold restart), and the pull counts kept
        # growing from the first session's totals.
        assert snapshot["mode"] == "committed"
        assert sum(snapshot["pulls"].values()) > sum(pulls_before.values())


class TestWindowedReports:
    def test_windows_partition_counts_exactly(self, setup):
        """The satellite claim: windows partition the run, nothing lost."""
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                session.stream(queries)
                report = session.report()
        for count in (1, 2, 3, 7):
            windows = report.windows(count)
            assert len(windows) == count
            assert sum(len(w.records) for w in windows) == len(report.records)
            assert sum(w.total_cache_hits() for w in windows) == (
                report.total_cache_hits()
            )
            assert sum(w.total_cache_misses() for w in windows) == (
                report.total_cache_misses()
            )
            seen = [r.query_id for w in windows for r in w.records]
            assert sorted(seen) == sorted(r.query_id for r in report.records)

    def test_window_is_half_open(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                session.stream(queries[:20])
                report = session.report()
        cut = report.records[10].finished_at
        t0, t1 = report.time_bounds()
        early = report.window(t0, cut)
        late = report.window(cut, t1 + 1.0)
        assert all(r.finished_at < cut for r in early.records)
        assert all(r.finished_at >= cut for r in late.records)
        assert len(early.records) + len(late.records) == 20

    def test_report_since_measures_the_tail(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                session.stream(queries[:25])
                session.drain()
                midpoint = (session.started_at + service.env.now) / 2
                full = session.report()
                tail = session.report(since=midpoint)
        assert 0 < len(tail.records) < len(full.records)
        assert all(r.finished_at >= midpoint for r in tail.records)

    def test_per_window_stats_shape(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                session.stream(queries)
                report = session.report()
        stats = report.per_window_stats(4)
        assert [s["window"] for s in stats] == [0, 1, 2, 3]
        assert sum(s["queries"] for s in stats) == len(report.records)
        for entry in stats:
            assert set(entry["per_class"]) <= {"point", "walk", "traversal"}

    def test_degenerate_windows(self, setup):
        graph, assets, _queries = setup
        with _service(graph, assets) as service:
            with service.session() as session:
                report = session.report()  # empty session
        assert report.windows(3)[0].records == []
        with pytest.raises(ValueError):
            report.windows(0)
        with pytest.raises(ValueError):
            report.window(2.0, 1.0)


class TestLiveReconfiguration:
    def test_set_routing_mid_session(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets, routing="hash") as service:
            with service.session() as session:
                session.stream(queries[:30])
                session.drain()
                session.set_routing("embed")
                session.stream(queries[30:60])
                report = session.report()
        assert len(report.records) == 60
        labels = {r.routed_via for r in report.records}
        assert labels == {"hash", "embed"}
        assert report.routing == "embed"

    def test_set_routing_carries_adaptive_state(self, setup):
        graph, assets, _queries = setup
        workload = zipfian_workload(graph, num_queries=300, skew=2.0, seed=7,
                                    csr=assets.csr_both)
        with _service(graph, assets, routing="adaptive",
                      adaptive_epoch=8) as service:
            with service.session() as session:
                session.stream(workload[:250])
                session.drain()
                old_committed = dict(service.strategy.snapshot()["committed"])
                assert service.strategy.mode == "committed"
                # Retune a knob: new AdaptiveRouting instance, same wisdom.
                strategy = session.set_routing(epsilon=0.05)
                assert strategy is service.strategy
                assert strategy.mode == "committed"  # no re-audition
                assert dict(strategy.snapshot()["committed"]) == old_committed
                session.stream(workload[250:])
                report = session.report()
        assert len(report.records) == 300

    def test_set_routing_rejects_structural_changes(self, setup):
        graph, assets, _queries = setup
        with _service(graph, assets) as service:
            with pytest.raises(ValueError, match="structural"):
                service.set_routing("embed", num_processors=2)
            with pytest.raises(ValueError, match="structural|no_cache"):
                service.set_routing("no_cache")
            with pytest.raises(ValueError, match="unknown routing"):
                service.set_routing("telepathy")


class TestLifecycleErrors:
    def test_submit_after_service_close_raises(self, setup):
        graph, assets, queries = setup
        service = _service(graph, assets)
        session = service.session()
        session.submit_many(queries[:5])
        service.close()
        assert session.closed  # close() drained and sealed the session
        with pytest.raises(RuntimeError, match="shut down"):
            service.router.submit(queries[5:6])
        with pytest.raises(RuntimeError, match="closed"):
            service.session()

    def test_submit_with_no_alive_processors_raises(self, setup):
        graph, assets, queries = setup
        service = _service(graph, assets, num_processors=2)
        session = service.session()
        for processor_id in range(2):
            service.router.remove_processor(processor_id)
        with pytest.raises(RuntimeError, match="no alive processors"):
            session.submit(queries[0])
        # With one processor restored, submission works again.
        service.processors[1].alive = True
        session.submit(queries[0])
        session.close()
        service.close()

    def test_exception_unwind_abandons_inflight_work(self, setup):
        # Raising inside the with-block must not run the abandoned
        # workload during unwind (or mask the error with a drain failure):
        # close(drain=False) seals the session immediately.
        graph, assets, queries = setup
        with pytest.raises(KeyError, match="user error"):
            with GraphService.open(graph, _config(), assets=assets) as service:
                with service.session() as session:
                    session.submit_many(queries[:10])
                    raise KeyError("user error")
        assert session.closed
        assert service.closed
        assert session.completed < 10  # in-flight work was not executed

    def test_abandoned_session_does_not_contaminate_next(self, setup):
        # An exception seals the session without draining; the next
        # session must not inherit the leftover completions.
        graph, assets, queries = setup
        with GraphService.open(graph, _config(), assets=assets) as service:
            try:
                with service.session() as first:
                    first.submit_many(queries[:50])
                    raise KeyError("boom")
            except KeyError:
                pass
            assert first.closed
            with service.session() as second:
                second.submit_many(queries[50:60])
                report = second.report()
            assert len(report.records) == 10
            leaked = {q.query_id for q in queries[:50]}
            assert not leaked & {r.query_id for r in report.records}

    def test_close_is_idempotent(self, setup):
        graph, assets, queries = setup
        service = _service(graph, assets)
        session = service.session()
        session.submit_many(queries[:3])
        service.close()
        service.close()
        assert len(session.records) == 3

    def test_duplicate_inflight_query_id_rejected(self, setup):
        graph, assets, queries = setup
        with _service(graph, assets) as service:
            session = service.session()
            session.submit(queries[0])
            with pytest.raises(ValueError, match="already in flight"):
                session.submit(queries[0])
            session.close()


class TestCompatWrapper:
    def test_cluster_run_equals_service_session(self, setup):
        from repro import GRoutingCluster

        graph, assets, queries = setup
        cluster_report = GRoutingCluster(
            graph, _config("embed"), assets=assets
        ).run(queries)
        with _service(graph, assets, routing="embed") as service:
            with service.session() as session:
                session.stream(queries)
                session_report = session.report()
        assert cluster_report.makespan == session_report.makespan
        assert [r.processor for r in cluster_report.records] == [
            r.processor for r in session_report.records
        ]
        assert (
            cluster_report.total_cache_hits()
            == session_report.total_cache_hits()
        )
