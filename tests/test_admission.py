"""Admission control, DRR fair queueing, load shedding, backpressure."""

import pytest

from repro.core import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionConfig,
    AdmissionController,
    ClusterConfig,
    GraphService,
    NeighborAggregationQuery,
    PersonalizedPageRankQuery,
    RandomWalkQuery,
    ReachabilityQuery,
)
from repro.core.queries import KSourceReachabilityQuery
from repro.datasets import load_dataset
from repro.sim import Environment
from repro.workloads import merge_arrivals, poisson_arrivals


def point(n=0):
    return NeighborAggregationQuery(node=n, hops=1)


def walk(n=0):
    return RandomWalkQuery(node=n)


def traversal(n=0):
    return ReachabilityQuery(node=n, target=n + 1)


def ppr(n=0):
    return PersonalizedPageRankQuery(node=n)


def k_reach(n=0):
    return KSourceReachabilityQuery(node=n, sources=(n, n + 1))


class FakeRouter:
    """Just enough router surface for the admission layer: a backlog
    counter, a release log, and completion callbacks."""

    def __init__(self, num_processors=2):
        self.env = Environment()
        self.num_processors = num_processors
        self.released = []  # (tenant, query) in release order
        self._backlog = 0
        self._callbacks = []

    def backlog(self):
        return self._backlog

    def submit(self, queries, tenant=""):
        for query in queries:
            self.released.append((tenant, query))
            self._backlog += 1

    def add_completion_callback(self, callback):
        self._callbacks.append(callback)

    def remove_completion_callback(self, callback):
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def complete(self, n=1):
        for _ in range(n):
            self._backlog -= 1
            for callback in list(self._callbacks):
                callback()


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="tenant_queue_limit"):
            AdmissionConfig(tenant_queue_limit=0)
        with pytest.raises(ValueError, match="quantum"):
            AdmissionConfig(quantum=0)
        with pytest.raises(ValueError, match="weights"):
            AdmissionConfig(class_weights={"point": 0.0})
        with pytest.raises(ValueError, match="router_depth"):
            AdmissionConfig(router_depth=0)
        with pytest.raises(ValueError, match="watermarks"):
            AdmissionConfig(overload_low=0.6, overload_high=0.5)
        with pytest.raises(ValueError, match="watermarks"):
            AdmissionConfig(overload_high=0.9, severe_high=0.8)


class TestPassthrough:
    def test_no_config_submits_directly_and_counts(self):
        router = FakeRouter()
        controller = AdmissionController(router)
        assert controller.passthrough
        for i in range(100):
            assert controller.offer(ppr(i), tenant="t") == ADMITTED
        # Unbounded: everything went straight to the router.
        assert router.backlog() == 100
        assert controller.queued() == 0
        assert not controller.backpressure("t")
        assert not controller.overloaded
        stats = controller.stats()
        assert stats.tenants["t"].offered == 100
        assert stats.tenants["t"].admitted == 100
        assert stats.shed == stats.rejected == 0
        assert stats.delivery_ratio() == 1.0


class TestBoundedQueues:
    def config(self, **kw):
        kw.setdefault("tenant_queue_limit", 4)
        kw.setdefault("router_depth", 1)
        # Watermarks high enough that these tests never shed.
        kw.setdefault("overload_high", 10.0)
        kw.setdefault("overload_low", 5.0)
        kw.setdefault("severe_high", 20.0)
        return AdmissionConfig(**kw)

    def test_full_queue_rejects_and_signals_backpressure(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        # First offer is pumped straight into the (depth-1) router...
        assert controller.offer(point(0), "t") == ADMITTED
        assert router.backlog() == 1
        # ...the next 4 fill the tenant queue...
        for i in range(1, 5):
            assert controller.offer(point(i), "t") == ADMITTED
            assert controller.queued("t") == i
        assert controller.backpressure("t")
        # ...and the 6th is rejected (bounded queue = backpressure).
        assert controller.offer(point(5), "t") == REJECTED
        stats = controller.stats()
        assert stats.tenants["t"].offered == 6
        assert stats.tenants["t"].admitted == 5
        assert stats.tenants["t"].rejected == 1
        assert stats.tenants["t"].max_queue_depth == 4
        assert stats.delivery_ratio() == pytest.approx(5 / 6)

    def test_rejection_is_per_tenant(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        for i in range(6):
            controller.offer(point(i), "greedy")
        assert controller.backpressure("greedy")
        # Another tenant's queue is unaffected by greedy's pressure.
        assert not controller.backpressure("quiet")
        assert controller.offer(point(99), "quiet") == ADMITTED

    def test_completion_callback_pulls_queued_work(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config()).attach()
        for i in range(5):
            controller.offer(point(i), "t")
        assert router.backlog() == 1
        assert controller.queued("t") == 4
        # Each completion frees a slot; the callback pumps the next query.
        for remaining in (3, 2, 1, 0):
            router.complete()
            assert controller.queued("t") == remaining
            assert router.backlog() == 1
        controller.detach()
        # Detached: completions no longer pull (nothing queued anyway).
        controller.offer(point(9), "t")
        controller.offer(point(10), "t")
        queued = controller.queued("t")
        router.complete()
        assert controller.queued("t") == queued


class TestDeficitRoundRobin:
    def test_release_order_equalises_cost_not_count(self):
        """A flood of cheap points and a flood of expensive traversals
        share release bandwidth by *cost*: 16 points per traversal."""
        config = AdmissionConfig(
            tenant_queue_limit=64, quantum=16.0, router_depth=100,
            overload_high=10.0, overload_low=5.0, severe_high=20.0,
        )
        router = FakeRouter()
        controller = AdmissionController(router, config)
        # Hold the router "full" so offers queue instead of releasing.
        router._backlog = 100
        for i in range(32):
            controller.offer(point(i), "cheap")
        for i in range(8):
            controller.offer(traversal(i), "heavy")
        assert controller.queued() == 40
        # Open the floodgates and release in DRR order.
        router._backlog = 0
        controller.pump()
        order = [tenant for tenant, _ in router.released]
        assert len(order) == 40
        # One quantum (16.0) buys 16 points or one traversal per visit.
        assert order[:34] == (
            ["cheap"] * 16 + ["heavy"] + ["cheap"] * 16 + ["heavy"]
        )
        # Once "cheap" drains, "heavy" gets every visit.
        assert order[34:] == ["heavy"] * 6

    def test_idle_tenant_banks_no_deficit(self):
        config = AdmissionConfig(
            tenant_queue_limit=64, quantum=16.0, router_depth=100,
            overload_high=10.0, overload_low=5.0, severe_high=20.0,
        )
        router = FakeRouter()
        controller = AdmissionController(router, config)
        router._backlog = 100
        controller.offer(point(0), "a")
        router._backlog = 0
        controller.pump()  # "a" drains; its leftover deficit is forfeit
        router._backlog = 100
        for i in range(2):
            controller.offer(traversal(i), "a")
        router._backlog = 0
        controller.pump()
        # Each traversal still costs a fresh visit's quantum: had the
        # drained deficit carried over, both would release on one visit.
        assert [t for t, _ in router.released] == ["a", "a", "a"]
        assert controller.queued() == 0


class TestLoadShedding:
    def config(self):
        # One tenant, limit 10 -> capacity 10: overload at pending >= 5,
        # severe at >= 8.5, exit at <= 2.5.
        return AdmissionConfig(
            tenant_queue_limit=10, router_depth=4,
            overload_high=0.5, overload_low=0.25, severe_high=0.85,
        )

    def test_heavy_operators_shed_first(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        router._backlog = 6  # pending 6 >= 5 -> overload level 1
        assert controller.offer(point(0), "t") == ADMITTED
        assert controller.overloaded
        assert controller.offer(ppr(1), "t") == SHED
        assert controller.offer(k_reach(2), "t") == SHED
        # Level 1 sheds only the heavy operators; walks still enter.
        assert controller.offer(walk(3), "t") == ADMITTED
        stats = controller.stats()
        assert stats.tenants["t"].shed == 2
        assert stats.tenants["t"].shed_by_operator == {"ppr": 1, "k_reach": 1}

    def test_severe_overload_sheds_all_but_point(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        router._backlog = 9  # pending 9 >= 8.5 -> severe (level 2)
        assert controller.offer(point(0), "t") == ADMITTED
        assert controller.offer(walk(1), "t") == SHED
        assert controller.offer(traversal(2), "t") == SHED
        assert controller.offer(ppr(3), "t") == SHED
        # Point lookups are never shed, at any level.
        assert controller.offer(point(4), "t") == ADMITTED

    def test_hysteresis_exits_only_below_low_watermark(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        router._backlog = 6
        controller.offer(point(0), "t")
        assert controller.overloaded
        # Dropping below high but above low stays overloaded (no chatter).
        router._backlog = 4
        controller.offer(point(1), "t")
        assert controller.overloaded
        # Below the low watermark the window closes.
        router._backlog = 0
        controller.offer(point(2), "t")
        assert not controller.overloaded
        assert len(controller.stats().overload_windows) == 1

    def test_stats_snapshot_closes_open_window(self):
        router = FakeRouter()
        controller = AdmissionController(router, self.config())
        router._backlog = 6
        controller.offer(point(0), "t")
        assert controller.overloaded
        stats = controller.stats(now=5.0)
        assert stats.overload_windows == [(0.0, 5.0)]
        assert stats.time_in_overload() == 5.0
        # Snapshotting must not close the live window.
        assert controller.overloaded


class TestEndToEndOverload:
    def test_flood_sheds_heavy_and_records_overload(self):
        """A flash flood far past capacity: the admission layer sheds and
        rejects rather than queueing unboundedly, records time in
        overload, and never sheds point-class queries."""
        graph = load_dataset("webgraph", scale=0.05, seed=1)
        n = graph.num_nodes
        interactive = [
            NeighborAggregationQuery(node=i % n, hops=1) for i in range(300)
        ]
        analytics = [
            PersonalizedPageRankQuery(node=(7 * i) % n, walks=8)
            for i in range(150)
        ]
        arrivals = merge_arrivals(
            poisson_arrivals(interactive, rate=400_000.0,
                             tenant="interactive", seed=1),
            poisson_arrivals(analytics, rate=200_000.0,
                             tenant="analytics", seed=2),
        )
        admission = AdmissionConfig(tenant_queue_limit=8)
        with GraphService.open(
            graph, ClusterConfig(routing="adaptive")
        ) as service:
            with service.session() as session:
                stats = session.serve(arrivals, admission=admission)
                report = session.report()

        assert stats.offered == 450
        dropped = stats.shed + stats.rejected
        assert dropped > 0
        assert stats.admitted == 450 - dropped
        assert len(report.records) == stats.admitted
        assert stats.time_in_overload() > 0
        # Point-class interactive traffic is never shed (only rejected
        # once its own queue fills).
        assert stats.tenants["interactive"].shed == 0
        for tenant_stats in stats.tenants.values():
            assert "aggregation" not in tenant_stats.shed_by_operator

        summary = report.summary()
        assert summary["offered"] == 450
        assert summary["shed"] == stats.shed
        assert summary["rejected"] == stats.rejected
        assert summary["delivery_ratio"] == pytest.approx(
            stats.admitted / 450
        )
        assert summary["time_in_overload_s"] == pytest.approx(
            stats.time_in_overload()
        )
        per_tenant = report.per_tenant_stats()
        assert per_tenant["analytics"]["shed"] == stats.tenants["analytics"].shed
        assert per_tenant["interactive"]["queries"] > 0
        assert per_tenant["interactive"]["p99_sojourn_ms"] > 0
