"""Nelder-Mead tests: scalar vs known optima, batch vs scalar."""

import numpy as np
import pytest

from repro.embedding import batch_nelder_mead, nelder_mead


def sphere(x):
    return float((x**2).sum())


def rosenbrock(x):
    return float((1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2)


class TestScalarNelderMead:
    def test_minimizes_sphere(self):
        best, value = nelder_mead(sphere, np.array([3.0, -2.0]), max_iter=400)
        assert value < 1e-6
        assert np.allclose(best, 0, atol=1e-3)

    def test_minimizes_shifted_quadratic(self):
        target = np.array([1.5, -0.5, 2.0])

        def f(x):
            return float(((x - target) ** 2).sum())

        best, value = nelder_mead(f, np.zeros(3), max_iter=600)
        assert np.allclose(best, target, atol=1e-3)

    def test_rosenbrock_reaches_valley(self):
        best, value = nelder_mead(
            rosenbrock, np.array([-1.0, 1.0]), max_iter=2000, xtol=1e-10,
            ftol=1e-14,
        )
        assert value < 1e-3

    def test_starting_at_optimum_stays(self):
        best, value = nelder_mead(sphere, np.zeros(2), max_iter=100)
        assert value < 1e-9

    def test_one_dimensional(self):
        best, value = nelder_mead(lambda x: float((x[0] - 4) ** 2), np.array([0.0]))
        assert abs(best[0] - 4) < 1e-3

    def test_agrees_with_scipy(self):
        scipy = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(3)
        anchor = rng.normal(size=(5, 3))
        target = rng.uniform(1, 4, size=5)

        def f(x):
            d = np.sqrt(((anchor - x) ** 2).sum(axis=1))
            return float((np.abs(d - target) / target).sum())

        ours, ours_val = nelder_mead(f, np.zeros(3), max_iter=1500, xtol=1e-9,
                                     ftol=1e-12)
        theirs = scipy.minimize(f, np.zeros(3), method="Nelder-Mead",
                                options={"maxiter": 1500, "xatol": 1e-9,
                                         "fatol": 1e-12})
        assert ours_val <= theirs.fun * 1.25 + 1e-6


class TestBatchNelderMead:
    def test_matches_scalar_on_independent_spheres(self):
        rng = np.random.default_rng(0)
        starts = rng.normal(size=(50, 4)) * 3
        targets = rng.normal(size=(50, 4))

        def batch_f(points):
            return ((points - targets) ** 2).sum(axis=1)

        best, values = batch_nelder_mead(batch_f, starts, max_iter=400)
        assert values.max() < 1e-4
        assert np.allclose(best, targets, atol=1e-2)

    def test_rows_are_independent(self):
        # Problem i minimizes (x - i)^2: solutions must not leak across rows.
        n = 20
        targets = np.arange(n, dtype=np.float64)[:, None]

        def batch_f(points):
            return ((points - targets) ** 2).sum(axis=1)

        best, values = batch_nelder_mead(
            batch_f, np.zeros((n, 1)), max_iter=300
        )
        assert np.allclose(best[:, 0], np.arange(n), atol=1e-2)

    def test_single_problem_matches_scalar(self):
        def batch_f(points):
            return (points**2).sum(axis=1)

        best_batch, val_batch = batch_nelder_mead(
            batch_f, np.array([[2.0, 2.0]]), max_iter=300
        )
        best_scalar, val_scalar = nelder_mead(
            sphere, np.array([2.0, 2.0]), max_iter=300
        )
        assert val_batch[0] == pytest.approx(val_scalar, abs=1e-6)

    def test_early_stop_when_converged(self):
        def batch_f(points):
            return (points**2).sum(axis=1)

        # Start at the optimum: convergence should be immediate and cheap.
        best, values = batch_nelder_mead(
            batch_f, np.zeros((5, 3)), max_iter=10_000
        )
        assert values.max() < 1e-8

    def test_handles_asymmetric_objectives(self):
        # Mix of quadratic bowls with different curvatures per row.
        scales = np.array([1.0, 10.0, 100.0])[:, None]

        def batch_f(points):
            return (scales * points**2).sum(axis=1)

        best, values = batch_nelder_mead(
            batch_f, np.full((3, 2), 5.0), max_iter=500
        )
        assert values.max() < 1e-4
