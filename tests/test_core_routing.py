"""Unit tests for the four routing strategies."""

import numpy as np
import pytest

from repro.core import (
    EmbedRouting,
    HashRouting,
    LandmarkRouting,
    NeighborAggregationQuery,
    NextReadyRouting,
)
from repro.core.assets import GraphAssets
from repro.graph import ring_of_cliques


@pytest.fixture(scope="module")
def assets():
    return GraphAssets(ring_of_cliques(6, 6))


def _query(node):
    return NeighborAggregationQuery(node=node, hops=2)


class TestNextReady:
    def test_always_pool(self):
        strategy = NextReadyRouting()
        assert strategy.choose(_query(5), [0, 0, 0]) is None
        assert strategy.choose(_query(5), [9, 0, 3]) is None

    def test_decision_time_constant(self):
        strategy = NextReadyRouting()
        assert strategy.decision_time(1) == strategy.decision_time(100)


class TestHash:
    def test_modulo_mapping(self):
        strategy = HashRouting(4)
        assert strategy.choose(_query(10), [0] * 4) == 2
        assert strategy.choose(_query(3), [0] * 4) == 3

    def test_same_node_same_processor(self):
        strategy = HashRouting(7)
        picks = {strategy.choose(_query(42), [0] * 7) for _ in range(5)}
        assert len(picks) == 1

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            HashRouting(0)


class TestLandmark:
    def test_routes_to_nearest_processor(self, assets):
        index = assets.landmark_index(3, num_landmarks=6, min_separation=2)
        strategy = LandmarkRouting(index, load_factor=20.0)
        query = _query(0)
        expected = int(np.argmin(index.processor_distances(0)))
        assert strategy.choose(query, [0, 0, 0]) == expected

    def test_load_shifts_choice(self, assets):
        index = assets.landmark_index(2, num_landmarks=4, min_separation=2)
        strategy = LandmarkRouting(index, load_factor=1.0)
        query = _query(0)
        best = strategy.choose(query, [0, 0])
        other = 1 - best
        # Pile load onto the preferred processor until it flips.
        dists = index.processor_distances(0)
        gap = abs(float(dists[best] - dists[other]))
        loads = [0, 0]
        loads[best] = int(gap) + 2
        assert strategy.choose(query, loads) == other

    def test_unknown_node_falls_back_to_hash(self, assets):
        index = assets.landmark_index(3, num_landmarks=6, min_separation=2)
        strategy = LandmarkRouting(index)
        assert strategy.choose(_query(10_000), [0, 0, 0]) == 10_000 % 3
        assert strategy.fallbacks == 1

    def test_decision_time_grows_with_processors(self, assets):
        index = assets.landmark_index(2, num_landmarks=4, min_separation=2)
        strategy = LandmarkRouting(index)
        assert strategy.decision_time(8) > strategy.decision_time(2)

    def test_invalid_load_factor(self, assets):
        index = assets.landmark_index(2, num_landmarks=4, min_separation=2)
        with pytest.raises(ValueError):
            LandmarkRouting(index, load_factor=0)

    def test_nearby_nodes_same_choice(self, assets):
        # Nodes of the same clique route identically under zero load.
        index = assets.landmark_index(3, num_landmarks=6, min_separation=2)
        strategy = LandmarkRouting(index)
        picks = {strategy.choose(_query(node), [0, 0, 0]) for node in range(6)}
        assert len(picks) == 1


class TestEmbed:
    def test_on_dispatch_moves_ema(self, assets):
        embedding = assets.embedding(dim=4, num_landmarks=6, min_separation=2,
                                     method="lmds")
        strategy = EmbedRouting(embedding, num_processors=2, alpha=0.5, seed=0)
        coords = embedding.coordinates_of(0)
        before = strategy.tracker.means[1].copy()
        strategy.on_dispatch(_query(0), 1)
        after = strategy.tracker.means[1]
        assert np.linalg.norm(after - coords) < np.linalg.norm(before - coords)

    def test_repeated_queries_stick_to_one_processor(self, assets):
        embedding = assets.embedding(dim=4, num_landmarks=6, min_separation=2,
                                     method="lmds")
        strategy = EmbedRouting(embedding, num_processors=3, alpha=0.5, seed=0)
        query = _query(0)
        first = strategy.choose(query, [0, 0, 0])
        strategy.on_dispatch(query, first)
        # After the EMA pulls toward node 0, it must keep choosing `first`.
        for _ in range(5):
            pick = strategy.choose(query, [0, 0, 0])
            assert pick == first
            strategy.on_dispatch(query, pick)

    def test_unknown_node_falls_back_to_hash(self, assets):
        embedding = assets.embedding(dim=4, num_landmarks=6, min_separation=2,
                                     method="lmds")
        strategy = EmbedRouting(embedding, num_processors=3)
        assert strategy.choose(_query(99_999), [0, 0, 0]) == 99_999 % 3
        assert strategy.fallbacks == 1

    def test_load_balancing_flips_choice(self, assets):
        embedding = assets.embedding(dim=4, num_landmarks=6, min_separation=2,
                                     method="lmds")
        strategy = EmbedRouting(embedding, num_processors=2, load_factor=0.01,
                                seed=0)
        query = _query(0)
        best = strategy.choose(query, [0, 0])
        loads = [0, 0]
        loads[best] = 1000
        assert strategy.choose(query, loads) == 1 - best

    def test_decision_time_grows_with_dim(self, assets):
        low = EmbedRouting(assets.embedding(dim=2, num_landmarks=6,
                                            min_separation=2, method="lmds"),
                           num_processors=4)
        high = EmbedRouting(assets.embedding(dim=8, num_landmarks=6,
                                             min_separation=2, method="lmds"),
                            num_processors=4)
        assert high.decision_time(4) > low.decision_time(4)

    def test_invalid_load_factor(self, assets):
        embedding = assets.embedding(dim=2, num_landmarks=6, min_separation=2,
                                     method="lmds")
        with pytest.raises(ValueError):
            EmbedRouting(embedding, num_processors=2, load_factor=-1)
