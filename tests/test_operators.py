"""Operator registry + the three new query families.

Covers the tentpole surfaces: registry registration/lookup/errors, the
registry-driven engine dispatch (including the catalog-listing error for
unregistered types), multi-source routing keys in every strategy, and
ground-truth correctness of the ppr / k_reach / sample executors."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro import ClusterConfig, GRoutingCluster, GraphAssets, GraphService
from repro.core import (
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    Query,
    QueryStats,
    default_registry,
    gather_nodes,
    query_class,
)
from repro.core.operators import (
    OperatorRegistry,
    QueryOperator,
    UnknownOperatorError,
    UnknownQueryTypeError,
    routing_keys,
)
from repro.core.routing.hashing import HashRouting
from repro.core.routing.landmark import LandmarkRouting
from repro.graph import (
    bidirectional_reachability,
    erdos_renyi,
    k_hop_neighborhood,
    ring_of_cliques,
)
from repro.workloads import (
    interleave,
    k_reach_stream,
    ppr_stream,
    sample_stream,
)


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(300, 1200, seed=7)


@pytest.fixture(scope="module")
def random_assets(random_graph):
    return GraphAssets(random_graph)


def _run_single(graph, assets, query, **config_kwargs):
    params = dict(
        num_processors=2,
        num_storage_servers=2,
        routing="hash",
        cache_capacity_bytes=1 << 20,
    )
    params.update(config_kwargs)
    config = ClusterConfig(**params)
    report = GRoutingCluster(graph, config, assets=assets).run([query])
    assert len(report.records) == 1
    return report.records[0]


# -- registry mechanics -------------------------------------------------------
@dataclass(frozen=True)
class _ToyQuery(Query):
    pass


def _toy_executor(processor, query):
    stats = QueryStats()
    yield processor.env.process(gather_nodes(
        processor,
        np.array([processor.assets.compact[query.node]], dtype=np.int64),
        stats,
    ))
    stats.result = "toy"
    return stats


def _toy_operator(**overrides):
    params = dict(
        name="toy",
        query_type=_ToyQuery,
        executor=_toy_executor,
        cost_class="point",
    )
    params.update(overrides)
    return QueryOperator(**params)


class TestRegistry:
    def test_builtin_catalog(self):
        assert default_registry.names() == (
            "aggregation", "walk", "reachability", "ppr", "k_reach", "sample",
        )

    def test_register_lookup_unregister(self):
        registry = OperatorRegistry()
        registry.register(_toy_operator())
        assert registry.names() == ("toy",)
        assert registry.get("toy").query_type is _ToyQuery
        assert registry.for_query(_ToyQuery(node=1)).name == "toy"
        assert registry.classify(_ToyQuery(node=1)) == "point"
        registry.unregister("toy")
        assert registry.names() == ()

    def test_duplicate_name_and_type_rejected(self):
        registry = OperatorRegistry()
        registry.register(_toy_operator())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_toy_operator())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_toy_operator(name="toy2"))
        # replace=True swaps both keys without leaving stale entries.
        registry.register(_toy_operator(name="toy2", cost_class="walk"),
                          replace=True)
        assert registry.names() == ("toy2",)
        assert registry.classify(_ToyQuery(node=0)) == "walk"

    def test_invalid_registrations_rejected(self):
        registry = OperatorRegistry()
        with pytest.raises(ValueError, match="non-empty"):
            registry.register(_toy_operator(name=""))
        with pytest.raises(ValueError, match="cost_class"):
            registry.register(_toy_operator(cost_class="epic"))
        with pytest.raises(ValueError, match="Query subclass"):
            registry.register(_toy_operator(query_type=int))

    def test_unknown_name_error_lists_catalog(self):
        with pytest.raises(UnknownOperatorError) as excinfo:
            default_registry.get("teleport")
        message = str(excinfo.value)
        for name in default_registry.names():
            assert name in message
        assert isinstance(excinfo.value, ValueError)

    def test_unknown_query_type_error_lists_catalog(self):
        with pytest.raises(UnknownQueryTypeError) as excinfo:
            default_registry.for_query(_ToyQuery(node=0))
        message = str(excinfo.value)
        assert "_ToyQuery" in message
        for name in default_registry.names():
            assert name in message
        assert isinstance(excinfo.value, TypeError)

    def test_subclass_resolves_through_mro(self):
        @dataclass(frozen=True)
        class DeeperAggregation(NeighborAggregationQuery):
            pass

        operator = default_registry.for_query(DeeperAggregation(node=0, hops=3))
        assert operator.name == "aggregation"
        assert query_class(DeeperAggregation(node=0, hops=3)) == "traversal"

    def test_classify_falls_back_to_point(self):
        assert query_class(_ToyQuery(node=5)) == "point"

    def test_routing_keys_default_and_custom(self):
        assert routing_keys(NeighborAggregationQuery(node=9)) == (9,)
        query = KSourceReachabilityQuery(node=3, sources=(8, 5), target=1)
        assert routing_keys(query) == (3, 8, 5)
        # Unregistered types fall back to the single classic anchor.
        assert routing_keys(_ToyQuery(node=4)) == (4,)

    def test_custom_operator_runs_through_cluster(self, random_graph,
                                                  random_assets):
        default_registry.register(_toy_operator())
        try:
            record = _run_single(random_graph, random_assets,
                                 _ToyQuery(node=10))
            assert record.stats.result == "toy"
            assert record.operator == "toy"
            assert record.query_class == "point"
        finally:
            default_registry.unregister("toy")

    def test_unregistered_query_fails_at_submit(self, random_graph,
                                                random_assets):
        # The registry-driven error path: synchronous, catalog-listing —
        # not the old opaque simulation deadlock.
        with pytest.raises(UnknownQueryTypeError, match="aggregation"):
            _run_single(random_graph, random_assets, _ToyQuery(node=0))


# -- query dataclass validation -----------------------------------------------
class TestNewQueryValidation:
    def test_ppr_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            PersonalizedPageRankQuery(node=0, walks=0)
        with pytest.raises(ValueError):
            PersonalizedPageRankQuery(node=0, steps=0)

    def test_k_reach_all_sources_dedupes_primary_first(self):
        query = KSourceReachabilityQuery(node=3, sources=(5, 3, 5, 8),
                                         target=1)
        assert query.all_sources() == (3, 5, 8)

    def test_k_reach_accepts_list_sources(self):
        query = KSourceReachabilityQuery(node=3, sources=[5, 8], target=1)
        assert query.sources == (5, 8)
        assert hash(query)  # still hashable after normalisation

    def test_k_reach_rejects_over_64_sources(self):
        with pytest.raises(ValueError, match="64"):
            KSourceReachabilityQuery(node=0, sources=tuple(range(1, 65)),
                                     target=1)

    def test_sample_rejects_bad_fanouts(self):
        with pytest.raises(ValueError):
            NeighborhoodSampleQuery(node=0, fanouts=())
        with pytest.raises(ValueError):
            NeighborhoodSampleQuery(node=0, fanouts=(4, 0))

    def test_sample_accepts_list_fanouts(self):
        query = NeighborhoodSampleQuery(node=0, fanouts=[4, 2])
        assert query.fanouts == (4, 2)
        assert hash(query)


# -- executor correctness -----------------------------------------------------
class TestPPRCorrectness:
    def test_support_bounded_and_deterministic(self, random_graph,
                                               random_assets):
        query = PersonalizedPageRankQuery(node=13, walks=4, steps=5, seed=3)
        first = _run_single(random_graph, random_assets, query)
        again = _run_single(random_graph, random_assets, query)
        assert first.stats.result == again.stats.result
        assert 0 < first.stats.result <= 4 * 5
        # Every step's record is probed: touches <= walks * steps.
        assert first.stats.nodes_touched <= 4 * 5

    def test_restart_prob_one_never_leaves_seed(self, random_graph,
                                                random_assets):
        record = _run_single(
            random_graph, random_assets,
            PersonalizedPageRankQuery(node=13, walks=3, steps=4,
                                      restart_prob=1.0, seed=1),
        )
        assert record.stats.result == 0
        assert record.stats.nodes_touched == 0

    def test_multi_walk_revisits_hit_cache(self, random_graph, random_assets):
        # Many walks from one seed revisit the same neighborhood: hits.
        record = _run_single(
            random_graph, random_assets,
            PersonalizedPageRankQuery(node=13, walks=16, steps=6, seed=2),
            num_processors=1,
        )
        assert record.stats.cache_hits > 0


class TestKSourceReachabilityCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_per_source_ground_truth(self, random_graph,
                                             random_assets, seed):
        rng = np.random.default_rng(seed)
        for _ in range(8):
            anchors = [int(n) for n in rng.choice(300, size=4, replace=False)]
            target = int(rng.integers(0, 300))
            hops = int(rng.integers(1, 5))
            query = KSourceReachabilityQuery(
                node=anchors[0], sources=tuple(anchors[1:]),
                target=target, hops=hops,
            )
            record = _run_single(random_graph, random_assets, query)
            expected = sum(
                bidirectional_reachability(random_graph, s, target, hops)
                for s in query.all_sources()
            )
            assert record.stats.result == expected, (anchors, target, hops)

    def test_missing_target_reaches_zero(self, random_graph, random_assets):
        record = _run_single(
            random_graph, random_assets,
            KSourceReachabilityQuery(node=1, sources=(2,), target=999999,
                                     hops=3),
        )
        assert record.stats.result == 0

    def test_target_among_sources_counts_itself(self, random_graph,
                                                random_assets):
        record = _run_single(
            random_graph, random_assets,
            KSourceReachabilityQuery(node=7, sources=(7,), target=7, hops=1),
        )
        assert record.stats.result == 1

    def test_batch_touches_union_not_sum(self):
        # Overlapping sources (one clique) share their frontier records:
        # the batch touches the union once, well under k independent BFS.
        graph = ring_of_cliques(6, 6)
        assets = GraphAssets(graph)
        batched = _run_single(
            graph, assets,
            KSourceReachabilityQuery(node=0, sources=(1, 2, 3), target=13,
                                     hops=3),
            num_processors=1,
        )
        singles = sum(
            _run_single(
                graph, assets,
                KSourceReachabilityQuery(node=s, target=13, hops=3),
                num_processors=1,
            ).stats.nodes_touched
            for s in (0, 1, 2, 3)
        )
        assert batched.stats.nodes_touched < singles


class TestNeighborhoodSampleCorrectness:
    def test_unbounded_fanout_equals_full_neighborhood(self, random_graph,
                                                       random_assets):
        # Fanouts larger than any degree degrade to exact BFS layers.
        huge = 10 ** 6
        for node, layers in ((13, 1), (77, 2)):
            record = _run_single(
                random_graph, random_assets,
                NeighborhoodSampleQuery(node=node, fanouts=(huge,) * layers,
                                        seed=5),
            )
            expected = len(
                k_hop_neighborhood(random_graph, node, layers, "both")
            )
            assert record.stats.result == expected

    def test_sample_is_bounded_by_fanout_budget(self, random_graph,
                                                random_assets):
        record = _run_single(
            random_graph, random_assets,
            NeighborhoodSampleQuery(node=13, fanouts=(3, 2), seed=1),
        )
        # Layer 1 <= 3 nodes; layer 2 <= 3 * 2 nodes.
        assert 0 < record.stats.result <= 3 + 3 * 2
        assert record.stats.result <= record.stats.nodes_touched + 3 + 6

    def test_deterministic_per_seed(self, random_graph, random_assets):
        query = NeighborhoodSampleQuery(node=77, fanouts=(4, 2), seed=9)
        first = _run_single(random_graph, random_assets, query)
        again = _run_single(random_graph, random_assets, query)
        assert first.stats.result == again.stats.result
        assert first.stats.nodes_touched == again.stats.nodes_touched


# -- multi-source routing keys ------------------------------------------------
class TestMultiSourceRouting:
    def test_hash_single_key_unchanged(self):
        strategy = HashRouting(num_processors=3)
        assert strategy.choose(NeighborAggregationQuery(node=7), [0, 0, 0]) == 1

    def test_hash_plurality_vote(self):
        strategy = HashRouting(num_processors=2)
        # Keys 1, 3, 2 -> slots 1, 1, 0: plurality picks processor 1.
        query = KSourceReachabilityQuery(node=1, sources=(3, 2), target=0)
        assert strategy.choose(query, [0, 0]) == 1
        # Tie (one key each) breaks to the lowest processor index.
        tied = KSourceReachabilityQuery(node=1, sources=(2,), target=0)
        assert strategy.choose(tied, [0, 0]) == 0

    def test_landmark_multi_anchor_averages(self, random_graph,
                                            random_assets):
        index = random_assets.landmark_index(3, 24, 2)
        strategy = LandmarkRouting(index)
        loads = [0, 0, 0]
        query = KSourceReachabilityQuery(node=10, sources=(11, 12), target=0)
        choice = strategy.choose(query, loads)
        assert 0 <= choice < 3
        rows = [index.processor_distances(k) for k in (10, 11, 12)]
        mean = np.mean(np.stack(rows), axis=0)
        assert choice == int(np.argmin(mean))

    def test_landmark_unknown_anchors_fall_back_to_hash(self, random_graph,
                                                        random_assets):
        index = random_assets.landmark_index(3, 24, 2)
        strategy = LandmarkRouting(index)
        query = KSourceReachabilityQuery(node=10 ** 9, sources=(10 ** 9 + 1,),
                                         target=0)
        assert strategy.choose(query, [0, 0, 0]) == (10 ** 9) % 3
        assert strategy.fallbacks == 1


# -- session-API support ------------------------------------------------------
class TestNewFamiliesThroughSessions:
    def test_mixed_family_stream_through_adaptive_service(self, random_graph,
                                                          random_assets):
        workload = interleave([
            ppr_stream(random_graph, num_queries=12, walks=2, steps=3,
                       seed=1, csr=random_assets.csr_both),
            k_reach_stream(random_graph, num_queries=8, num_sources=3,
                           hops=2, seed=2, csr=random_assets.csr_both),
            sample_stream(random_graph, num_queries=10, fanouts=(4, 2),
                          seed=3, csr=random_assets.csr_both),
        ], seed=4)
        config = ClusterConfig(
            num_processors=3, num_storage_servers=2, routing="adaptive",
            cache_capacity_bytes=1 << 20, embed_method="lmds",
            adaptive_epoch=4,
        )
        with GraphService.open(random_graph, config,
                               assets=random_assets) as service:
            with service.session() as session:
                session.stream(workload, batch=8)
                report = session.report()
        stats = report.per_operator_stats()
        assert stats["ppr"]["queries"] == 12
        assert stats["k_reach"]["queries"] == 8
        assert stats["sample"]["queries"] == 10
        classes = {r.operator: r.query_class for r in report.records}
        assert classes["ppr"] == "walk"
        assert classes["k_reach"] == "traversal"
        assert classes["sample"] == "traversal"
