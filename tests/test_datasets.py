"""Tests for the synthetic dataset analogues (Table 1)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_info,
    dataset_table,
    freebase_like,
    friendster_like,
    load_dataset,
    memetracker_like,
    webgraph_like,
)
from repro.graph import CSRGraph


SCALE = 0.05  # tiny graphs: structure checks, not benchmarks


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_builds_and_is_deterministic(self, name):
        a = load_dataset(name, scale=SCALE, seed=3)
        b = load_dataset(name, scale=SCALE, seed=3)
        assert a.num_nodes == b.num_nodes
        assert sorted(a.edges()) == sorted(b.edges())

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_seed_changes_graph(self, name):
        a = load_dataset(name, scale=SCALE, seed=1)
        b = load_dataset(name, scale=SCALE, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("twitter")

    def test_scale_grows_graph(self):
        small = webgraph_like(scale=0.05, seed=1)
        large = webgraph_like(scale=0.1, seed=1)
        assert large.num_nodes > small.num_nodes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            memetracker_like(scale=0.0)

    def test_freebase_is_sparsest(self):
        freebase = freebase_like(scale=SCALE, seed=1)
        meme = memetracker_like(scale=SCALE, seed=1)
        assert (freebase.num_edges / freebase.num_nodes
                < meme.num_edges / meme.num_nodes)

    def test_friendster_has_weaker_hotspot_overlap(self):
        # The property behind Fig 16(b): 2-hop neighbourhoods of queries
        # from one hotspot overlap much less on Friendster than on
        # WebGraph, so caching helps it least. Overlap is measured as
        # union / sum over 5 query nodes per hotspot (1.0 = disjoint).
        def mean_disjointness(graph, hotspots=8, per_hotspot=5):
            csr = CSRGraph.from_graph(graph, direction="both")
            rng = np.random.default_rng(0)
            eligible = np.flatnonzero(csr.degrees() > 0)
            ratios = []
            for _ in range(hotspots):
                center = int(eligible[rng.integers(0, eligible.size)])
                ball = np.flatnonzero(
                    csr.bfs_distances([center], max_hops=2) >= 0
                )
                union, total = set(), 0
                for _ in range(per_hotspot):
                    node = int(ball[rng.integers(0, ball.size)])
                    hood = np.flatnonzero(
                        csr.bfs_distances([node], max_hops=2) >= 0
                    )
                    union.update(hood.tolist())
                    total += hood.size
                ratios.append(len(union) / total)
            return np.mean(ratios)

        web = mean_disjointness(webgraph_like(scale=0.25, seed=1))
        friend = mean_disjointness(friendster_like(scale=0.25, seed=1))
        assert friend > 1.2 * web


class TestDatasetInfo:
    def test_info_counts_match_graph(self):
        graph = freebase_like(scale=SCALE, seed=1)
        info = dataset_info("freebase", graph)
        assert info.num_nodes == graph.num_nodes
        assert info.num_edges == graph.num_edges
        assert info.record_bytes > 0

    def test_table_covers_all_datasets(self):
        rows = dataset_table(scale=SCALE, seed=1)
        assert {r.name for r in rows} == set(DATASETS)
