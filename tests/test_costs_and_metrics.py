"""Tests for the cost models and the workload report arithmetic."""

import pytest

from repro.core.metrics import QueryRecord, QueryStats, WorkloadReport
from repro.costs import (
    DEFAULT_COSTS,
    ETHERNET,
    ETHERNET_COSTS,
    INFINIBAND,
    NetworkModel,
    StorageServiceModel,
)


class TestNetworkModel:
    def test_transfer_time_includes_latency(self):
        net = NetworkModel(name="x", latency=1e-6, bandwidth=1e9)
        assert net.transfer_time(0) == pytest.approx(1e-6)
        assert net.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_round_trip_sums_both_ways(self):
        net = NetworkModel(name="x", latency=2e-6, bandwidth=1e9)
        rtt = net.round_trip_time(100, 900)
        assert rtt == pytest.approx(net.transfer_time(100) + net.transfer_time(900))

    def test_infiniband_beats_ethernet(self):
        assert INFINIBAND.latency < ETHERNET.latency
        assert INFINIBAND.bandwidth > ETHERNET.bandwidth
        assert INFINIBAND.transfer_time(4096) < ETHERNET.transfer_time(4096)


class TestStorageServiceModel:
    def test_service_time_composition(self):
        model = StorageServiceModel(per_request=1e-6, per_key=1e-7,
                                    per_byte=1e-9)
        assert model.service_time(10, 1000) == pytest.approx(
            1e-6 + 10 * 1e-7 + 1000 * 1e-9
        )

    def test_zero_work_still_pays_dispatch(self):
        model = StorageServiceModel()
        assert model.service_time(0, 0) == model.per_request


class TestCostModelBundle:
    def test_with_network_swaps_only_network(self):
        swapped = DEFAULT_COSTS.with_network(ETHERNET)
        assert swapped.network is ETHERNET
        assert swapped.storage == DEFAULT_COSTS.storage
        assert swapped.cache == DEFAULT_COSTS.cache

    def test_presets(self):
        assert DEFAULT_COSTS.network is INFINIBAND
        assert ETHERNET_COSTS.network is ETHERNET

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.network = ETHERNET  # type: ignore[misc]


def _record(query_id, processor, start, end, hits=0, misses=0, stolen=False,
            decision=0.0, operator=""):
    return QueryRecord(
        query_id=query_id,
        kind="NeighborAggregationQuery",
        node=query_id,
        intended_processor=processor,
        processor=processor,
        stolen=stolen,
        decision_time=decision,
        enqueued_at=0.0,
        started_at=start,
        finished_at=end,
        stats=QueryStats(nodes_touched=hits + misses, cache_hits=hits,
                         cache_misses=misses),
        operator=operator,
    )


class TestWorkloadReport:
    def test_throughput(self):
        report = WorkloadReport(
            records=[_record(0, 0, 0.0, 1.0), _record(1, 0, 1.0, 2.0)],
            makespan=2.0, num_processors=1, num_storage_servers=1,
        )
        assert report.throughput() == pytest.approx(1.0)

    def test_empty_report(self):
        report = WorkloadReport(num_processors=2)
        assert report.throughput() == 0.0
        assert report.mean_response_time() == 0.0
        assert report.cache_hit_rate() == 0.0
        assert report.percentile_response_time(95) == 0.0

    def test_mean_response_includes_decision_time(self):
        report = WorkloadReport(
            records=[_record(0, 0, 0.0, 1.0, decision=0.5)],
            makespan=1.0, num_processors=1, num_storage_servers=1,
        )
        assert report.mean_response_time() == pytest.approx(1.5)

    def test_cache_accounting(self):
        report = WorkloadReport(
            records=[_record(0, 0, 0, 1, hits=8, misses=2),
                     _record(1, 0, 1, 2, hits=0, misses=10)],
            makespan=2.0, num_processors=1, num_storage_servers=1,
        )
        assert report.total_cache_hits() == 8
        assert report.total_cache_misses() == 12
        assert report.cache_hit_rate() == pytest.approx(0.4)

    def test_load_imbalance(self):
        records = [_record(i, i % 2, 0, 1) for i in range(4)]
        records.append(_record(9, 0, 0, 1))
        report = WorkloadReport(records=records, makespan=1.0,
                                num_processors=2, num_storage_servers=1)
        # processor 0 served 3, processor 1 served 2: 3 / 2.5
        assert report.load_imbalance() == pytest.approx(1.2)

    def test_stolen_count(self):
        report = WorkloadReport(
            records=[_record(0, 0, 0, 1, stolen=True), _record(1, 0, 0, 1)],
            makespan=1.0, num_processors=1, num_storage_servers=1,
        )
        assert report.stolen_count() == 1

    def test_percentiles(self):
        records = [_record(i, 0, 0.0, float(i + 1)) for i in range(10)]
        report = WorkloadReport(records=records, makespan=10.0,
                                num_processors=1, num_storage_servers=1)
        assert report.percentile_response_time(0) == pytest.approx(1.0)
        assert report.percentile_response_time(100) == pytest.approx(10.0)
        mid = report.percentile_response_time(50)
        assert 5.0 <= mid <= 6.0

    def test_per_operator_stats_groups_counts_and_means(self):
        records = [
            _record(0, 0, 0.0, 1.0, operator="aggregation"),
            _record(1, 0, 0.0, 3.0, operator="aggregation"),
            _record(2, 0, 0.0, 5.0, operator="ppr"),
        ]
        report = WorkloadReport(records=records, makespan=5.0,
                                num_processors=1, num_storage_servers=1)
        stats = report.per_operator_stats()
        assert set(stats) == {"aggregation", "ppr"}
        assert stats["aggregation"]["queries"] == 2
        assert stats["aggregation"]["mean_response_ms"] == pytest.approx(2e3)
        assert stats["ppr"]["queries"] == 1
        assert stats["ppr"]["mean_response_ms"] == pytest.approx(5e3)

    def test_per_operator_stats_falls_back_to_kind(self):
        # Pre-operator records (operator == "") group under the type name.
        report = WorkloadReport(
            records=[_record(0, 0, 0.0, 1.0)], makespan=1.0,
            num_processors=1, num_storage_servers=1,
        )
        assert set(report.per_operator_stats()) == {
            "NeighborAggregationQuery",
        }

    def test_summary_is_json_friendly(self):
        import json

        report = WorkloadReport(
            records=[_record(0, 0, 0, 1)], makespan=1.0,
            num_processors=1, num_storage_servers=1, routing="hash",
        )
        json.dumps(report.summary())
