"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(3.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    stamps = []

    def proc():
        yield env.timeout(1)
        stamps.append(env.now)
        yield env.timeout(2)
        stamps.append(env.now)

    env.process(proc())
    env.run()
    assert stamps == [1, 3]


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer(results):
        value = yield env.process(inner())
        results.append(value)

    results = []
    env.process(outer(results))
    env.run()
    assert results == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    value = env.run(until=env.process(proc()))
    assert value == "done"
    assert env.now == 2


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_deadlock_detected_when_waiting_on_untriggered_event():
    env = Environment()
    blocker = env.event()

    def proc():
        yield blocker

    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=env.process(proc()))


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def opener():
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == [(4, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("server down"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["server down"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def broken():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter(caught):
        try:
            yield env.process(broken())
        except ValueError as exc:
            caught.append(str(exc))

    caught = []
    env.process(waiter(caught))
    env.run()
    assert caught == ["boom"]


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(until=proc)


def test_all_of_waits_for_every_child():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of(
            [env.timeout(3, value="c"), env.timeout(1, value="a")]
        )
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3, ["c", "a"])]


def test_all_of_empty_list_triggers_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(0, [])]


def test_any_of_triggers_on_first():
    env = Environment()
    results = []

    def proc():
        value = yield env.any_of(
            [env.timeout(3, value="slow"), env.timeout(1, value="fast")]
        )
        results.append((env.now, value))

    env.process(proc())
    env.run()
    assert results == [(1, "fast")]


def test_all_of_failure_propagates():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([gate, env.timeout(5)])
        except RuntimeError:
            caught.append(env.now)

    def failer():
        yield env.timeout(2)
        gate.fail(RuntimeError("dead"))

    env.process(proc())
    env.process(failer())
    env.run()
    assert caught == [2]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        r3 = res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_grants_fifo(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered and not r3.triggered
        res.release(r2)
        assert r3.triggered

    def test_release_foreign_request_rejected(self):
        env = Environment()
        res_a = Resource(env)
        res_b = Resource(env)
        req = res_a.request()
        with pytest.raises(SimulationError):
            res_b.release(req)

    def test_capacity_below_one_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_fifo_service_order_under_contention(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(name, service):
            req = res.request()
            yield req
            yield env.timeout(service)
            order.append((name, env.now))
            res.release(req)

        env.process(worker("first", 5))
        env.process(worker("second", 1))
        env.process(worker("third", 1))
        env.run()
        # Strict FIFO: second waits behind first despite being cheaper.
        assert order == [("first", 5), ("second", 6), ("third", 7)]

    def test_utilization_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(4)
            res.release(req)
            yield env.timeout(6)

        env.process(worker())
        env.run()
        assert env.now == 10
        assert res.utilization(env.now) == pytest.approx(0.4)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((env.now, item))

        def putter():
            yield env.timeout(3)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(3, "late")]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def getter():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(getter())
        env.run()
        assert got == ["a", "b", "c"]

    def test_fifo_getter_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(name):
            item = yield store.get()
            got.append((name, item))

        env.process(getter("g1"))
        env.process(getter("g2"))

        def putter():
            yield env.timeout(1)
            store.put("first")
            store.put("second")

        env.process(putter())
        env.run()
        assert got == [("g1", "first"), ("g2", "second")]

    def test_len_reports_buffered_items(self):
        env = Environment()
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


def test_determinism_same_program_same_trace():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(name, delays):
            for delay in delays:
                yield env.timeout(delay)
                trace.append((name, env.now))

        env.process(worker("a", [1, 2, 3]))
        env.process(worker("b", [2, 2, 2]))
        env.process(worker("c", [3, 1, 1]))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
